#include <gtest/gtest.h>

#include "energy/machine.hpp"
#include "jepo/optimizer.hpp"
#include "jlang/parser.hpp"
#include "jlang/printer.hpp"
#include "jvm/interpreter.hpp"

namespace jepo::core {
namespace {

using jlang::Parser;
using jlang::Program;

struct RunResult {
  std::string output;
  energy::MachineSample sample;
};

RunResult runProgram(const Program& prog) {
  energy::SimMachine machine;
  jvm::Interpreter interp(prog, machine);
  interp.setMaxSteps(100'000'000);
  interp.runMain();
  return {interp.output(), machine.sample()};
}

OptimizeResult optimizeSource(const std::string& src,
                              OptimizerOptions opts = {}) {
  const Program prog = Parser::parseProgram("t.mjava", src);
  return Optimizer(opts).optimize(prog);
}

std::string printed(const OptimizeResult& r) {
  std::string out;
  for (const auto& u : r.program.units) out += jlang::printUnit(u);
  return out;
}

int countRule(const std::vector<ChangeRecord>& v, RuleId id) {
  int n = 0;
  for (const auto& c : v) n += (c.rule == id);
  return n;
}

// ----------------------------------------------------- scientificRespell

TEST(ScientificRespell, ExactRespellings) {
  std::string s;
  ASSERT_TRUE(scientificRespell(10000.0, &s));
  EXPECT_EQ(s, "1e4");
  ASSERT_TRUE(scientificRespell(1250.0, &s));
  EXPECT_EQ(s, "1.25e3");
  ASSERT_TRUE(scientificRespell(0.00001, &s));
  EXPECT_EQ(s, "1e-5");
  ASSERT_TRUE(scientificRespell(-2500.0, &s));
  EXPECT_EQ(s, "-2.5e3");
  EXPECT_FALSE(scientificRespell(0.0, &s));
  // Round-trip exactness for an awkward value.
  ASSERT_TRUE(scientificRespell(1234.5678, &s));
  EXPECT_EQ(std::strtod(s.c_str(), nullptr), 1234.5678);
}

// ------------------------------------------------------ individual edits

TEST(Optimizer, NarrowsByteShortToInt) {
  const auto r = optimizeSource("class C { short s; void m(byte b) { } }");
  EXPECT_EQ(countRule(r.changes, RuleId::kPrimitiveDataType), 2);
  EXPECT_NE(printed(r).find("int s;"), std::string::npos);
  EXPECT_NE(printed(r).find("m(int b)"), std::string::npos);
}

TEST(Optimizer, ByteWithWrapArithmeticIsKept) {
  // b++ at 127 differs between byte and int: must not rewrite.
  const auto r = optimizeSource(
      "class C { void m() { byte b = 0; b++; } }");
  EXPECT_EQ(countRule(r.changes, RuleId::kPrimitiveDataType), 0);
  EXPECT_NE(printed(r).find("byte b"), std::string::npos);
}

TEST(Optimizer, LongToIntOnlyInLossyMode) {
  const std::string src =
      "class C { void m() { long x = 1L; x = x + 1; } }";
  OptimizerOptions lossless;
  lossless.allowLossyNarrowing = false;
  EXPECT_EQ(countRule(optimizeSource(src, lossless).changes,
                      RuleId::kPrimitiveDataType),
            0);
  OptimizerOptions lossy;  // default
  const auto r = optimizeSource(src, lossy);
  EXPECT_EQ(countRule(r.changes, RuleId::kPrimitiveDataType), 1);
  EXPECT_NE(printed(r).find("int x"), std::string::npos);
}

TEST(Optimizer, DoubleToFloatOnlyInLossyMode) {
  const std::string src = "class C { double d = 1.5; }";
  OptimizerOptions lossless;
  lossless.allowLossyNarrowing = false;
  EXPECT_EQ(optimizeSource(src, lossless).changes.size(), 0u);
  const auto r = optimizeSource(src);
  EXPECT_NE(printed(r).find("float d"), std::string::npos);
}

TEST(Optimizer, RespellsPlainDecimalsAsScientific) {
  const auto r = optimizeSource("class C { double d = 10000.0; }");
  EXPECT_EQ(countRule(r.changes, RuleId::kScientificNotation), 1);
  EXPECT_NE(printed(r).find("1e4"), std::string::npos);
}

TEST(Optimizer, WrapperUpgrades) {
  const auto r = optimizeSource(
      "class C { void m() { Short s = 1; Character c = 'x'; Double d = 1.5; } }");
  EXPECT_EQ(countRule(r.changes, RuleId::kWrapperClass), 2);  // not Double
  EXPECT_EQ(printed(r).find("Short"), std::string::npos);
  EXPECT_NE(printed(r).find("Integer s"), std::string::npos);
}

TEST(Optimizer, ModulusToBitmaskForLoopCounters) {
  const auto r = optimizeSource(R"(
    class C { int m(int n) {
      int acc = 0;
      for (int i = 0; i < n; i++) acc += i % 8;
      return acc;
    } }
  )");
  EXPECT_EQ(countRule(r.changes, RuleId::kModulusOperator), 1);
  EXPECT_NE(printed(r).find("(i & 7)"), std::string::npos);
}

TEST(Optimizer, ModulusOnArbitraryIntIsNotRewritten) {
  // x may be negative: x % 8 != x & 7.
  const auto r = optimizeSource("class C { int m(int x) { return x % 8; } }");
  EXPECT_EQ(countRule(r.changes, RuleId::kModulusOperator), 0);
}

TEST(Optimizer, ModulusByNonPowerOfTwoIsNotRewritten) {
  const auto r = optimizeSource(R"(
    class C { int m(int n) {
      int acc = 0;
      for (int i = 0; i < n; i++) acc += i % 7;
      return acc;
    } }
  )");
  EXPECT_EQ(countRule(r.changes, RuleId::kModulusOperator), 0);
}

TEST(Optimizer, TernaryBecomesIfThenElse) {
  const auto assign = optimizeSource(R"(
    class C { int m(int x) { int y = 0; y = x > 0 ? 1 : 2; return y; } }
  )");
  EXPECT_EQ(countRule(assign.changes, RuleId::kTernaryOperator), 1);
  EXPECT_EQ(printed(assign).find("?"), std::string::npos);
  EXPECT_NE(printed(assign).find("if"), std::string::npos);

  const auto ret = optimizeSource(
      "class C { int m(int x) { return x > 0 ? 1 : 2; } }");
  EXPECT_EQ(countRule(ret.changes, RuleId::kTernaryOperator), 1);
  EXPECT_EQ(printed(ret).find("?"), std::string::npos);

  const auto decl = optimizeSource(
      "class C { int m(int x) { int y = x > 0 ? 1 : 2; return y; } }");
  EXPECT_EQ(countRule(decl.changes, RuleId::kTernaryOperator), 1);
  EXPECT_EQ(printed(decl).find("?"), std::string::npos);
}

TEST(Optimizer, ShortCircuitReorderOnlyWhenPure) {
  const auto pure = optimizeSource(R"(
    class C { boolean m(int a, int b, boolean f) {
      return (a * a + b * b > 100 && a != b) && f;
    } }
  )");
  EXPECT_EQ(countRule(pure.changes, RuleId::kShortCircuitOrder), 2);

  const auto impure = optimizeSource(R"(
    class C {
      boolean probe() { return true; }
      boolean m(int a, boolean f) { return (probe() && a > 0) && f; }
    }
  )");
  EXPECT_EQ(countRule(impure.changes, RuleId::kShortCircuitOrder), 0);
}

TEST(Optimizer, CompareToEqualsRewrites) {
  const auto eq = optimizeSource(
      "class C { boolean m(String a, String b) { return a.compareTo(b) == 0; } }");
  EXPECT_EQ(countRule(eq.changes, RuleId::kStringCompare), 1);
  EXPECT_NE(printed(eq).find("a.equals(b)"), std::string::npos);

  const auto ne = optimizeSource(
      "class C { boolean m(String a, String b) { return a.compareTo(b) != 0; } }");
  EXPECT_NE(printed(ne).find("(!a.equals(b))"), std::string::npos);

  // Ordering uses stay untouched: compareTo < 0 has no equals equivalent.
  const auto lt = optimizeSource(
      "class C { boolean m(String a, String b) { return a.compareTo(b) < 0; } }");
  EXPECT_EQ(countRule(lt.changes, RuleId::kStringCompare), 0);
}

TEST(Optimizer, ManualCopyLoopBecomesArraycopy) {
  const auto r = optimizeSource(R"(
    class C { void m(int[] src, int[] dst, int n) {
      for (int i = 0; i < n; i++) dst[i] = src[i];
    } }
  )");
  EXPECT_EQ(countRule(r.changes, RuleId::kArrayCopy), 1);
  EXPECT_NE(printed(r).find("System.arraycopy(src, 0, dst, 0, n)"),
            std::string::npos);
}

TEST(Optimizer, OffsetCopyLoopKeepsOffsets) {
  const auto r = optimizeSource(R"(
    class C { void m(int[] src, int[] dst, int n) {
      for (int i = 2; i < n; i++) dst[i] = src[i];
    } }
  )");
  EXPECT_EQ(countRule(r.changes, RuleId::kArrayCopy), 1);
  EXPECT_NE(printed(r).find("System.arraycopy(src, 2, dst, 2, (n - 2))"),
            std::string::npos);
}

TEST(Optimizer, LoopInterchangeForColumnTraversal) {
  const auto r = optimizeSource(R"(
    class C { int m(int[][] a, int rows, int cols) {
      int acc = 0;
      for (int j = 0; j < cols; j++)
        for (int i = 0; i < rows; i++)
          acc += a[i][j];
      return acc;
    } }
  )");
  EXPECT_EQ(countRule(r.changes, RuleId::kArrayTraversal), 1);
  const std::string out = printed(r);
  // After interchange the i-loop is outermost.
  const auto iPos = out.find("for (int i = 0");
  const auto jPos = out.find("for (int j = 0");
  ASSERT_NE(iPos, std::string::npos);
  ASSERT_NE(jPos, std::string::npos);
  EXPECT_LT(iPos, jPos);
}

TEST(Optimizer, InterchangeRefusedWhenBoundsDependOnLoopVar) {
  const auto r = optimizeSource(R"(
    class C { int m(int[][] a, int n) {
      int acc = 0;
      for (int j = 0; j < n; j++)
        for (int i = 0; i < j; i++)
          acc += a[i][j];
      return acc;
    } }
  )");
  EXPECT_EQ(countRule(r.changes, RuleId::kArrayTraversal), 0);
}

TEST(Optimizer, ConcatLoopBecomesStringBuilder) {
  const auto r = optimizeSource(R"(
    class C { String m(int n) {
      String s = "";
      for (int i = 0; i < n; i++) s = s + "x";
      return s;
    } }
  )");
  EXPECT_EQ(countRule(r.changes, RuleId::kStringConcat), 1);
  const std::string out = printed(r);
  EXPECT_NE(out.find("new StringBuilder(s)"), std::string::npos);
  EXPECT_NE(out.find(".append("), std::string::npos);
  EXPECT_NE(out.find(".toString()"), std::string::npos);
}

TEST(Optimizer, ConcatLoopWithOtherUsesIsKept) {
  // s is also read as a call argument inside the loop: unsafe to hoist.
  const auto r = optimizeSource(R"(
    class C {
      int len(String x) { return x.length(); }
      String m(int n) {
        String s = "";
        int total = 0;
        for (int i = 0; i < n; i++) { s = s + "x"; total += len(s); }
        return s;
      }
    }
  )");
  EXPECT_EQ(countRule(r.changes, RuleId::kStringConcat), 0);
}

TEST(Optimizer, ReadOnlyStaticIsCachedInLocal) {
  const auto r = optimizeSource(R"(
    class C {
      static int factor = 3;
      static int m(int n) {
        int acc = 0;
        for (int i = 0; i < n; i++) acc += i * factor + factor;
        return acc;
      }
    }
  )");
  EXPECT_EQ(countRule(r.changes, RuleId::kStaticKeyword), 1);
  EXPECT_NE(printed(r).find("int __cached_factor = factor;"),
            std::string::npos);
}

TEST(Optimizer, MutableStaticIsNotCached) {
  const auto r = optimizeSource(R"(
    class C {
      static int counter = 0;
      static int m(int n) {
        for (int i = 0; i < n; i++) counter = counter + 1;
        return counter + counter;
      }
    }
  )");
  EXPECT_EQ(countRule(r.changes, RuleId::kStaticKeyword), 0);
}

TEST(Optimizer, RuleMaskDisablesRewrites) {
  OptimizerOptions opts;
  opts.enabled[static_cast<int>(RuleId::kTernaryOperator)] = false;
  const auto r = optimizeSource(
      "class C { int m(int x) { return x > 0 ? 1 : 2; } }", opts);
  EXPECT_EQ(r.changes.size(), 0u);
  EXPECT_NE(printed(r).find("?"), std::string::npos);
}

TEST(Optimizer, OptimizedOutputReparses) {
  const auto r = optimizeSource(R"(
    class C {
      static int factor = 2;
      String m(int n) {
        String s = "";
        int acc = 0;
        for (int i = 0; i < n; i++) {
          acc += i % 8;
        }
        for (int i = 0; i < n; i++) s = s + "y";
        return s + (acc > 0 ? "+" : "-") + factor + factor;
      }
    }
  )");
  EXPECT_NO_THROW(Parser::parseProgram("o.mjava", printed(r)));
}

// ---------------------------------------------- semantic preservation

/// The core invariant (DESIGN.md §4): for every program, optimizing with
/// exact-only rewrites preserves the printed output, and the optimized
/// version consumes no more energy.
class PreservationTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PreservationTest, OutputIdenticalAndEnergyNonIncreasing) {
  const Program original = Parser::parseProgram("p.mjava", GetParam());
  OptimizerOptions opts;
  opts.allowLossyNarrowing = false;  // exact mode for the equality check
  const OptimizeResult opt = Optimizer(opts).optimize(original);

  const RunResult before = runProgram(original);
  const RunResult after = runProgram(opt.program);
  EXPECT_EQ(before.output, after.output)
      << "optimized program:\n" << printed(opt);
  EXPECT_LE(after.sample.packageJoules, before.sample.packageJoules * 1.0001)
      << "optimization increased energy";
}

const char* kPreservationPrograms[] = {
    // Modulus on loop counter + ternary + static caching.
    R"(
    class Main {
      static int factor = 3;
      static void main(String[] args) {
        int acc = 0;
        for (int i = 0; i < 5000; i++) {
          acc += i % 16;
          acc += factor + factor;
        }
        int sign = 0;
        sign = acc > 0 ? 1 : -1;
        System.out.println(acc + ":" + sign);
      }
    }
    )",
    // Manual copy -> arraycopy; verify contents afterwards.
    R"(
    class Main {
      static void main(String[] args) {
        int[] src = new int[100];
        for (int i = 0; i < 100; i++) src[i] = i * i;
        int[] dst = new int[100];
        for (int i = 0; i < 100; i++) dst[i] = src[i];
        int acc = 0;
        for (int i = 0; i < 100; i++) acc += dst[i];
        System.out.println(acc);
      }
    }
    )",
    // Column traversal -> interchange (integer accumulation, exact).
    R"(
    class Main {
      static void main(String[] args) {
        int[][] m = new int[40][40];
        for (int i = 0; i < 40; i++)
          for (int j = 0; j < 40; j++)
            m[i][j] = i * 40 + j;
        int acc = 0;
        for (int j = 0; j < 40; j++)
          for (int i = 0; i < 40; i++)
            acc += m[i][j];
        System.out.println(acc);
      }
    }
    )",
    // Concat loop -> StringBuilder.
    R"(
    class Main {
      static void main(String[] args) {
        String s = "start:";
        for (int i = 0; i < 50; i++) s = s + i;
        System.out.println(s.length());
        System.out.println(s.substring(0, 9));
      }
    }
    )",
    // compareTo -> equals in both polarities.
    R"(
    class Main {
      static void main(String[] args) {
        String a = "alpha";
        String b = "alpha";
        String c = "beta";
        int hits = 0;
        for (int i = 0; i < 100; i++) {
          if (a.compareTo(b) == 0) hits++;
          if (a.compareTo(c) != 0) hits++;
        }
        System.out.println(hits);
      }
    }
    )",
    // Short-circuit reorder with pure operands.
    R"(
    class Main {
      static void main(String[] args) {
        int count = 0;
        for (int i = 0; i < 2000; i++) {
          boolean v = (i * i + 3 * i + 7 > 50 && i != 13) && i % 2 == 0;
          if (v) count++;
        }
        System.out.println(count);
      }
    }
    )",
    // byte/short widening + scientific respelling + wrapper upgrade.
    R"(
    class Main {
      static void main(String[] args) {
        short base = 120;
        double big = 10000.0;
        Short boxed = 7;
        double total = 0.0;
        for (int i = 0; i < 300; i++) total += base + big / 1000.0;
        System.out.println(total > 1.0);
        System.out.println(boxed.intValue());
      }
    }
    )",
    // Exceptions + switch + try/finally survive optimization untouched.
    R"(
    class Main {
      static int classify(int v) {
        switch (v % 3) {
          case 0: return 10;
          case 1: return 20;
          default: return 30;
        }
      }
      static void main(String[] args) {
        int acc = 0;
        for (int i = 0; i < 50; i++) {
          try {
            acc += classify(i);
            if (i == 25) throw new RuntimeException("mid");
          } catch (RuntimeException e) {
            acc += 1000;
          } finally {
            acc += 1;
          }
        }
        System.out.println(acc);
      }
    }
    )",
    // Instance state + recursion remain correct.
    R"(
    class Acc {
      int total;
      void add(int v) { total += v; }
    }
    class Main {
      static int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
      static void main(String[] args) {
        Acc acc = new Acc();
        for (int i = 0; i < 12; i++) acc.add(fib(i));
        System.out.println(acc.total);
      }
    }
    )",
};

INSTANTIATE_TEST_SUITE_P(Programs, PreservationTest,
                         ::testing::ValuesIn(kPreservationPrograms));

/// Lossy mode keeps outputs *numerically close* (the paper's accuracy-drop
/// argument): integer-printing programs must still match exactly when no
/// long overflow is possible.
TEST(Optimizer, LossyModePreservesSmallIntegerPrograms) {
  const char* src = R"(
    class Main {
      static void main(String[] args) {
        long acc = 0L;
        for (int i = 0; i < 1000; i++) acc = acc + i;
        System.out.println(acc);
      }
    }
  )";
  const Program original = Parser::parseProgram("p.mjava", src);
  const OptimizeResult opt = Optimizer().optimize(original);
  EXPECT_EQ(runProgram(original).output, runProgram(opt.program).output);
}

}  // namespace
}  // namespace jepo::core
