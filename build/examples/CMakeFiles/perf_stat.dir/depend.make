# Empty dependencies file for perf_stat.
# This may be replaced when dependencies are built.
