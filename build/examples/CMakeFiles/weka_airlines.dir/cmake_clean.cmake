file(REMOVE_RECURSE
  "CMakeFiles/weka_airlines.dir/weka_airlines.cpp.o"
  "CMakeFiles/weka_airlines.dir/weka_airlines.cpp.o.d"
  "weka_airlines"
  "weka_airlines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weka_airlines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
