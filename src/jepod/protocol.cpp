#include "jepod/protocol.hpp"

#include "rapl/quality.hpp"
#include "support/json_reader.hpp"
#include "support/json_writer.hpp"

namespace jepo::jepod {

std::string_view errorCodeName(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kBadJson: return "bad-json";
    case ErrorCode::kBadRequest: return "bad-request";
    case ErrorCode::kUnknownCommand: return "unknown-command";
    case ErrorCode::kParseError: return "parse-error";
    case ErrorCode::kRuntimeError: return "runtime-error";
    case ErrorCode::kQueueFull: return "queue-full";
    case ErrorCode::kShuttingDown: return "shutting-down";
    case ErrorCode::kDeadlineExceeded: return "deadline-exceeded";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kInternal: return "internal";
  }
  return "?";
}

namespace {

std::string requireString(const json::Value& obj, std::string_view key) {
  const json::Value* v = obj.find(key);
  if (v == nullptr || !v->isString()) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        "missing or non-string field '" + std::string(key) +
                            "'");
  }
  return v->asString();
}

std::uint64_t optionalU64(const json::Value& obj, std::string_view key,
                          std::uint64_t def) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) return def;
  if (!v->isNumber()) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        "field '" + std::string(key) +
                            "' must be a non-negative integer");
  }
  try {
    return v->asUint64();
  } catch (const Error&) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        "field '" + std::string(key) +
                            "' must be a non-negative integer");
  }
}

}  // namespace

JobRequest parseRequest(const std::string& line) {
  json::Value doc;
  try {
    doc = json::parseJson(line);
  } catch (const Error& e) {
    throw ProtocolError(ErrorCode::kBadJson, e.what());
  }
  if (!doc.isObject()) {
    throw ProtocolError(ErrorCode::kBadRequest, "request is not an object");
  }
  const std::uint64_t v = optionalU64(doc, "v", 0);
  if (v != static_cast<std::uint64_t>(kProtocolVersion)) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        "unsupported protocol version " + std::to_string(v) +
                            " (this daemon speaks v" +
                            std::to_string(kProtocolVersion) + ")");
  }
  JobRequest req;
  req.id = requireString(doc, "id");
  req.command = requireString(doc, "command");
  req.source = requireString(doc, "source");
  req.tenant = doc.stringOr("tenant", "default");
  if (req.tenant.empty()) req.tenant = "default";
  req.mainClass = doc.stringOr("mainClass", "");
  req.seed = optionalU64(doc, "seed", 0);
  req.heapLimit = optionalU64(doc, "heapLimit", 0);
  req.maxSteps = optionalU64(doc, "maxSteps", kDefaultMaxSteps);
  req.faultPlan = doc.stringOr("faultPlan", "");
  req.deadlineMs = optionalU64(doc, "deadlineMs", 0);
  req.tier = doc.stringOr("tier", "");
  if (!req.tier.empty()) {
    try {
      jvm::parseTierSpec(req.tier);
    } catch (const Error& e) {
      throw ProtocolError(ErrorCode::kBadRequest,
                          std::string("tier: ") + e.what());
    }
  }
  if (req.command != "profile" && req.command != "suggest" &&
      req.command != "optimize") {
    throw ProtocolError(ErrorCode::kUnknownCommand,
                        "unknown command '" + req.command +
                            "' (expected profile|suggest|optimize)");
  }
  return req;
}

namespace {

void beginResponse(JsonWriter& w, const std::string& id, bool ok) {
  w.beginObject();
  w.kv("v", kProtocolVersion);
  w.kv("id", id);
  w.kv("ok", ok);
}

void writeRecords(JsonWriter& w, const std::vector<jvm::MethodRecord>& rs) {
  w.key("records");
  w.beginArray();
  for (const auto& r : rs) {
    w.beginObject();
    w.kv("method", r.method);
    w.kv("seconds", r.seconds);
    w.kv("packageJoules", r.packageJoules);
    w.kv("coreJoules", r.coreJoules);
    w.kv("dramJoules", r.dramJoules);
    w.kv("truncated", r.truncated);
    w.kv("quality", rapl::qualityName(r.quality));
    w.kv("readRetries", r.readRetries);
    // Omitted-when-default: full-tier responses keep their pre-tier bytes.
    if (r.tier != jvm::InstrTier::kFull) {
      w.kv("tier", jvm::tierName(r.tier));
      w.kv("samplingRate", r.samplingRate);
    }
    w.endObject();
  }
  w.endArray();
}

}  // namespace

std::string renderProfileResponse(const JobRequest& req, bool cached,
                                  const ProfileResult& result) {
  JsonWriter w;
  beginResponse(w, req.id, /*ok=*/true);
  w.kv("cached", cached);
  w.key("result");
  w.beginObject();
  w.kv("stdout", result.stdoutText);
  writeRecords(w, result.records);
  w.endObject();
  w.endObject();
  return w.str();
}

std::string renderSuggestResponse(const JobRequest& req, bool cached,
                                  const std::string& view) {
  JsonWriter w;
  beginResponse(w, req.id, /*ok=*/true);
  w.kv("cached", cached);
  w.key("result");
  w.beginObject();
  w.kv("view", view);
  w.endObject();
  w.endObject();
  return w.str();
}

std::string renderOptimizeResponse(const JobRequest& req, bool cached,
                                   const std::vector<OptimizeChange>& changes,
                                   const std::string& rewrittenSource) {
  JsonWriter w;
  beginResponse(w, req.id, /*ok=*/true);
  w.kv("cached", cached);
  w.key("result");
  w.beginObject();
  w.key("changes");
  w.beginArray();
  for (const auto& c : changes) {
    w.beginObject();
    w.kv("className", c.className);
    w.kv("line", c.line);
    w.kv("description", c.description);
    w.endObject();
  }
  w.endArray();
  w.kv("source", rewrittenSource);
  w.endObject();
  w.endObject();
  return w.str();
}

std::string renderErrorResponse(const std::string& id, ErrorCode code,
                                const std::string& message,
                                int retryAfterMs) {
  JsonWriter w;
  beginResponse(w, id, /*ok=*/false);
  w.key("error");
  w.beginObject();
  w.kv("code", errorCodeName(code));
  w.kv("message", message);
  w.endObject();
  if (retryAfterMs >= 0) w.kv("retryAfterMs", retryAfterMs);
  w.endObject();
  return w.str();
}

std::string renderRequest(const JobRequest& req) {
  JsonWriter w;
  w.beginObject();
  w.kv("v", kProtocolVersion);
  w.kv("id", req.id);
  w.kv("tenant", req.tenant);
  w.kv("command", req.command);
  w.kv("source", req.source);
  if (!req.mainClass.empty()) w.kv("mainClass", req.mainClass);
  w.kv("seed", req.seed);
  w.kv("heapLimit", req.heapLimit);
  w.kv("maxSteps", req.maxSteps);
  if (!req.faultPlan.empty()) w.kv("faultPlan", req.faultPlan);
  if (req.deadlineMs != 0) w.kv("deadlineMs", req.deadlineMs);
  // Omitted-when-default so pre-tier clients' request bytes are unchanged.
  if (!req.tier.empty() && req.tier != "full") w.kv("tier", req.tier);
  w.endObject();
  return w.str();
}

Response parseResponse(const std::string& line) {
  const json::Value doc = json::parseJson(line);
  JEPO_REQUIRE(doc.isObject(), "response is not an object");
  JEPO_REQUIRE(doc.uint64Or("v", 0) ==
                   static_cast<std::uint64_t>(kProtocolVersion),
               "response has an unsupported protocol version");
  Response resp;
  resp.raw = line;
  resp.id = doc.stringOr("id", "");
  resp.ok = doc.boolOr("ok", false);
  resp.cached = doc.boolOr("cached", false);
  if (!resp.ok) {
    if (const json::Value* err = doc.find("error")) {
      resp.errorCode = err->stringOr("code", "");
      resp.errorMessage = err->stringOr("message", "");
    }
    const json::Value* retry = doc.find("retryAfterMs");
    if (retry != nullptr && retry->isNumber()) {
      resp.retryAfterMs = static_cast<int>(retry->asUint64());
    }
    return resp;
  }
  const json::Value* result = doc.find("result");
  JEPO_REQUIRE(result != nullptr && result->isObject(),
               "ok response without a result object");
  resp.profile.stdoutText = result->stringOr("stdout", "");
  resp.view = result->stringOr("view", "");
  resp.rewrittenSource = result->stringOr("source", "");
  if (const json::Value* records = result->find("records")) {
    for (const json::Value& item : records->asArray()) {
      jvm::MethodRecord r;
      r.method = item.stringOr("method", "");
      r.seconds = item.doubleOr("seconds", 0.0);
      r.packageJoules = item.doubleOr("packageJoules", 0.0);
      r.coreJoules = item.doubleOr("coreJoules", 0.0);
      r.dramJoules = item.doubleOr("dramJoules", 0.0);
      r.truncated = item.boolOr("truncated", false);
      const std::string quality = item.stringOr("quality", "ok");
      for (int q = 0; q <= 3; ++q) {
        if (quality == rapl::qualityName(rapl::qualityFromIndex(q))) {
          r.quality = rapl::qualityFromIndex(q);
        }
      }
      r.readRetries =
          static_cast<int>(item.uint64Or("readRetries", 0));
      const std::string tier = item.stringOr("tier", "full");
      if (tier == "sampled") {
        r.tier = jvm::InstrTier::kSampled;
      } else if (tier == "hot") {
        r.tier = jvm::InstrTier::kHot;
      }
      r.samplingRate = item.doubleOr("samplingRate", 1.0);
      resp.profile.records.push_back(std::move(r));
    }
  }
  return resp;
}

}  // namespace jepo::jepod
