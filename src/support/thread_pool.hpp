// A small work-stealing-free thread pool plus a parallelFor helper.
//
// Cross-validation folds, forest tree growth and benchmark sweeps are
// embarrassingly parallel; following the HPC guides the parallelism is
// explicit — callers decide what is parallel and the pool only schedules.
// Determinism note: callers must give each task its own RNG stream (Rng::
// split) and write to disjoint output slots, so results are independent of
// scheduling order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "support/error.hpp"

namespace jepo {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threadCount() const noexcept { return workers_.size(); }

  /// Enqueue a task; the future reports its result or exception.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      JEPO_REQUIRE(!stopping_, "submit on a stopped ThreadPool");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

 private:
  void workerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Run body(i) for i in [0, n), spread over the pool; rethrows the first
/// task exception. Safe to call with n == 0.
void parallelFor(ThreadPool& pool, std::size_t n,
                 const std::function<void(std::size_t)>& body);

}  // namespace jepo
