#include <gtest/gtest.h>

#include <algorithm>

#include "jepo/engine.hpp"
#include "jepo/profiler.hpp"
#include "jepo/views.hpp"
#include "jlang/parser.hpp"
#include "jvm/interpreter.hpp"

namespace jepo::core {
namespace {

std::vector<Suggestion> analyze(const std::string& src,
                                SuggestionEngine::Options opts = {}) {
  SuggestionEngine engine(opts);
  return engine.analyzeSource("test.mjava", src);
}

int countRule(const std::vector<Suggestion>& v, RuleId id) {
  return static_cast<int>(
      std::count_if(v.begin(), v.end(),
                    [id](const Suggestion& s) { return s.rule == id; }));
}

// One positive + one negative case per Table I rule.

TEST(Engine, PrimitiveDataTypeRule) {
  const auto hits = analyze(R"(
    class C {
      long total;
      short small;
      void m(byte b) { long x = 1L; int ok = 1; }
    }
  )");
  EXPECT_EQ(countRule(hits, RuleId::kPrimitiveDataType), 4);  // total, small, b, x
  EXPECT_EQ(countRule(analyze("class C { int a; void m(int b) { int c = 1; } }"),
                      RuleId::kPrimitiveDataType),
            0);
  // Arrays of long are not flagged (the rule targets scalars).
  EXPECT_EQ(countRule(analyze("class C { long[] a; }"),
                      RuleId::kPrimitiveDataType),
            0);
}

TEST(Engine, ScientificNotationRule) {
  const auto hits = analyze(R"(
    class C {
      double big = 10000.0;
      double tinyVal = 0.00001;
      double fine = 1e4;
      double small = 2.5;
    }
  )");
  EXPECT_EQ(countRule(hits, RuleId::kScientificNotation), 2);
}

TEST(Engine, WrapperClassRule) {
  const auto hits = analyze(R"(
    class C {
      Long a;
      Double b;
      Integer good;
      void m() { Short s = 1; }
    }
  )");
  EXPECT_EQ(countRule(hits, RuleId::kWrapperClass), 3);
}

TEST(Engine, StaticKeywordRule) {
  const auto hits = analyze(R"(
    class C {
      static int counter;
      int instance;
    }
  )");
  EXPECT_EQ(countRule(hits, RuleId::kStaticKeyword), 1);
  EXPECT_EQ(hits[0].className, "C");
}

TEST(Engine, ModulusRuleWithPowerOfTwoHint) {
  const auto hits = analyze(R"(
    class C {
      int m(int i) { return i % 8; }
      int n(int i) { return i % 7; }
      int ok(int i) { return i & 7; }
    }
  )");
  ASSERT_EQ(countRule(hits, RuleId::kModulusOperator), 2);
  // The power-of-two case carries the bitmask hint.
  const auto p2 = std::find_if(hits.begin(), hits.end(), [](const auto& s) {
    return s.rule == RuleId::kModulusOperator &&
           s.detail.find("power of two") != std::string::npos;
  });
  EXPECT_NE(p2, hits.end());
}

TEST(Engine, TernaryRule) {
  EXPECT_EQ(countRule(analyze("class C { int m(int x) { return x > 0 ? 1 : 2; } }"),
                      RuleId::kTernaryOperator),
            1);
  EXPECT_EQ(countRule(analyze(R"(
    class C { int m(int x) { if (x > 0) return 1; else return 2; } }
  )"),
                      RuleId::kTernaryOperator),
            0);
}

TEST(Engine, ShortCircuitOrderRule) {
  // Complex left, simple right -> suggest reorder. Both the outer && (vs
  // `flag`) and the inner one (vs `a != b`) qualify.
  EXPECT_EQ(countRule(analyze(R"(
    class C { boolean m(int a, int b, boolean flag) {
      return (a * a + b * b > 100 && a != b) && flag;
    } }
  )"),
                      RuleId::kShortCircuitOrder),
            2);
  // Simple-first is already right.
  EXPECT_EQ(countRule(analyze(R"(
    class C { boolean m(int a, boolean flag) { return flag && a * a > 100; } }
  )"),
                      RuleId::kShortCircuitOrder),
            0);
  // Impure operands are never flagged for reorder.
  EXPECT_EQ(countRule(analyze(R"(
    class C {
      int calls = 0;
      boolean probe() { calls++; return true; }
      boolean m(int a, boolean flag) { return (probe() && a > 1) && flag; }
    }
  )"),
                      RuleId::kShortCircuitOrder),
            0);
}

TEST(Engine, StringConcatRule) {
  EXPECT_GE(countRule(analyze(R"(
    class C { String m(String s) {
      String out = "";
      for (int i = 0; i < 10; i++) out = out + s;
      return out;
    } }
  )"),
                      RuleId::kStringConcat),
            1);
  // Numeric + is not string concatenation.
  EXPECT_EQ(countRule(analyze("class C { int m(int a) { return a + 1; } }"),
                      RuleId::kStringConcat),
            0);
}

TEST(Engine, StringCompareRule) {
  EXPECT_EQ(countRule(analyze(R"(
    class C { boolean m(String a, String b) { return a.compareTo(b) == 0; } }
  )"),
                      RuleId::kStringCompare),
            1);
  EXPECT_EQ(countRule(analyze(R"(
    class C { boolean m(String a, String b) { return a.equals(b); } }
  )"),
                      RuleId::kStringCompare),
            0);
}

TEST(Engine, ArrayCopyRule) {
  EXPECT_EQ(countRule(analyze(R"(
    class C { void m(int[] src, int[] dst, int n) {
      for (int i = 0; i < n; i++) dst[i] = src[i];
    } }
  )"),
                      RuleId::kArrayCopy),
            1);
  // A transforming loop is not a copy.
  EXPECT_EQ(countRule(analyze(R"(
    class C { void m(int[] src, int[] dst, int n) {
      for (int i = 0; i < n; i++) dst[i] = src[i] * 2;
    } }
  )"),
                      RuleId::kArrayCopy),
            0);
}

TEST(Engine, ArrayTraversalRule) {
  EXPECT_EQ(countRule(analyze(R"(
    class C { int m(int[][] a, int n) {
      int acc = 0;
      for (int j = 0; j < n; j++)
        for (int i = 0; i < n; i++)
          acc += a[i][j];
      return acc;
    } }
  )"),
                      RuleId::kArrayTraversal),
            1);
  EXPECT_EQ(countRule(analyze(R"(
    class C { int m(int[][] a, int n) {
      int acc = 0;
      for (int i = 0; i < n; i++)
        for (int j = 0; j < n; j++)
          acc += a[i][j];
      return acc;
    } }
  )"),
                      RuleId::kArrayTraversal),
            0);
}

TEST(Engine, RuleDisablingSuppressesDiagnostics) {
  SuggestionEngine::Options opts;
  opts.enabled[static_cast<int>(RuleId::kTernaryOperator)] = false;
  const auto hits =
      analyze("class C { int m(int x) { return x > 0 ? 1 : 2; } }", opts);
  EXPECT_EQ(countRule(hits, RuleId::kTernaryOperator), 0);
}

TEST(Engine, SuggestionsCarryTableOneWording) {
  const auto hits = analyze("class C { static int x; }");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message().find("17,700%"), std::string::npos);
  EXPECT_EQ(ruleComponent(RuleId::kStaticKeyword), "Static keyword");
  // Every rule has non-placeholder wording.
  for (int i = 0; i < kRuleCount; ++i) {
    EXPECT_NE(ruleSuggestion(static_cast<RuleId>(i)), "?");
    EXPECT_NE(ruleComponent(static_cast<RuleId>(i)), "?");
  }
}

TEST(Engine, MultiClassProgramReportsPerClass) {
  jlang::Program prog;
  prog.units.push_back(jlang::Parser("a.mjava", R"(
    class A { static int x; }
  )").parseUnit());
  prog.units.push_back(jlang::Parser("b.mjava", R"(
    class B { long y; }
  )").parseUnit());
  SuggestionEngine engine;
  const auto hits = engine.analyzeProgram(prog);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].className, "A");
  EXPECT_EQ(hits[0].file, "a.mjava");
  EXPECT_EQ(hits[1].className, "B");
}

TEST(Views, RenderAllFigures) {
  const auto hits = analyze("class C { static int x; long y; }");
  const std::string dynamic = renderDynamicView("C.mjava", hits);
  EXPECT_NE(dynamic.find("JEPO — C.mjava"), std::string::npos);
  EXPECT_NE(dynamic.find("17,700%"), std::string::npos);

  const std::string optimizer = renderOptimizerView(hits);
  EXPECT_NE(optimizer.find("Class"), std::string::npos);
  EXPECT_NE(optimizer.find("C"), std::string::npos);

  EXPECT_NE(renderToolbar().find("JEPO"), std::string::npos);
  EXPECT_NE(renderPopupMenu().find("JEPO profiler"), std::string::npos);
  EXPECT_NE(renderPopupMenu().find("JEPO optimizer"), std::string::npos);

  std::vector<jvm::MethodRecord> recs;
  recs.push_back({"Main.work", 0.001, 0.5, 0.4});
  const std::string prof = renderProfilerView(recs);
  EXPECT_NE(prof.find("Main.work"), std::string::npos);
  EXPECT_NE(prof.find("ms"), std::string::npos);

  const std::string empty = renderDynamicView("Clean.mjava", {});
  EXPECT_NE(empty.find("No suggestions"), std::string::npos);
}

TEST(Profiler, ProfilesCompletedRunWithDramColumn) {
  const auto prog = jlang::Parser::parseProgram("t.mjava", R"(
    class Main {
      static int work(int n) {
        int acc = 0;
        for (int i = 0; i < n; i++) acc += i;
        return acc;
      }
      static void main(String[] args) {
        System.out.println(work(60000));
      }
    }
  )");
  Profiler prof;
  prof.profile(prog);
  EXPECT_EQ(prof.programOutput(), "1799970000\n");
  ASSERT_EQ(prof.records().size(), 2u);

  const auto totals = prof.totals();
  ASSERT_EQ(totals.size(), 2u);
  for (const auto& t : totals) EXPECT_GT(t.dramJoules, 0.0);

  const std::string txt = prof.renderResultFile();
  EXPECT_NE(txt.find("Main.work"), std::string::npos);
  EXPECT_EQ(txt.find("(truncated)"), std::string::npos);
  // seconds + three energy domains per line.
  EXPECT_NE(txt.find(" ms\t"), std::string::npos);
}

TEST(Profiler, AbortRetainsTruncatedRecordsAndOutput) {
  const auto prog = jlang::Parser::parseProgram("t.mjava", R"(
    class Main {
      static void spin() { while (true) { int x = 1; } }
      static void main(String[] args) {
        System.out.println("starting");
        spin();
      }
    }
  )");
  Profiler prof;
  EXPECT_THROW(prof.profile(prog, {}, /*maxSteps=*/10'000), VmError);
  // Everything up to the abort survives: output, and the in-flight methods
  // as truncated records (innermost first).
  EXPECT_EQ(prof.programOutput(), "starting\n");
  ASSERT_EQ(prof.records().size(), 2u);
  EXPECT_EQ(prof.records()[0].method, "Main.spin");
  EXPECT_EQ(prof.records()[1].method, "Main.main");
  EXPECT_TRUE(prof.records()[0].truncated);
  EXPECT_TRUE(prof.records()[1].truncated);
  const std::string txt = prof.renderResultFile();
  EXPECT_NE(txt.find("(truncated)"), std::string::npos);
}

TEST(Profiler, MaxStepsAbortReplaysBitIdentically) {
  // The jepo_cli --max-steps contract: two runs of the same program with
  // the same step budget abort at the same point with identical records —
  // a daemon job killed by its budget replays exactly on a workstation.
  const auto prog = jlang::Parser::parseProgram("t.mjava", R"(
    class Main {
      static void spin() { while (true) { int x = 1; } }
      static void main(String[] args) {
        System.out.println("starting");
        spin();
      }
    }
  )");
  Profiler first;
  EXPECT_THROW(first.profile(prog, {}, /*maxSteps=*/25'000), VmError);
  Profiler second;
  EXPECT_THROW(second.profile(prog, {}, /*maxSteps=*/25'000), VmError);

  EXPECT_EQ(second.programOutput(), first.programOutput());
  ASSERT_EQ(second.records().size(), first.records().size());
  for (std::size_t i = 0; i < first.records().size(); ++i) {
    EXPECT_EQ(second.records()[i].method, first.records()[i].method);
    EXPECT_EQ(second.records()[i].seconds, first.records()[i].seconds);
    EXPECT_EQ(second.records()[i].packageJoules,
              first.records()[i].packageJoules);
    EXPECT_EQ(second.records()[i].truncated, first.records()[i].truncated);
  }
  // A larger budget aborts later: the budget is the only thing that
  // decides where the run stops.
  Profiler larger;
  EXPECT_THROW(larger.profile(prog, {}, /*maxSteps=*/50'000), VmError);
  EXPECT_GT(larger.records().back().seconds, first.records().back().seconds);
}

}  // namespace
}  // namespace jepo::core
