// Chrome trace_event export: turns recorded SpanEvents plus a Registry
// snapshot into the JSON object format understood by chrome://tracing and
// https://ui.perfetto.dev (one "X" complete event per span; counters,
// gauges and the dropped-span count ride along in "otherData").
#pragma once

#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace jepo::obs {

class TraceWriter {
 public:
  /// Render the trace document. `droppedSpans` is surfaced in otherData so
  /// a truncated flight recording is visible in the artifact itself.
  static std::string render(const std::vector<SpanEvent>& events,
                            const Registry::Snapshot& registry,
                            std::uint64_t droppedSpans);

  /// Render and write to `path`. Returns false on I/O failure.
  static bool writeFile(const std::string& path,
                        const std::vector<SpanEvent>& events,
                        const Registry::Snapshot& registry,
                        std::uint64_t droppedSpans);

  /// Convenience: everything currently recorded, to `path`.
  static bool writeCollected(const std::string& path);
};

}  // namespace jepo::obs
