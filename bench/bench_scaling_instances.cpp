// Section VIII's closing observation: "These results show an increase in
// metrics improvement when we increase the number of instances of MOA data
// to 20,000." This bench sweeps the instance count and reports the package
// improvement per classifier at each size.
//
// Flags: --sizes=a,b,c (default 500,1000,2000)  --runs=<n> (default 3)
#include "bench_common.hpp"

#include "experiments/weka_experiment.hpp"

int main(int argc, char** argv) {
  using namespace jepo;
  bench::Flags flags(argc, argv);
  std::vector<std::size_t> sizes;
  for (const std::string& s : split(flags.get("sizes", "500,1000,2000"), ',')) {
    sizes.push_back(static_cast<std::size_t>(std::strtoul(s.c_str(), nullptr,
                                                          10)));
  }
  bench::printHeader(
      "Scaling — package improvement vs instance count (the paper reports "
      "improvements growing from 10k to 20k instances)");

  std::vector<std::string> header = {"Classifiers"};
  for (std::size_t n : sizes) header.push_back(std::to_string(n) + " inst");
  TextTable table(header);

  // The style-sensitive classifiers; near-zero rows (RandomTree, Logistic,
  // SMO) stay in the noise at every size and are omitted for signal.
  const ml::ClassifierKind kinds[] = {
      ml::ClassifierKind::kJ48, ml::ClassifierKind::kRandomForest,
      ml::ClassifierKind::kRepTree, ml::ClassifierKind::kNaiveBayes,
      ml::ClassifierKind::kSgd, ml::ClassifierKind::kKStar,
      ml::ClassifierKind::kIbk};

  for (const auto kind : kinds) {
    std::vector<std::string> row = {std::string(ml::classifierName(kind))};
    for (std::size_t n : sizes) {
      experiments::WekaExperimentConfig cfg;
      cfg.instances = n;
      cfg.runs = static_cast<int>(flags.getInt("runs", 4));
      cfg.corpusScale = 0.02;  // Changes column not under test here
      const auto r = experiments::runClassifierExperiment(kind, cfg);
      row.push_back(fixed(r.packageImprovement, 2) + "%");
    }
    table.addRow(std::move(row));
    std::fflush(stdout);
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nAbsolute energy grows superlinearly with instances while the\n"
      "relative improvement stays put or grows (fixed overheads amortize),\n"
      "matching the paper's 20k-instance remark.");
  return 0;
}
