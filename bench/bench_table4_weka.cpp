// Table IV reproduction: per classifier — #changes, package / CPU / time
// improvement after applying JEPO's suggestions, and accuracy drop — using
// the Section VIII protocol (stratified 10-fold CV, N runs, Tukey loop).
//
// Flags:
//   --instances=<n>     CV sample size (default 1000; paper used 10,000)
//   --runs=<n>          measurement repetitions (default 5; paper: 10)
//   --folds=<n>         CV folds (default 10, as in the paper)
//   --corpus-scale=<f>  corpus fraction for the Changes count (default 0.10)
//   --trees=<n>         RandomForest size (default 10)
//   --threads=<n>       1 = serial (default); >1 or 0 (= one per core) times
//                       the serial pass against the ParallelRunner, checks
//                       the rows are bit-identical, and reports the speedup
//   --paper-scale       instances=10000, runs=10, corpus-scale=1.0
//   --intervals         bootstrap 95% confidence intervals over the run
//                       matrix; prints the Table-IV-with-intervals report
//                       and appends the interval fields to --json rows
//   --resamples=<n>     bootstrap resamples per interval (default 200)
#include "bench_common.hpp"

#include <chrono>

#include "experiments/interval_report.hpp"
#include "experiments/weka_experiment.hpp"

namespace {

using jepo::experiments::ClassifierResult;

/// Bit-exact comparison of the probabilistic layer.
bool identicalIntervals(const ClassifierResult& x, const ClassifierResult& y) {
  if (x.intervals.has_value() != y.intervals.has_value()) return false;
  if (!x.intervals) return true;
  const auto& a = *x.intervals;
  const auto& b = *y.intervals;
  const auto same = [](const jepo::stats::Interval& p,
                       const jepo::stats::Interval& q) {
    return p.lo == q.lo && p.mean == q.mean && p.hi == q.hi;
  };
  return same(a.basePackage, b.basePackage) &&
         same(a.optPackage, b.optPackage) &&
         same(a.packageImprovement, b.packageImprovement) &&
         a.validRuns == b.validRuns && a.excludedRuns == b.excludedRuns &&
         a.retriedFraction == b.retriedFraction &&
         a.degradedFraction == b.degradedFraction &&
         a.widenFactor == b.widenFactor &&
         a.pointEstimate == b.pointEstimate;
}

/// Bit-exact row comparison — the ParallelRunner's determinism contract.
bool identicalRows(const std::vector<ClassifierResult>& a,
                   const std::vector<ClassifierResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const ClassifierResult& x = a[i];
    const ClassifierResult& y = b[i];
    if (x.kind != y.kind || x.changes != y.changes ||
        x.changesFullScale != y.changesFullScale ||
        x.packageImprovement != y.packageImprovement ||
        x.cpuImprovement != y.cpuImprovement ||
        x.timeImprovement != y.timeImprovement ||
        x.accuracyBase != y.accuracyBase || x.accuracyOpt != y.accuracyOpt ||
        x.accuracyDrop != y.accuracyDrop ||
        x.basePackageJoules != y.basePackageJoules ||
        x.optPackageJoules != y.optPackageJoules ||
        x.tukeyRemeasurements != y.tukeyRemeasurements ||
        x.degenerateBaseline != y.degenerateBaseline ||
        x.quality != y.quality || x.faultRetries != y.faultRetries ||
        x.flagged != y.flagged || !identicalIntervals(x, y)) {
      return false;
    }
  }
  return true;
}

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jepo;
  bench::Flags flags(argc, argv,
                     {"instances", "folds", "corpus-scale", "trees",
                      "threads", "paper-scale", "intervals", "resamples"});
  bench::BenchReport report("bench_table4_weka", flags);
  experiments::WekaExperimentConfig cfg;
  cfg.instances =
      static_cast<std::size_t>(flags.getInt("instances", 1000));
  cfg.runs = static_cast<int>(flags.getInt("runs", 5));
  cfg.folds = static_cast<std::size_t>(flags.getInt("folds", 10));
  cfg.corpusScale = flags.getDouble("corpus-scale", 0.10);
  cfg.forestTrees = static_cast<int>(flags.getInt("trees", 10));
  const auto threads =
      static_cast<std::size_t>(flags.getInt("threads", 1));
  if (flags.getBool("paper-scale")) {
    cfg.instances = 10'000;
    cfg.runs = 10;
    cfg.corpusScale = 1.0;
  }
  cfg.intervals = flags.getBool("intervals");
  cfg.bootstrap.resamples =
      static_cast<int>(flags.getInt("resamples", cfg.bootstrap.resamples));
  cfg.faultPlan = bench::faultSpecFromFlags(flags);
  report.config("faultPlan",
                cfg.faultPlan ? cfg.faultPlan->describe() : "none");
  report.config("instances", cfg.instances);
  report.config("runs", cfg.runs);
  report.config("folds", cfg.folds);
  report.config("corpusScale", cfg.corpusScale);
  report.config("trees", cfg.forestTrees);
  report.config("threads", threads);

  bench::printHeader(
      "Table IV — WEKA evaluation (instances=" +
      std::to_string(cfg.instances) + ", folds=" + std::to_string(cfg.folds) +
      ", runs=" + std::to_string(cfg.runs) + ")");

  TextTable table({"Classifiers", "Changes", "Package Impr (%)",
                   "CPU Impr (%)", "Time Impr (%)", "Acc Drop (%)",
                   "Acc", "Paper(chg/pkg/cpu/time/drop)"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight, Align::kRight, Align::kLeft});

  std::vector<experiments::ClassifierResult> results;
  double serialSeconds = 0.0;
  double parallelSeconds = 0.0;
  if (threads == 1) {
    for (int k = 0; k < ml::kClassifierKindCount; ++k) {
      const auto kind = static_cast<ml::ClassifierKind>(k);
      results.push_back(experiments::runClassifierExperiment(kind, cfg));
    }
  } else {
    // The --threads axis: one serial pass, one ParallelRunner pass over the
    // identical config, wall-clock timed, rows compared bit-for-bit.
    experiments::WekaExperimentConfig serialCfg = cfg;
    serialCfg.parallel.threads = 1;
    auto t0 = std::chrono::steady_clock::now();
    const auto serial = experiments::runWekaExperiment(serialCfg);
    serialSeconds = secondsSince(t0);

    experiments::WekaExperimentConfig parallelCfg = cfg;
    parallelCfg.parallel.threads = threads;
    t0 = std::chrono::steady_clock::now();
    results = experiments::runWekaExperiment(parallelCfg);
    parallelSeconds = secondsSince(t0);

    if (!identicalRows(serial, results)) {
      std::fputs("FAIL: parallel rows differ from serial rows\n", stderr);
      return 1;
    }
  }

  for (const auto& r : results) {
    const auto paper = experiments::paperTable4Row(r.kind);
    report.addRow(experiments::table4JsonRow(r));
    table.addRow({std::string(ml::classifierName(r.kind)),
                  std::to_string(r.changesFullScale),
                  fixed(r.packageImprovement, 2), fixed(r.cpuImprovement, 2),
                  fixed(r.timeImprovement, 2), fixed(r.accuracyDrop, 2),
                  fixed(r.accuracyBase * 100.0, 1) + "%",
                  std::to_string(paper.changes) + "/" +
                      fixed(paper.packageImprovement, 2) + "/" +
                      fixed(paper.cpuImprovement, 2) + "/" +
                      fixed(paper.timeImprovement, 2) + "/" +
                      fixed(paper.accuracyDrop, 2)});
  }
  std::fputs(table.render().c_str(), stdout);
  if (cfg.intervals) {
    bench::printHeader("Table IV with 95% bootstrap intervals (resamples=" +
                       std::to_string(cfg.bootstrap.resamples) + ")");
    std::fputs(experiments::renderIntervalReport(results).c_str(), stdout);
  }
  if (cfg.faultPlan) {
    int flaggedRows = 0;
    int retries = 0;
    auto worstQ = rapl::MeasurementQuality::kOk;
    for (const auto& r : results) {
      if (r.flagged) ++flaggedRows;
      retries += r.faultRetries;
      worstQ = worst(worstQ, r.quality);
    }
    std::printf(
        "\nFault plan: %s\n%d/%zu rows flagged, %d retries absorbed; worst "
        "row quality: %s\n",
        cfg.faultPlan->describe().c_str(), flaggedRows, results.size(),
        retries, std::string(rapl::qualityName(worstQ)).c_str());
  }
  if (threads != 1) {
    const std::size_t resolved = ParallelConfig{threads}.resolvedThreads();
    std::printf(
        "\nSerial: %.2f s   Parallel (%zu threads): %.2f s   speedup: "
        "%.2fx   rows bit-identical: yes\n",
        serialSeconds, resolved, parallelSeconds,
        serialSeconds / parallelSeconds);
    report.config("serialSeconds", serialSeconds);
    report.config("parallelSeconds", parallelSeconds);
  }
  std::puts(
      "\nShape checks: Random Forest shows the largest improvement; Random\n"
      "Tree / Logistic / SMO sit near zero; energy improvements exceed time\n"
      "improvements; accuracy drops stay below 1%.");
  return report.finish();
}
