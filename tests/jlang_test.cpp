#include <gtest/gtest.h>

#include "jlang/lexer.hpp"
#include "jlang/parser.hpp"
#include "jlang/printer.hpp"

namespace jepo::jlang {
namespace {

std::vector<Token> lex(std::string_view src) { return Lexer(src).tokenize(); }

CompilationUnit parse(std::string_view src) {
  return Parser("test.mjava", src).parseUnit();
}

// ------------------------------------------------------------------ lexer

TEST(Lexer, EmptySourceYieldsEof) {
  const auto toks = lex("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].type, Tok::kEof);
}

TEST(Lexer, NumericLiteralFlavors) {
  const auto toks = lex("1 12L 1.5 1.5f 2e3 2.5E-2 3d");
  ASSERT_GE(toks.size(), 8u);
  EXPECT_EQ(toks[0].type, Tok::kIntLiteral);
  EXPECT_EQ(toks[0].intValue, 1);
  EXPECT_EQ(toks[1].type, Tok::kLongLiteral);
  EXPECT_EQ(toks[1].intValue, 12);
  EXPECT_EQ(toks[2].type, Tok::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(toks[2].floatValue, 1.5);
  EXPECT_FALSE(toks[2].scientific);
  EXPECT_EQ(toks[3].type, Tok::kFloatLiteral);
  EXPECT_FLOAT_EQ(static_cast<float>(toks[3].floatValue), 1.5f);
  EXPECT_EQ(toks[4].type, Tok::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(toks[4].floatValue, 2000.0);
  EXPECT_TRUE(toks[4].scientific);
  EXPECT_EQ(toks[5].type, Tok::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(toks[5].floatValue, 0.025);
  EXPECT_TRUE(toks[5].scientific);
  EXPECT_EQ(toks[6].type, Tok::kDoubleLiteral);  // 3d
}

TEST(Lexer, StringAndCharEscapes) {
  const auto toks = lex(R"("a\nb" '\t' '\'' "quote\"end")");
  EXPECT_EQ(toks[0].type, Tok::kStringLiteral);
  EXPECT_EQ(toks[0].text, "a\nb");
  EXPECT_EQ(toks[1].type, Tok::kCharLiteral);
  EXPECT_EQ(toks[1].intValue, '\t');
  EXPECT_EQ(toks[2].intValue, '\'');
  EXPECT_EQ(toks[3].text, "quote\"end");
}

TEST(Lexer, CommentsAreSkipped) {
  const auto toks = lex("a // line comment\n /* block\n comment */ b");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[1].line, 3);
}

TEST(Lexer, OperatorsMaximalMunch) {
  const auto toks = lex("++ += + << <= < >= >> > == = != ! && & || |");
  const std::vector<Tok> expect = {
      Tok::kPlusPlus, Tok::kPlusAssign, Tok::kPlus, Tok::kShl, Tok::kLe,
      Tok::kLt,       Tok::kGe,         Tok::kShr,  Tok::kGt,  Tok::kEqEq,
      Tok::kAssign,   Tok::kNotEq,      Tok::kBang, Tok::kAmpAmp, Tok::kAmp,
      Tok::kPipePipe, Tok::kPipe,       Tok::kEof};
  ASSERT_EQ(toks.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(toks[i].type, expect[i]) << "token " << i;
  }
}

TEST(Lexer, TracksLineAndColumn) {
  const auto toks = lex("a\n  b");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[0].col, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[1].col, 3);
}

TEST(Lexer, RejectsMalformedInput) {
  EXPECT_THROW(lex("\"unterminated"), ParseError);
  EXPECT_THROW(lex("'ab'"), ParseError);
  EXPECT_THROW(lex("/* open"), ParseError);
  EXPECT_THROW(lex("#"), ParseError);
}

// ----------------------------------------------------------------- parser

TEST(Parser, PackageImportsAndClass) {
  const auto unit = parse(R"(
    package weka.classifiers.trees;
    import weka.core.Instances;
    import weka.core.Utils;
    class J48 { }
  )");
  EXPECT_EQ(unit.packageName, "weka.classifiers.trees");
  ASSERT_EQ(unit.imports.size(), 2u);
  EXPECT_EQ(unit.imports[0], "weka.core.Instances");
  ASSERT_EQ(unit.classes.size(), 1u);
  EXPECT_EQ(unit.classes[0].name, "J48");
}

TEST(Parser, FieldsWithModifiersAndGroups) {
  const auto unit = parse(R"(
    class C {
      static int counter = 0;
      private double ridge;
      int a, b = 2, c;
      long[] weights;
      double[][] matrix;
    }
  )");
  const ClassDecl& c = unit.classes[0];
  ASSERT_EQ(c.fields.size(), 7u);
  EXPECT_TRUE(c.fields[0].isStatic);
  EXPECT_EQ(c.fields[0].name, "counter");
  EXPECT_FALSE(c.fields[1].isStatic);
  EXPECT_EQ(c.fields[2].name, "a");
  EXPECT_EQ(c.fields[3].name, "b");
  ASSERT_NE(c.fields[3].init, nullptr);
  EXPECT_EQ(c.fields[4].name, "c");
  EXPECT_EQ(c.fields[5].type.arrayDims, 1);
  EXPECT_EQ(c.fields[5].type.prim, Prim::kLong);
  EXPECT_EQ(c.fields[6].type.arrayDims, 2);
}

TEST(Parser, MethodSignatures) {
  const auto unit = parse(R"(
    class C {
      static void main(String[] args) { }
      int add(int a, int b) { return a + b; }
      double[] copy(double[] src, int n) { return src; }
    }
  )");
  const ClassDecl& c = unit.classes[0];
  ASSERT_EQ(c.methods.size(), 3u);
  EXPECT_TRUE(c.methods[0].isStatic);
  EXPECT_EQ(c.methods[0].params.size(), 1u);
  EXPECT_EQ(c.methods[0].params[0].type.className, "String");
  EXPECT_EQ(c.methods[0].params[0].type.arrayDims, 1);
  EXPECT_EQ(c.methods[1].returnType.prim, Prim::kInt);
  EXPECT_EQ(c.methods[2].returnType.arrayDims, 1);
}

ExprPtr parseOneExpr(const std::string& expr) {
  auto unit = parse("class C { void m() { int x = " + expr + "; } }");
  auto& body = unit.classes[0].methods[0].body->body;
  return std::move(body.at(0)->init);
}

TEST(Parser, PrecedenceMulOverAdd) {
  const auto e = parseOneExpr("1 + 2 * 3");
  ASSERT_EQ(e->kind, ExprKind::kBinary);
  EXPECT_EQ(e->binOp, BinOp::kAdd);
  EXPECT_EQ(e->b->binOp, BinOp::kMul);
}

TEST(Parser, PrecedenceComparisonOverLogical) {
  const auto e = parseOneExpr("a < b && c > d");
  EXPECT_EQ(e->binOp, BinOp::kAndAnd);
  EXPECT_EQ(e->a->binOp, BinOp::kLt);
  EXPECT_EQ(e->b->binOp, BinOp::kGt);
}

TEST(Parser, TernaryNestsRightAssociatively) {
  const auto e = parseOneExpr("a ? 1 : b ? 2 : 3");
  ASSERT_EQ(e->kind, ExprKind::kTernary);
  EXPECT_EQ(e->c->kind, ExprKind::kTernary);
}

TEST(Parser, CallsFieldsAndIndexChains) {
  const auto e = parseOneExpr("obj.field.method(1, x)[i]");
  ASSERT_EQ(e->kind, ExprKind::kArrayIndex);
  const Expr& call = *e->a;
  ASSERT_EQ(call.kind, ExprKind::kCall);
  EXPECT_EQ(call.strValue, "method");
  EXPECT_EQ(call.args.size(), 2u);
  EXPECT_EQ(call.a->kind, ExprKind::kFieldAccess);
}

TEST(Parser, NewObjectAndArrays) {
  const auto obj = parseOneExpr("new StringBuilder()");
  EXPECT_EQ(obj->kind, ExprKind::kNew);
  EXPECT_EQ(obj->strValue, "StringBuilder");

  const auto arr = parseOneExpr("new double[10][20]");
  ASSERT_EQ(arr->kind, ExprKind::kNewArray);
  EXPECT_EQ(arr->args.size(), 2u);
  EXPECT_EQ(arr->type.prim, Prim::kDouble);
}

TEST(Parser, CastVsParenExpression) {
  const auto cast = parseOneExpr("(int) x");
  ASSERT_EQ(cast->kind, ExprKind::kCast);
  EXPECT_EQ(cast->type.prim, Prim::kInt);

  const auto paren = parseOneExpr("(x) + 1");
  EXPECT_EQ(paren->kind, ExprKind::kBinary);
}

TEST(Parser, StatementForms) {
  const auto unit = parse(R"(
    class C {
      int m(int n) {
        int total = 0;
        for (int i = 0; i < n; i++) {
          total += i;
        }
        while (total > 100) total--;
        if (total % 2 == 0) total++; else total--;
        switch (total) {
          case 0: return 0;
          case 1: break;
          default: total = 5;
        }
        try {
          total /= n;
        } catch (ArithmeticException e) {
          total = -1;
        } finally {
          total++;
        }
        return total;
      }
    }
  )");
  const auto& body = unit.classes[0].methods[0].body->body;
  ASSERT_EQ(body.size(), 7u);
  EXPECT_EQ(body[0]->kind, StmtKind::kVarDecl);
  EXPECT_EQ(body[1]->kind, StmtKind::kFor);
  EXPECT_EQ(body[2]->kind, StmtKind::kWhile);
  EXPECT_EQ(body[3]->kind, StmtKind::kIf);
  EXPECT_EQ(body[4]->kind, StmtKind::kSwitch);
  EXPECT_EQ(body[4]->cases.size(), 3u);
  EXPECT_EQ(body[5]->kind, StmtKind::kTry);
  EXPECT_EQ(body[5]->catches.size(), 1u);
  ASSERT_NE(body[5]->finallyBlock, nullptr);
  EXPECT_EQ(body[6]->kind, StmtKind::kReturn);
}

TEST(Parser, RejectsBrokenInput) {
  EXPECT_THROW(parse("class C { int m() { return 1 } }"), ParseError);
  EXPECT_THROW(parse("class C { int m() { 1 = x; } }"), ParseError);
  EXPECT_THROW(parse("class C { void m() { try { } } }"), ParseError);
  EXPECT_THROW(parse("class { }"), ParseError);
  EXPECT_THROW(parse("class C { void m() { x++ ++; } }"), ParseError);
}

TEST(Parser, ErrorsCarryFileAndLocation) {
  try {
    parse("class C {\n  int m() { return 1 }\n}");
    FAIL() << "should throw";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("test.mjava"), std::string::npos);
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(Parser, MainClassDiscovery) {
  Program prog;
  prog.units.push_back(parse("class A { static void main(String[] a) { } }"));
  prog.units.push_back(parse("class B { void main() { } }"));  // not static
  const auto mains = prog.mainClasses();
  ASSERT_EQ(mains.size(), 1u);
  EXPECT_EQ(mains[0]->name, "A");
  EXPECT_NE(prog.findClass("B"), nullptr);
  EXPECT_EQ(prog.findClass("Zz"), nullptr);
}

// ---------------------------------------------------------------- printer

/// The canonical-print fixpoint property: print(parse(print(x))) == print(x).
void expectRoundTrip(const std::string& src) {
  const auto unit1 = parse(src);
  const std::string printed1 = printUnit(unit1);
  const auto unit2 = parse(printed1);
  const std::string printed2 = printUnit(unit2);
  EXPECT_EQ(printed1, printed2) << "original source:\n" << src;
}

TEST(Printer, RoundTripSimpleClass) {
  expectRoundTrip(R"(
    package demo;
    class C {
      static int hits = 0;
      int twice(int v) { return v * 2; }
    }
  )");
}

TEST(Printer, RoundTripAllStatementForms) {
  expectRoundTrip(R"(
    class K {
      int m(int n) {
        int total = 0;
        long big = 10L;
        double d = 1.5e3;
        float f = 2.5f;
        char ch = 'x';
        String s = "hi\n";
        for (int i = 0; i < n; i++) total += i;
        while (total > 0) { total--; if (total == 3) break; else continue; }
        int t = total > 0 ? 1 : -1;
        switch (t) { case -1: t = 0; break; default: t = 2; }
        try { t = t / n; } catch (ArithmeticException e) { t = 0; }
        finally { t++; }
        int[] a = new int[4];
        int[][] m2 = new int[2][2];
        m2[0][1] = a[2] + (int) d;
        boolean ok = !(t == 0) && (s.equals("hi\n") || n >= 2);
        throw new RuntimeException("end");
      }
    }
  )");
}

TEST(Printer, PreservesScientificNotationSpelling) {
  const auto unit = parse("class C { double d = 1e4; double p = 10000.0; }");
  const std::string out = printUnit(unit);
  EXPECT_NE(out.find("1e4"), std::string::npos);
  EXPECT_NE(out.find("10000.0"), std::string::npos);
}

TEST(Printer, CloneProducesIdenticalPrint) {
  const auto unit = parse(R"(
    class C {
      int f(int x) {
        int y = x % 7;
        return y > 0 ? y : -y;
      }
    }
  )");
  const MethodDecl& m = unit.classes[0].methods[0];
  const StmtPtr copy = cloneStmt(*m.body);
  EXPECT_EQ(printStmt(*copy), printStmt(*m.body));
}

}  // namespace
}  // namespace jepo::jlang
