file(REMOVE_RECURSE
  "CMakeFiles/jepo_cli.dir/jepo_cli.cpp.o"
  "CMakeFiles/jepo_cli.dir/jepo_cli.cpp.o.d"
  "jepo_cli"
  "jepo_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jepo_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
