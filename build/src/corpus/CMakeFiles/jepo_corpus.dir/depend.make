# Empty dependencies file for jepo_corpus.
# This may be replaced when dependencies are built.
