#include "ml/selector.hpp"

#include <numeric>

#include "ml/evaluation.hpp"

namespace jepo::ml {

ModelSelector::ModelSelector(CodeStyle style, double holdoutFraction,
                             std::uint64_t seed)
    : style_(style), holdoutFraction_(holdoutFraction), seed_(seed) {
  JEPO_REQUIRE(holdoutFraction > 0.0 && holdoutFraction < 1.0,
               "holdout fraction must be in (0, 1)");
}

std::vector<CandidateReport> ModelSelector::evaluate(
    const Instances& data, const std::vector<Candidate>& candidates,
    const DeploymentBudget& budget) const {
  JEPO_REQUIRE(data.numInstances() >= 10, "too little data to split");

  // One deterministic split shared by every candidate.
  Rng rng(seed_);
  std::vector<std::size_t> idx(data.numInstances());
  std::iota(idx.begin(), idx.end(), 0);
  for (std::size_t i = idx.size(); i > 1; --i) {
    std::swap(idx[i - 1], idx[rng.nextBelow(i)]);
  }
  const auto holdoutCount = static_cast<std::size_t>(
      static_cast<double>(idx.size()) * holdoutFraction_);
  const std::vector<std::size_t> holdoutIdx(idx.begin(),
                                            idx.begin() +
                                                static_cast<std::ptrdiff_t>(
                                                    holdoutCount));
  const std::vector<std::size_t> trainIdx(idx.begin() +
                                              static_cast<std::ptrdiff_t>(
                                                  holdoutCount),
                                          idx.end());
  const Instances train = data.select(trainIdx);
  const Instances holdout = data.select(holdoutIdx);

  std::vector<CandidateReport> out;
  out.reserve(candidates.size());
  for (const Candidate& c : candidates) {
    CandidateReport report;
    report.candidate = c;

    energy::SimMachine machine;
    MlRuntime rt(machine, style_,
                 StyleExposure::forClassifier(static_cast<int>(c.kind)));
    auto model = makeClassifier(c.kind, c.precision, rt, seed_ + 7);

    model->train(train);
    const energy::MachineSample afterTrain = machine.sample();
    report.trainJoules = afterTrain.packageJoules;

    std::size_t hits = 0;
    for (std::size_t i = 0; i < holdout.numInstances(); ++i) {
      hits += model->predict(holdout.row(i)) == holdout.classValue(i);
    }
    const energy::MachineSample afterPredict = machine.sample();
    report.accuracy =
        static_cast<double>(hits) /
        static_cast<double>(holdout.numInstances());
    report.joulesPerInference =
        (afterPredict.packageJoules - afterTrain.packageJoules) /
        static_cast<double>(holdout.numInstances());
    report.secondsPerInference =
        (afterPredict.seconds - afterTrain.seconds) /
        static_cast<double>(holdout.numInstances());

    report.feasible = report.accuracy >= budget.minAccuracy &&
                      report.joulesPerInference <=
                          budget.maxJoulesPerInference &&
                      report.secondsPerInference <=
                          budget.maxSecondsPerInference;
    out.push_back(report);
  }
  return out;
}

const CandidateReport* ModelSelector::select(
    const std::vector<CandidateReport>& reports) {
  const CandidateReport* best = nullptr;
  for (const auto& r : reports) {
    if (!r.feasible) continue;
    if (best == nullptr || r.accuracy > best->accuracy ||
        (r.accuracy == best->accuracy &&
         r.joulesPerInference < best->joulesPerInference)) {
      best = &r;
    }
  }
  return best;
}

}  // namespace jepo::ml
