#include "jepo/views.hpp"

#include "support/strings.hpp"
#include "support/table.hpp"

namespace jepo::core {

std::string renderToolbar() {
  return "[ JEPO ]  (opens the JEPO view and shows suggestions for the "
         "active file)\n";
}

std::string renderPopupMenu() {
  return "Project context menu\n"
         "  > JEPO\n"
         "      JEPO profiler   (inject energy measurement, run project)\n"
         "      JEPO optimizer  (suggestions for all classes)\n";
}

std::string renderDynamicView(const std::string& fileName,
                              const std::vector<Suggestion>& suggestions) {
  TextTable t({"Line", "Suggestion"}, {Align::kRight, Align::kLeft});
  t.setTitle("JEPO — " + fileName);
  for (const auto& s : suggestions) {
    t.addRow({std::to_string(s.line), s.message()});
  }
  if (suggestions.empty()) {
    t.addRow({"-", "No suggestions: the file already follows the "
                    "energy-efficient patterns."});
  }
  return t.render();
}

std::string renderOptimizerView(const std::vector<Suggestion>& suggestions) {
  TextTable t({"Class", "Line", "Suggestion"},
              {Align::kLeft, Align::kRight, Align::kLeft});
  t.setTitle("JEPO optimizer");
  for (const auto& s : suggestions) {
    t.addRow({s.className, std::to_string(s.line), s.message()});
  }
  return t.render();
}

std::string renderProfilerView(const std::vector<jvm::MethodRecord>& records) {
  TextTable t({"Method", "Execution Time", "Package Energy", "Core Energy"},
              {Align::kLeft, Align::kRight, Align::kRight, Align::kRight});
  t.setTitle("JEPO profiler");
  for (const auto& r : records) {
    t.addRow({r.method, fixed(r.seconds * 1e3, 3) + " ms",
              fixed(r.packageJoules, 6) + " J",
              fixed(r.coreJoules, 6) + " J"});
  }
  return t.render();
}

}  // namespace jepo::core
