#include "jepo/walk.hpp"

namespace jepo::core {

using jlang::Expr;
using jlang::ExprKind;
using jlang::Stmt;

void walkExpr(const Expr& e, const std::function<void(const Expr&)>& fn) {
  fn(e);
  if (e.a) walkExpr(*e.a, fn);
  if (e.b) walkExpr(*e.b, fn);
  if (e.c) walkExpr(*e.c, fn);
  for (const auto& arg : e.args) walkExpr(*arg, fn);
}

void walkStmt(const Stmt& s, const std::function<void(const Stmt&)>& onStmt,
              const std::function<void(const Expr&)>& onExpr) {
  onStmt(s);
  auto expr = [&](const jlang::ExprPtr& e) {
    if (e) walkExpr(*e, onExpr);
  };
  expr(s.init);
  expr(s.expr);
  expr(s.cond);
  for (const auto& u : s.update) expr(u);
  for (const auto& st : s.body) walkStmt(*st, onStmt, onExpr);
  if (s.thenStmt) walkStmt(*s.thenStmt, onStmt, onExpr);
  if (s.elseStmt) walkStmt(*s.elseStmt, onStmt, onExpr);
  if (s.tryBlock) walkStmt(*s.tryBlock, onStmt, onExpr);
  for (const auto& c : s.catches) walkStmt(*c.body, onStmt, onExpr);
  if (s.finallyBlock) walkStmt(*s.finallyBlock, onStmt, onExpr);
  for (const auto& c : s.cases) {
    for (const auto& st : c.body) walkStmt(*st, onStmt, onExpr);
  }
}

bool isPureExpr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kIntLit:
    case ExprKind::kLongLit:
    case ExprKind::kFloatLit:
    case ExprKind::kDoubleLit:
    case ExprKind::kCharLit:
    case ExprKind::kStringLit:
    case ExprKind::kBoolLit:
    case ExprKind::kNullLit:
    case ExprKind::kVarRef:
      return true;
    case ExprKind::kBinary:
      // Division/modulus may throw ArithmeticException.
      if (e.binOp == jlang::BinOp::kDiv || e.binOp == jlang::BinOp::kMod) {
        return false;
      }
      return isPureExpr(*e.a) && isPureExpr(*e.b);
    case ExprKind::kUnary:
      if (e.unOp == jlang::UnOp::kPreInc || e.unOp == jlang::UnOp::kPreDec ||
          e.unOp == jlang::UnOp::kPostInc || e.unOp == jlang::UnOp::kPostDec) {
        return false;
      }
      return isPureExpr(*e.a);
    case ExprKind::kTernary:
      return isPureExpr(*e.a) && isPureExpr(*e.b) && isPureExpr(*e.c);
    case ExprKind::kCast:
      return isPureExpr(*e.a);
    default:
      // Calls, assignments, allocations, field/array access: not reorderable.
      return false;
  }
}

int exprSize(const Expr& e) {
  int n = 0;
  walkExpr(e, [&n](const Expr&) { ++n; });
  return n;
}

bool mentionsVar(const Expr& e, const std::string& name) {
  bool found = false;
  walkExpr(e, [&](const Expr& node) {
    if (node.kind == ExprKind::kVarRef && node.strValue == name) found = true;
  });
  return found;
}

}  // namespace jepo::core
