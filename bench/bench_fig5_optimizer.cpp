// Figure 5 reproduction: the JEPO optimizer view — class, line and
// suggestion for every hit across the project — plus the automated
// refactoring JEPO's suggestions imply, verified by running the program
// before and after.
#include "bench_common.hpp"
#include "demo_project.hpp"

#include "energy/machine.hpp"
#include "jepo/engine.hpp"
#include "jepo/optimizer.hpp"
#include "jepo/views.hpp"
#include "jlang/parser.hpp"
#include "jlang/printer.hpp"
#include "jvm/interpreter.hpp"

namespace {

struct RunResult {
  std::string output;
  double packageJoules;
};

RunResult run(const jepo::jlang::Program& prog) {
  jepo::energy::SimMachine machine;
  jepo::jvm::Interpreter interp(prog, machine);
  interp.setMaxSteps(50'000'000);
  interp.runMain();
  return {interp.output(), machine.sample().packageJoules};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jepo;
  bench::Flags flags(argc, argv);
  bench::BenchReport report("bench_fig5_optimizer", flags);
  bench::printHeader("Fig. 5 — JEPO optimizer view");

  const jlang::Program program = jlang::Parser::parseProgram(
      "EdgePipeline.mjava", bench::kDemoProjectSource);
  core::SuggestionEngine engine;
  std::fputs(
      core::renderOptimizerView(engine.analyzeProgram(program)).c_str(),
      stdout);

  bench::printHeader("Applying the suggestions (JEPO optimizer, auto mode)");
  const core::OptimizeResult optimized =
      core::Optimizer().optimize(program);
  TextTable changes({"Class", "Line", "Change"},
                    {Align::kLeft, Align::kRight, Align::kLeft});
  for (const auto& c : optimized.changes) {
    changes.addRow({c.className, std::to_string(c.line), c.description});
    report.addRow({{"class", c.className},
                   {"line", c.line},
                   {"change", c.description}});
  }
  std::fputs(changes.render().c_str(), stdout);

  const RunResult before = run(program);
  const RunResult after = run(optimized.program);
  const std::string trimmed(jepo::trim(after.output));
  std::printf("\nBehaviour check: output %s (\"%s\")\n",
              before.output == after.output ? "unchanged" : "CHANGED",
              trimmed.c_str());
  std::printf("Package energy: %.6f J -> %.6f J (%.2f%% improvement)\n",
              before.packageJoules, after.packageJoules,
              (1.0 - after.packageJoules / before.packageJoules) * 100.0);
  report.config("beforeJoules", before.packageJoules);
  report.config("afterJoules", after.packageJoules);
  report.config("outputUnchanged", before.output == after.output);
  return report.finish();
}
