// Model-specific register (MSR) access layer.
//
// JEPO's profiler reads Intel RAPL energy-status MSRs at method entry/exit.
// On the authors' testbed that is /dev/cpu/*/msr; here the same register
// interface is implemented by a simulated device (SimulatedMsrDevice) that a
// deterministic machine model deposits energy into. Consumers (RaplReader,
// the profiler, the perf runner) are written against the abstract MsrDevice
// so a real /dev/cpu backend could be slotted in unchanged on Intel hardware.
//
// Failure model: read() reports faults by throwing MsrError, which carries
// the register address and a transient/permanent kind — the distinction a
// real msr driver exposes as EAGAIN (retry me) vs EIO/ENOENT (this register
// does not exist on this SKU). Callers branch on MsrError::transient()
// instead of string-matching; the fault-injection decorator
// (fault::FaultyMsrDevice) produces both kinds on demand.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "support/error.hpp"

namespace jepo::rapl {

/// Architectural MSR addresses used by RAPL (Intel SDM vol. 4).
enum Msr : std::uint32_t {
  kMsrRaplPowerUnit = 0x606,
  kMsrPkgEnergyStatus = 0x611,
  kMsrPp0EnergyStatus = 0x639,  // "core" energy in the paper's terminology
  kMsrPp1EnergyStatus = 0x641,  // uncore/graphics
  kMsrDramEnergyStatus = 0x619,
};

/// "0x611"-style register formatting for diagnostics.
std::string msrName(std::uint32_t msr);

/// A failed MSR read. `transient()` faults (the driver's EAGAIN: an SMI or
/// concurrent access interfered) are expected to succeed on retry;
/// permanent faults (EIO: the register is not implemented on this SKU) will
/// fail forever and callers should degrade instead of retrying.
class MsrError : public Error {
 public:
  enum class Kind { kTransient, kPermanent };

  MsrError(std::uint32_t msr, Kind kind, const std::string& what)
      : Error(what), msr_(msr), kind_(kind) {}

  std::uint32_t msr() const noexcept { return msr_; }
  Kind kind() const noexcept { return kind_; }
  bool transient() const noexcept { return kind_ == Kind::kTransient; }

 private:
  std::uint32_t msr_;
  Kind kind_;
};

/// Read-only register device. Reads of unknown addresses throw a permanent
/// MsrError, mirroring the EIO a real msr driver returns for unimplemented
/// registers.
class MsrDevice {
 public:
  virtual ~MsrDevice() = default;
  virtual std::uint64_t read(std::uint32_t msr) const = 0;
};

/// In-memory register file; the machine model writes, readers read.
class SimulatedMsrDevice final : public MsrDevice {
 public:
  std::uint64_t read(std::uint32_t msr) const override {
    const auto it = regs_.find(msr);
    if (it == regs_.end()) {
      throw MsrError(msr, MsrError::Kind::kPermanent,
                     "msr read: unimplemented register " + msrName(msr));
    }
    return it->second;
  }

  void write(std::uint32_t msr, std::uint64_t value) { regs_[msr] = value; }

  bool has(std::uint32_t msr) const { return regs_.count(msr) != 0; }

 private:
  std::unordered_map<std::uint32_t, std::uint64_t> regs_;
};

}  // namespace jepo::rapl
