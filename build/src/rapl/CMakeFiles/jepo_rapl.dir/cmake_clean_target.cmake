file(REMOVE_RECURSE
  "libjepo_rapl.a"
)
