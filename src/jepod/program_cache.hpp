// Compile-once-run-many: an LRU cache of parsed + resolved programs.
//
// Parsing and the PR 4 resolution pass dominate the cost of small repeated
// jobs ("Probabilistic energy profiler..." serves thousands of measurement
// jobs over the same program). The cache keys on a 64-bit FNV-1a hash of
// the source bytes, holds immutable shared_ptr<const Program> entries that
// any number of concurrent VMs can execute (PR 4: engines share no mutable
// state; ensureResolved is idempotent and runs once, at insert), and
// evicts least-recently-used entries past a byte budget measured in source
// bytes (the AST scales with the source; the budget is a knob, not an
// accounting exercise).
//
// The hash is only an index, never a proof of identity: FNV-1a is
// non-cryptographic and collisions are adversarially constructible, so in
// a multi-tenant daemon a hit is served only after the stored source bytes
// compare equal to the request's — a colliding entry can neither be served
// to nor displace another tenant's program; the collider just compiles
// fresh, uncached.
//
// Hit/miss/eviction land in the obs registry (jepod.cache.{hits,misses,
// evictions}, gauge jepod.cache.bytes) so bench_jepod can report hit rate
// without private counters.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "jlang/ast.hpp"
#include "obs/registry.hpp"

namespace jepo::jepod {

/// FNV-1a over the source bytes — stable across processes and runs, so a
/// cache key can double as a job's compile identity in logs.
std::uint64_t sourceHash(std::string_view source) noexcept;

/// One cached compile: the immutable program plus its identity.
struct CachedProgram {
  jlang::Program program;  // resolved at insert; treated as const after
  std::string source;      // the exact bytes compiled; verified on get()
  std::uint64_t hash = 0;
  std::size_t bytes = 0;   // source size, the budget currency
};

class ProgramCache {
 public:
  /// `byteBudget` bounds the sum of cached entries' source bytes
  /// (0 = unbounded). A single entry larger than the whole budget is
  /// admitted but becomes the first eviction candidate.
  explicit ProgramCache(std::size_t byteBudget);

  /// Look up by source hash, refreshing recency. nullptr on miss — which
  /// includes a hash collision: a hit is served only when the cached
  /// entry's source bytes equal `source`.
  std::shared_ptr<const CachedProgram> get(std::uint64_t hash,
                                           std::string_view source);

  /// Insert a freshly compiled program and evict past the budget. If a
  /// racing job inserted the same hash AND source first, the existing
  /// entry wins (both are compiled from identical bytes, so either is
  /// correct) and is returned. If the hash is occupied by a *different*
  /// source (collision), the incumbent is left untouched and `entry` is
  /// returned uncached.
  std::shared_ptr<const CachedProgram> put(
      std::shared_ptr<const CachedProgram> entry);

  std::size_t entryCount() const;
  std::size_t byteCount() const;

 private:
  void evictLocked();

  const std::size_t byteBudget_;
  mutable std::mutex mu_;
  /// MRU at front. The map holds iterators into the list (stable under
  /// splice), the list holds the entries.
  std::list<std::shared_ptr<const CachedProgram>> lru_;
  std::unordered_map<std::uint64_t, decltype(lru_)::iterator> byHash_;
  std::size_t bytes_ = 0;

  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* evictions_;
  obs::Gauge* bytesGauge_;
  obs::Gauge* entriesGauge_;
};

}  // namespace jepo::jepod
