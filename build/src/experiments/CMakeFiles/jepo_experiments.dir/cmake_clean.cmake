file(REMOVE_RECURSE
  "CMakeFiles/jepo_experiments.dir/weka_experiment.cpp.o"
  "CMakeFiles/jepo_experiments.dir/weka_experiment.cpp.o.d"
  "libjepo_experiments.a"
  "libjepo_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jepo_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
