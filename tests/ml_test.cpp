#include <gtest/gtest.h>

#include <set>

#include "data/airlines.hpp"
#include "ml/evaluation.hpp"
#include "ml/classifier.hpp"

namespace jepo::ml {
namespace {

// A small learnable dataset: two numeric features + one nominal, class
// depends on a simple rule with a little noise.
Instances makeToyData(std::size_t n, std::uint64_t seed) {
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute::numeric("x"));
  attrs.push_back(Attribute::numeric("y"));
  attrs.push_back(Attribute::nominal("color", {"red", "green", "blue"}));
  attrs.push_back(Attribute::nominal("label", {"neg", "pos"}));
  Instances data("toy", std::move(attrs), 3);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.nextDouble() * 10.0;
    const double y = rng.nextDouble() * 10.0;
    const auto color = static_cast<double>(rng.nextBelow(3));
    double score = (x > 5.0 ? 1.0 : -1.0) + (color == 2.0 ? 0.8 : -0.2) +
                   0.15 * (y - 5.0);
    if (rng.nextDouble() < 0.05) score = -score;  // 5% label noise
    data.addRow({x, y, color, score > 0 ? 1.0 : 0.0});
  }
  return data;
}

// ------------------------------------------------------------ dataset

TEST(Dataset, SchemaValidation) {
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute::numeric("x"));
  attrs.push_back(Attribute::nominal("c", {"a", "b"}));
  Instances data("d", attrs, 1);
  EXPECT_EQ(data.numClasses(), 2u);
  data.addRow({1.5, 0.0});
  EXPECT_THROW(data.addRow({1.0}), PreconditionError);        // width
  EXPECT_THROW(data.addRow({1.0, 5.0}), PreconditionError);   // label range
  EXPECT_THROW(Instances("d", attrs, 0), PreconditionError);  // numeric class
}

TEST(Dataset, FeatureIndicesSkipClass) {
  const Instances data = makeToyData(10, 1);
  EXPECT_EQ(data.featureIndices(), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Dataset, MajorityFraction) {
  std::vector<Attribute> attrs{Attribute::nominal("c", {"a", "b"})};
  Instances data("d", attrs, 0);
  data.addRow({0.0});
  data.addRow({0.0});
  data.addRow({0.0});
  data.addRow({1.0});
  EXPECT_DOUBLE_EQ(data.majorityClassFraction(), 0.75);
}

TEST(Dataset, SubsampleIsDeterministicAndSized) {
  const Instances data = makeToyData(100, 3);
  Rng r1(9);
  Rng r2(9);
  const Instances a = data.subsample(30, r1);
  const Instances b = data.subsample(30, r2);
  ASSERT_EQ(a.numInstances(), 30u);
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(a.row(i), b.row(i));
  }
}

TEST(Dataset, StratifiedFoldsPartitionAndStratify) {
  const Instances data = makeToyData(200, 5);
  Rng rng(11);
  const auto folds = data.stratifiedFolds(10, rng);
  ASSERT_EQ(folds.size(), 10u);

  // Every instance appears in exactly one test fold.
  std::set<std::size_t> seen;
  for (const auto& f : folds) {
    for (std::size_t i : f.test) {
      EXPECT_TRUE(seen.insert(i).second) << "instance in two test folds";
    }
    EXPECT_EQ(f.train.size() + f.test.size(), data.numInstances());
  }
  EXPECT_EQ(seen.size(), data.numInstances());

  // Class ratio in each fold tracks the global ratio.
  const double global = data.majorityClassFraction();
  for (const auto& f : folds) {
    std::size_t majority = 0;
    std::vector<std::size_t> counts(data.numClasses(), 0);
    for (std::size_t i : f.test) {
      ++counts[static_cast<std::size_t>(data.classValue(i))];
    }
    majority = *std::max_element(counts.begin(), counts.end());
    const double frac = static_cast<double>(majority) /
                        static_cast<double>(f.test.size());
    EXPECT_NEAR(frac, global, 0.15);
  }
}

TEST(Dataset, NumericRanges) {
  const Instances data = makeToyData(50, 7);
  const auto ranges = data.numericRanges();
  EXPECT_GE(ranges[0].min, 0.0);
  EXPECT_LE(ranges[0].max, 10.0);
  EXPECT_LT(ranges[0].min, ranges[0].max);
}

// ------------------------------------------------- classifiers, generic

struct KindCase {
  ClassifierKind kind;
};

class ClassifierSuite : public ::testing::TestWithParam<ClassifierKind> {};

TEST_P(ClassifierSuite, BeatsMajorityBaselineOnToyData) {
  const Instances train = makeToyData(400, 21);
  const Instances test = makeToyData(200, 22);
  energy::SimMachine machine;
  MlRuntime rt(machine, CodeStyle::javaBaseline());
  auto clf = makeClassifier(GetParam(), Precision::kDouble, rt, 99);
  clf->train(train);
  const double acc = accuracy(*clf, test);
  EXPECT_GT(acc, test.majorityClassFraction() + 0.1)
      << clf->name() << " accuracy " << acc;
}

TEST_P(ClassifierSuite, DeterministicForSeed) {
  const Instances train = makeToyData(200, 31);
  const Instances test = makeToyData(50, 32);
  auto runOnce = [&] {
    energy::SimMachine machine;
    MlRuntime rt(machine, CodeStyle::javaBaseline());
    auto clf = makeClassifier(GetParam(), Precision::kDouble, rt, 123);
    clf->train(train);
    std::vector<int> preds;
    for (std::size_t i = 0; i < test.numInstances(); ++i) {
      preds.push_back(clf->predict(test.row(i)));
    }
    return preds;
  };
  EXPECT_EQ(runOnce(), runOnce());
}

TEST_P(ClassifierSuite, FloatPrecisionStaysClose) {
  const Instances train = makeToyData(300, 41);
  const Instances test = makeToyData(150, 42);
  energy::SimMachine machine;
  MlRuntime rt(machine, CodeStyle::javaBaseline());
  auto d = makeClassifier(GetParam(), Precision::kDouble, rt, 7);
  auto f = makeClassifier(GetParam(), Precision::kFloat, rt, 7);
  d->train(train);
  f->train(train);
  const double accD = accuracy(*d, test);
  const double accF = accuracy(*f, test);
  // The paper's worst observed drop is 0.48%; allow a loose 5% band here
  // (tiny toy data amplifies flips).
  EXPECT_NEAR(accD, accF, 0.05) << d->name();
}

TEST_P(ClassifierSuite, TrainingConsumesEnergy) {
  const Instances train = makeToyData(150, 51);
  energy::SimMachine machine;
  MlRuntime rt(machine, CodeStyle::javaBaseline());
  auto clf = makeClassifier(GetParam(), Precision::kDouble, rt, 3);
  clf->train(train);
  clf->predict(train.row(0));
  const auto sample = machine.sample();
  EXPECT_GT(sample.packageJoules, 0.0) << clf->name();
  EXPECT_GT(sample.seconds, 0.0);
}

// The Table IV mechanism: the optimized CodeStyle consumes strictly less
// energy for the same training work, with identical predictions.
TEST_P(ClassifierSuite, OptimizedStyleSavesEnergyWithSamePredictions) {
  const Instances train = makeToyData(250, 61);
  const Instances test = makeToyData(100, 62);

  auto measure = [&](CodeStyle style, std::vector<int>* preds) {
    energy::SimMachine machine;
    MlRuntime rt(machine, style);
    auto clf = makeClassifier(GetParam(), Precision::kDouble, rt, 17);
    clf->train(train);
    for (std::size_t i = 0; i < test.numInstances(); ++i) {
      preds->push_back(clf->predict(test.row(i)));
    }
    return machine.sample();
  };

  std::vector<int> basePreds;
  std::vector<int> optPreds;
  const auto base = measure(CodeStyle::javaBaseline(), &basePreds);
  const auto opt = measure(CodeStyle::jepoOptimized(), &optPreds);
  EXPECT_EQ(basePreds, optPreds) << "style changed predictions";
  EXPECT_LT(opt.packageJoules, base.packageJoules);
  EXPECT_LT(opt.seconds, base.seconds);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ClassifierSuite,
    ::testing::Values(ClassifierKind::kJ48, ClassifierKind::kRandomTree,
                      ClassifierKind::kRandomForest, ClassifierKind::kRepTree,
                      ClassifierKind::kNaiveBayes, ClassifierKind::kLogistic,
                      ClassifierKind::kSmo, ClassifierKind::kSgd,
                      ClassifierKind::kKStar, ClassifierKind::kIbk),
    [](const ::testing::TestParamInfo<ClassifierKind>& info) {
      std::string name(classifierName(info.param));
      name.erase(std::remove(name.begin(), name.end(), ' '), name.end());
      return name;
    });

// ------------------------------------------------------------ evaluation

TEST(Evaluation, PerfectOnSeparableData) {
  std::vector<Attribute> attrs{Attribute::numeric("x"),
                               Attribute::nominal("c", {"a", "b"})};
  Instances data("sep", attrs, 1);
  for (int i = 0; i < 50; ++i) {
    data.addRow({static_cast<double>(i), i < 25 ? 0.0 : 1.0});
  }
  energy::SimMachine machine;
  MlRuntime rt(machine, CodeStyle::jepoOptimized());
  auto clf = makeClassifier(ClassifierKind::kJ48, Precision::kDouble, rt, 1);
  clf->train(data);
  EXPECT_DOUBLE_EQ(accuracy(*clf, data), 1.0);
}

TEST(Evaluation, CrossValidationRunsAllFolds) {
  const Instances data = makeToyData(200, 71);
  energy::SimMachine machine;
  MlRuntime rt(machine, CodeStyle::jepoOptimized());
  Rng rng(5);
  int built = 0;
  const double acc = crossValidate(
      [&] {
        ++built;
        return makeClassifier(ClassifierKind::kNaiveBayes, Precision::kDouble,
                              rt, 9);
      },
      data, 10, rng);
  EXPECT_EQ(built, 10);
  EXPECT_GT(acc, 0.5);
  EXPECT_LE(acc, 1.0);
}

TEST(Evaluation, PredictBeforeTrainThrows) {
  energy::SimMachine machine;
  MlRuntime rt(machine, CodeStyle::javaBaseline());
  auto clf = makeClassifier(ClassifierKind::kIbk, Precision::kDouble, rt, 1);
  EXPECT_THROW(clf->predict({1.0, 2.0, 0.0, 0.0}), PreconditionError);
}

TEST(Classifier, NamesMatchPaperTable) {
  EXPECT_EQ(classifierName(ClassifierKind::kJ48), "J48");
  EXPECT_EQ(classifierName(ClassifierKind::kRandomForest), "Random Forest");
  EXPECT_EQ(classifierName(ClassifierKind::kKStar), "KStar");
  EXPECT_EQ(classifierName(ClassifierKind::kIbk), "IBk");
}

}  // namespace
}  // namespace jepo::ml
