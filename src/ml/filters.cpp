#include "ml/filters.hpp"

#include <algorithm>

namespace jepo::ml {

// ------------------------------------------------------------- Normalize

void NormalizeFilter::fit(const Instances& data) {
  ranges_ = data.numericRanges();
  fitted_ = true;
}

Instances NormalizeFilter::apply(const Instances& data) const {
  JEPO_REQUIRE(fitted_, "apply before fit");
  JEPO_REQUIRE(data.numAttributes() == ranges_.size(), "schema mismatch");
  Instances out = data.emptyCopy();
  for (std::size_t i = 0; i < data.numInstances(); ++i) {
    std::vector<double> row = data.row(i);
    for (std::size_t a = 0; a < row.size(); ++a) {
      if (!data.attribute(a).isNumeric()) continue;
      const auto& r = ranges_[a];
      const double span = r.max - r.min;
      // Values outside the fitted range clamp (unseen test extremes).
      row[a] = span > 0.0
                   ? std::clamp((row[a] - r.min) / span, 0.0, 1.0)
                   : 0.0;
    }
    out.addRow(std::move(row));
  }
  return out;
}

// -------------------------------------------------------- NominalToBinary

void NominalToBinaryFilter::fit(const Instances& data) {
  outAttributes_.clear();
  sourceAttr_.clear();
  sourceLabel_.clear();
  for (std::size_t a = 0; a < data.numAttributes(); ++a) {
    const Attribute& attr = data.attribute(a);
    const bool isClass = static_cast<int>(a) == data.classIndex();
    if (attr.isNominal() && !isClass) {
      for (std::size_t l = 0; l < attr.numLabels(); ++l) {
        outAttributes_.push_back(
            Attribute::numeric(attr.name() + "=" + attr.label(l)));
        sourceAttr_.push_back(a);
        sourceLabel_.push_back(static_cast<int>(l));
      }
    } else {
      if (isClass) outClassIndex_ = static_cast<int>(outAttributes_.size());
      outAttributes_.push_back(attr);
      sourceAttr_.push_back(a);
      sourceLabel_.push_back(-1);
    }
  }
  JEPO_REQUIRE(outClassIndex_ >= 0, "class attribute lost");
  fitted_ = true;
}

Instances NominalToBinaryFilter::apply(const Instances& data) const {
  JEPO_REQUIRE(fitted_, "apply before fit");
  Instances out(data.relation() + "-binary", outAttributes_, outClassIndex_);
  for (std::size_t i = 0; i < data.numInstances(); ++i) {
    std::vector<double> row(outAttributes_.size(), 0.0);
    for (std::size_t c = 0; c < outAttributes_.size(); ++c) {
      const double v = data.value(i, sourceAttr_[c]);
      row[c] = sourceLabel_[c] < 0
                   ? v
                   : (static_cast<int>(v) == sourceLabel_[c] ? 1.0 : 0.0);
    }
    out.addRow(std::move(row));
  }
  return out;
}

// ---------------------------------------------------------------- Resample

ResampleFilter::ResampleFilter(double percent, std::uint64_t seed)
    : percent_(percent), seed_(seed) {
  JEPO_REQUIRE(percent > 0.0 && percent <= 100.0, "percent in (0, 100]");
}

Instances ResampleFilter::apply(const Instances& data) const {
  Rng rng(seed_);
  const auto n = static_cast<std::size_t>(
      static_cast<double>(data.numInstances()) * percent_ / 100.0);
  return data.subsample(std::max<std::size_t>(1, n), rng);
}

}  // namespace jepo::ml
