# Empty compiler generated dependencies file for bench_fig_views.
# This may be replaced when dependencies are built.
