#include <gtest/gtest.h>

#include "perf/perf.hpp"
#include "stats/protocol.hpp"

namespace jepo::perf {
namespace {

void burnWork(energy::SimMachine& machine) {
  machine.charge(energy::Op::kDoubleAlu, 1'000'000);
  machine.charge(energy::Op::kIntMod, 100'000);
}

TEST(Perf, ExactRunnerIsDeterministic) {
  PerfRunner runner = PerfRunner::exact();
  const PerfStat a = runner.stat(burnWork);
  const PerfStat b = runner.stat(burnWork);
  EXPECT_DOUBLE_EQ(a.packageJoules, b.packageJoules);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
  EXPECT_GT(a.packageJoules, 0.0);
  EXPECT_GT(a.coreJoules, 0.0);
  EXPECT_LT(a.coreJoules, a.packageJoules);
  EXPECT_GT(a.dramJoules, 0.0);
}

TEST(Perf, MeasurementMatchesMsrAccounting) {
  PerfRunner runner = PerfRunner::exact();
  const PerfStat s = runner.stat([](energy::SimMachine& m) {
    m.charge(energy::Op::kIntAlu, 5'000'000);
  });
  const energy::CostModel model = energy::CostModel::calibrated();
  const auto& c = model.cost(energy::Op::kIntAlu);
  const double ns = 5e6 * c.nanoseconds;
  const double pkgJ =
      (5e6 * c.packageNanojoules + ns * model.packageIdleWatts()) * 1e-9;
  EXPECT_NEAR(s.packageJoules, pkgJ, 1e-3);  // within MSR quantization
  EXPECT_NEAR(s.seconds, ns * 1e-9, 1e-12);
}

TEST(Perf, NoiseCreatesRunToRunSpread) {
  PerfRunner runner{PerfRunner::kDefaultNoise, 42};
  std::vector<double> values;
  for (int i = 0; i < 20; ++i) {
    values.push_back(runner.stat(burnWork).packageJoules);
  }
  double lo = values[0];
  double hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(hi / lo, 1.01);  // jitter visible
}

TEST(Perf, TukeyLoopRecoversTrueMeanUnderSpikes) {
  // Heavy spikes; the Section VIII protocol should scrub them and land
  // near the exact (noise-free) value.
  const double exact = PerfRunner::exact().stat(burnWork).packageJoules;

  // ~12% interference rate: about one spiked run per 10-run set, the
  // regime Tukey's fences handle reliably (3+ spikes of 10 would exceed
  // the method's breakdown point — as it would for the paper's authors).
  // Seed 13 yields two spikes among the first ten per-call noise streams
  // and clean re-measurements after (noise is per-ordinal since the runner
  // became shared-nothing, so the spike pattern is a property of the seed).
  PerfRunner noisy{PerfRunner::NoiseModel{0.01, 0.12, 1.8}, 13};
  const auto result = stats::measureWithTukeyLoop(
      10, [&] { return noisy.stat(burnWork).asRow(); }, 100);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.means[0], exact, exact * 0.05);

  // The naive mean over raw spiky runs is visibly worse.
  PerfRunner noisy2{PerfRunner::NoiseModel{0.01, 0.12, 1.8}, 13};
  double naive = 0.0;
  for (int i = 0; i < 10; ++i) {
    naive += noisy2.stat(burnWork).packageJoules;
  }
  naive /= 10.0;
  EXPECT_GT(std::fabs(naive - exact), std::fabs(result.means[0] - exact));
}

TEST(Perf, CustomCostModelIsHonored) {
  PerfRunner runner = PerfRunner::exact();
  energy::CostModel expensive = energy::CostModel::calibrated();
  expensive.cost(energy::Op::kIntAlu).packageNanojoules *= 10.0;
  const PerfStat cheap = runner.stat([](energy::SimMachine& m) {
    m.charge(energy::Op::kIntAlu, 1'000'000);
  });
  const PerfStat costly = runner.stat(
      [](energy::SimMachine& m) {
        m.charge(energy::Op::kIntAlu, 1'000'000);
      },
      expensive);
  EXPECT_GT(costly.packageJoules, cheap.packageJoules * 2.0);
}

}  // namespace
}  // namespace jepo::perf
