// jepo_cli — the Eclipse plugin's three buttons as a command-line tool.
//
//   jepo_cli suggest  <file.mjava>   # Fig. 2/5: the suggestion view
//   jepo_cli profile  <file.mjava> [MainClass] [--heap-limit=N]
//                     [--seed=N] [--fault-plan=SPEC] [--max-steps=N]
//                     [--tier=full|sampled:N|hot:T]
//   jepo_cli optimize <file.mjava>   # auto-refactor, print new source
//
// --seed/--fault-plan/--max-steps/--tier mirror a jepod job's fields: the
// same (source, MainClass, seed, heap limit, fault plan, max steps, tier)
// here and through the daemon produce bit-identical joules/stdout/method
// records — including the truncated records of a run aborted by the step
// budget, which is how a daemon-side abort is replayed locally, and the
// sampled records of a --tier=sampled:N run, which replay from the seed.
//
// Reads MiniJava source from the given file (or stdin when the file is -).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "fault/fault.hpp"
#include "jepo/engine.hpp"
#include "jepo/optimizer.hpp"
#include "jepo/profiler.hpp"
#include "jepo/views.hpp"
#include "jlang/parser.hpp"
#include "jlang/printer.hpp"

namespace {

std::string readAll(const std::string& path) {
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    return ss.str();
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int usage() {
  std::fprintf(stderr,
               "usage: jepo_cli suggest|profile|optimize <file.mjava> "
               "[MainClass] [--heap-limit=N] [--seed=N] "
               "[--fault-plan=SPEC] [--max-steps=N] "
               "[--tier=full|sampled:N|hot:T]\n");
  return 2;
}

bool parseFlagU64(const std::string& arg, std::size_t prefixLen,
                  unsigned long long* out) {
  char* end = nullptr;
  *out = std::strtoull(arg.c_str() + prefixLen, &end, 10);
  return end != nullptr && end != arg.c_str() + prefixLen && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jepo;
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const std::string path = argv[2];
  const std::string source = readAll(path);

  try {
    const jlang::Program program =
        jlang::Parser::parseProgram(path, source);

    if (command == "suggest") {
      core::SuggestionEngine engine;
      std::fputs(
          core::renderOptimizerView(engine.analyzeProgram(program)).c_str(),
          stdout);
      return 0;
    }
    if (command == "profile") {
      std::string mainClass;
      unsigned long long maxSteps = 500'000'000;  // jepod's kDefaultMaxSteps
      core::Profiler profiler;
      for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        unsigned long long n = 0;
        if (arg.rfind("--heap-limit=", 0) == 0) {
          if (!parseFlagU64(arg, 13, &n)) return usage();
          profiler.setHeapLimit(static_cast<std::size_t>(n));
        } else if (arg.rfind("--seed=", 0) == 0) {
          if (!parseFlagU64(arg, 7, &n)) return usage();
          profiler.setSeed(n);
        } else if (arg.rfind("--fault-plan=", 0) == 0) {
          profiler.setFaultSpec(fault::parseFaultPlan(arg.substr(13)));
        } else if (arg.rfind("--tier=", 0) == 0) {
          profiler.setTier(jvm::parseTierSpec(arg.substr(7)));
        } else if (arg.rfind("--max-steps=", 0) == 0) {
          if (!parseFlagU64(arg, 12, &maxSteps)) return usage();
        } else if (mainClass.empty()) {
          mainClass = arg;
        } else {
          return usage();
        }
      }
      try {
        profiler.profile(program, mainClass, maxSteps);
      } catch (const VmError& e) {
        // Aborted run (step limit, runtime error): print the records
        // captured up to the abort — methods still on the stack appear as
        // truncated records — so a daemon job killed by its step budget
        // can be replayed here with the same --max-steps.
        std::fputs(core::renderProfilerView(profiler.records()).c_str(),
                   stdout);
        std::printf("\nprogram output:\n%s",
                    profiler.programOutput().c_str());
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
      }
      std::fputs(core::renderProfilerView(profiler.records()).c_str(),
                 stdout);
      std::printf("\nprogram output:\n%s", profiler.programOutput().c_str());
      return 0;
    }
    if (command == "optimize") {
      const core::OptimizeResult result = core::Optimizer().optimize(program);
      std::fprintf(stderr, "applied %zu changes:\n", result.changes.size());
      for (const auto& c : result.changes) {
        std::fprintf(stderr, "  %s:%d %s\n", c.className.c_str(), c.line,
                     c.description.c_str());
      }
      for (const auto& unit : result.program.units) {
        std::fputs(jlang::printUnit(unit).c_str(), stdout);
      }
      return 0;
    }
    return usage();
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
