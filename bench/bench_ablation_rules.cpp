// Ablation: per-rule contribution. Runs the Fig.-5 demo pipeline through
// the optimizer with each Table I rule disabled in turn and reports how
// much of the total energy win that rule carries, plus the change-count
// contribution on the RandomForest corpus.
#include "bench_common.hpp"
#include "demo_project.hpp"

#include "corpus/corpus.hpp"
#include "energy/machine.hpp"
#include "jepo/optimizer.hpp"
#include "jlang/parser.hpp"
#include "jvm/interpreter.hpp"

namespace {

double runPackageJoules(const jepo::jlang::Program& prog) {
  jepo::energy::SimMachine machine;
  jepo::jvm::Interpreter interp(prog, machine);
  interp.setMaxSteps(50'000'000);
  interp.runMain();
  return machine.sample().packageJoules;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jepo;
  bench::Flags flags(argc, argv);
  bench::BenchReport report("bench_ablation_rules", flags);
  bench::printHeader(
      "Ablation — rule contribution (demo pipeline energy win + corpus "
      "change counts with each rule disabled)");

  const jlang::Program demo = jlang::Parser::parseProgram(
      "EdgePipeline.mjava", bench::kDemoProjectSource);
  const double baseJ = runPackageJoules(demo);

  // Full optimization first.
  const core::OptimizeResult full = core::Optimizer().optimize(demo);
  const double fullJ = runPackageJoules(full.program);
  const double fullWin = (1.0 - fullJ / baseJ) * 100.0;

  int corpusSeeded = 0;
  const jlang::Program corpusProg = corpus::generateScaledCorpus(
      ml::ClassifierKind::kRandomForest, 0.10, 42, &corpusSeeded);
  const auto fullCorpus = core::Optimizer().optimize(corpusProg);

  TextTable table({"Disabled rule", "Demo win (%)", "Win lost (pp)",
                   "Corpus changes", "Changes lost"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight});
  table.addRow({"(none - full optimizer)", fixed(fullWin, 2), "-",
                std::to_string(fullCorpus.changes.size()), "-"});

  for (int r = 0; r < core::kRuleCount; ++r) {
    core::OptimizerOptions opts;
    opts.enabled[r] = false;
    core::Optimizer ablated(opts);

    const core::OptimizeResult demoResult = ablated.optimize(demo);
    const double winJ = runPackageJoules(demoResult.program);
    const double win = (1.0 - winJ / baseJ) * 100.0;

    const auto corpusResult = ablated.optimize(corpusProg);
    table.addRow(
        {std::string(core::ruleComponent(static_cast<core::RuleId>(r))),
         fixed(win, 2), fixed(fullWin - win, 2),
         std::to_string(corpusResult.changes.size()),
         std::to_string(fullCorpus.changes.size() -
                        corpusResult.changes.size())});
    report.addRow(
        {{"disabledRule",
          core::ruleComponent(static_cast<core::RuleId>(r))},
         {"demoWinPct", win},
         {"winLostPp", fullWin - win},
         {"corpusChanges", corpusResult.changes.size()},
         {"changesLost",
          fullCorpus.changes.size() - corpusResult.changes.size()}});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\n'Win lost' isolates each rule's share of the demo pipeline's total\n"
      "energy improvement; rules the demo does not exercise contribute 0.");
  report.config("fullWinPct", fullWin);
  report.config("fullCorpusChanges", fullCorpus.changes.size());
  return report.finish();
}
