#include <gtest/gtest.h>

#include "rapl/rapl.hpp"

namespace jepo::rapl {
namespace {

TEST(PowerUnit, EncodeDecodeRoundTrip) {
  PowerUnit u;
  u.powerUnitBits = 3;
  u.energyUnitBits = 14;
  u.timeUnitBits = 10;
  const PowerUnit d = PowerUnit::decode(u.encode());
  EXPECT_EQ(d.powerUnitBits, 3u);
  EXPECT_EQ(d.energyUnitBits, 14u);
  EXPECT_EQ(d.timeUnitBits, 10u);
}

TEST(PowerUnit, DefaultQuantaMatchIntelClientParts) {
  PowerUnit u;  // ESU = 16
  EXPECT_DOUBLE_EQ(u.jouleQuantum(), 1.0 / 65536.0);
  EXPECT_DOUBLE_EQ(u.wattQuantum(), 1.0 / 8.0);
}

TEST(Msr, UnimplementedRegisterThrows) {
  SimulatedMsrDevice dev;
  EXPECT_THROW(dev.read(0x611), Error);
  dev.write(0x611, 5);
  EXPECT_EQ(dev.read(0x611), 5u);
  EXPECT_TRUE(dev.has(0x611));
  EXPECT_FALSE(dev.has(0x639));
}

TEST(Rapl, PackageImplementsAllDomains) {
  SimulatedRaplPackage pkg;
  RaplReader reader(pkg.device());
  for (Domain d : kAllDomains) {
    EXPECT_EQ(reader.readRaw(d), 0u) << domainName(d);
  }
}

TEST(Rapl, DepositsAreVisibleThroughMsrReads) {
  SimulatedRaplPackage pkg;
  RaplReader reader(pkg.device());
  pkg.deposit(Domain::kPackage, 1.0);
  EXPECT_NEAR(reader.readJoules(Domain::kPackage), 1.0, 1e-4);
  // other domains untouched
  EXPECT_EQ(reader.readRaw(Domain::kCore), 0u);
}

TEST(Rapl, SubQuantumDepositsAccumulateWithoutLoss) {
  SimulatedRaplPackage pkg;
  RaplReader reader(pkg.device());
  // 10,000 deposits of 1/10 quantum each => exactly 1,000 raw counts.
  const double dep = pkg.unit().jouleQuantum() / 10.0;
  for (int i = 0; i < 10000; ++i) pkg.deposit(Domain::kCore, dep);
  // One count of slack: the residual accumulator is a double, so the last
  // carry may land one deposit later.
  EXPECT_NEAR(static_cast<double>(reader.readRaw(Domain::kCore)), 1000.0, 1.0);
  EXPECT_NEAR(pkg.totalJoules(Domain::kCore), 10000 * dep, 1e-12);
}

TEST(Rapl, NegativeDepositRejected) {
  SimulatedRaplPackage pkg;
  EXPECT_THROW(pkg.deposit(Domain::kPackage, -0.1), PreconditionError);
}

TEST(Rapl, CounterWrapsAt32Bits) {
  SimulatedRaplPackage pkg;
  RaplReader reader(pkg.device());
  // ESU=16: the counter wraps every 2^32 / 2^16 = 65536 J.
  const double wrapJoules = 65536.0;
  pkg.deposit(Domain::kPackage, wrapJoules + 3.0);
  EXPECT_NEAR(reader.readJoules(Domain::kPackage), 3.0, 1e-4);
  // Ground truth is unwrapped.
  EXPECT_NEAR(pkg.totalJoules(Domain::kPackage), wrapJoules + 3.0, 1e-9);
}

TEST(EnergyCounter, MeasuresIntervals) {
  SimulatedRaplPackage pkg;
  RaplReader reader(pkg.device());
  pkg.deposit(Domain::kPackage, 10.0);
  EnergyCounter counter(reader, Domain::kPackage);
  pkg.deposit(Domain::kPackage, 2.5);
  EXPECT_NEAR(counter.elapsedJoules(), 2.5, 1e-4);
  counter.start();
  EXPECT_NEAR(counter.elapsedJoules(), 0.0, 1e-9);
}

TEST(EnergyCounter, SurvivesOneWraparound) {
  SimulatedRaplPackage pkg;
  RaplReader reader(pkg.device());
  // Park the counter just below the wrap point, then measure across it.
  pkg.deposit(Domain::kPackage, 65536.0 - 1.0);
  EnergyCounter counter(reader, Domain::kPackage);
  pkg.deposit(Domain::kPackage, 4.0);  // crosses the wrap
  EXPECT_NEAR(counter.elapsedJoules(), 4.0, 1e-4);
}

TEST(EnergyCounter, WrapExactlyToSameRawReadsZero) {
  // Fundamental RAPL ambiguity: a full wrap's worth of energy is
  // indistinguishable from zero. Document the contract.
  SimulatedRaplPackage pkg;
  RaplReader reader(pkg.device());
  EnergyCounter counter(reader, Domain::kPackage);
  pkg.deposit(Domain::kPackage, 65536.0);
  EXPECT_NEAR(counter.elapsedJoules(), 0.0, 1e-4);
}

TEST(EnergyCounter, MultipleWrapsUnderReportByWholeWraps) {
  // The one-wrap contract, from the other side: unsigned 32-bit subtraction
  // recovers the delta modulo one wrap period (65536 J at ESU=16). Two or
  // more wraps between reads are unobservable — each whole extra wrap is
  // silently dropped, so the counter under-reports by k*65536 J. Real RAPL
  // sampling loops must read faster than one wrap period; so must any
  // workload between our start()/elapsedJoules() pairs.
  SimulatedRaplPackage pkg;
  RaplReader reader(pkg.device());
  EnergyCounter counter(reader, Domain::kPackage);
  pkg.deposit(Domain::kPackage, 2.0 * 65536.0 + 5.0);  // two full wraps + 5 J
  EXPECT_NEAR(counter.elapsedJoules(), 5.0, 1e-4);     // the 131072 J vanish
  // Ground truth keeps the unwrapped total — the loss is purely a property
  // of the 32-bit MSR window, not of the simulation.
  EXPECT_NEAR(pkg.totalJoules(Domain::kPackage), 2.0 * 65536.0 + 5.0, 1e-9);

  // Same story straddling an awkward boundary: 3 wraps minus a sliver.
  counter.start();
  pkg.deposit(Domain::kPackage, 3.0 * 65536.0 - 0.5);
  EXPECT_NEAR(counter.elapsedJoules(), 65536.0 - 0.5, 1e-3);
}

TEST(Msr, UnimplementedRegisterThrowsTypedPermanentError) {
  SimulatedMsrDevice dev;
  try {
    dev.read(kMsrPkgEnergyStatus);
    FAIL() << "expected MsrError";
  } catch (const MsrError& e) {
    EXPECT_EQ(e.msr(), kMsrPkgEnergyStatus);
    EXPECT_EQ(e.kind(), MsrError::Kind::kPermanent);
    EXPECT_FALSE(e.transient());
    // Carries the register address in the message for diagnostics.
    EXPECT_NE(std::string(e.what()).find("0x611"), std::string::npos);
  }
  // MsrError IS-A Error: existing catch sites keep working unchanged.
  EXPECT_THROW(dev.read(0x611), Error);
}

/// A device that fails transiently for the first `failures` reads of each
/// register, then delegates — the minimal flaky-driver model for testing
/// the retry loop without the fault layer.
class FlakyDevice final : public MsrDevice {
 public:
  FlakyDevice(const MsrDevice& inner, int failures)
      : inner_(&inner), failures_(failures) {}

  std::uint64_t read(std::uint32_t msr) const override {
    if (count_[msr]++ < failures_) {
      throw MsrError(msr, MsrError::Kind::kTransient, "flaky");
    }
    return inner_->read(msr);
  }

 private:
  const MsrDevice* inner_;
  int failures_;
  mutable std::unordered_map<std::uint32_t, int> count_;
};

TEST(RaplReader, RetriesTransientErrorsWithinBudget) {
  SimulatedRaplPackage pkg;
  pkg.deposit(Domain::kPackage, 3.0);
  FlakyDevice flaky(pkg.device(), 2);  // 2 failures < 4 attempts
  RaplReader reader(flaky);
  EXPECT_EQ(reader.unitReadRetries(), 2);
  const RawSample s = reader.readRawRetrying(Domain::kPackage);
  EXPECT_EQ(s.retries, 2);
  EXPECT_NEAR(static_cast<double>(s.value) * reader.unit().jouleQuantum(),
              3.0, 1e-4);
}

TEST(RaplReader, ExhaustedTransientBudgetRethrows) {
  SimulatedRaplPackage pkg;
  FlakyDevice flaky(pkg.device(), 99);
  RetryPolicy policy;
  policy.maxAttempts = 3;
  EXPECT_THROW(RaplReader(flaky, policy), MsrError);
}

TEST(RaplReader, DomainAvailabilityDistinguishesPermanentFromTransient) {
  SimulatedMsrDevice dev;
  PowerUnit u;
  dev.write(kMsrRaplPowerUnit, u.encode());
  dev.write(kMsrPkgEnergyStatus, 0);  // package present, dram absent
  RaplReader reader(dev);
  EXPECT_TRUE(reader.domainAvailable(Domain::kPackage));
  EXPECT_FALSE(reader.domainAvailable(Domain::kDram));
}

TEST(EnergyCounter, CleanIntervalIsOkQuality) {
  SimulatedRaplPackage pkg;
  RaplReader reader(pkg.device());
  EnergyCounter counter(reader, Domain::kPackage);
  pkg.deposit(Domain::kPackage, 2.0);
  const EnergyInterval iv = counter.measure(1.0);
  EXPECT_EQ(iv.quality, MeasurementQuality::kOk);
  EXPECT_EQ(iv.retries, 0);
  EXPECT_NEAR(iv.joules, 2.0, 1e-4);
}

TEST(EnergyCounter, RetriedIntervalKeepsExactValue) {
  SimulatedRaplPackage pkg;
  pkg.deposit(Domain::kPackage, 1.0);
  FlakyDevice flaky(pkg.device(), 1);
  RaplReader reader(flaky);
  EnergyCounter counter(reader, Domain::kPackage);
  pkg.deposit(Domain::kPackage, 2.0);
  const EnergyInterval iv = counter.measure(1.0);
  EXPECT_EQ(iv.quality, MeasurementQuality::kRetried);
  EXPECT_GT(iv.retries, 0);
  // The device state never changed between attempts: the value is exact.
  EXPECT_NEAR(iv.joules, 2.0, 1e-4);
}

TEST(EnergyCounter, BackwardsGlitchIsInvalidNotHugePositive) {
  SimulatedMsrDevice dev;
  PowerUnit u;
  dev.write(kMsrRaplPowerUnit, u.encode());
  dev.write(kMsrPkgEnergyStatus, 1000);
  RaplReader reader(dev);
  EnergyCounter counter(reader, Domain::kPackage);
  dev.write(kMsrPkgEnergyStatus, 990);  // counter stepped backwards
  const EnergyInterval iv = counter.measure(1.0);
  // The old elapsedJoules() path reads this as ~65536 J of garbage.
  EXPECT_NEAR(counter.elapsedJoules(), 65536.0, 1.0);
  EXPECT_EQ(iv.quality, MeasurementQuality::kInvalid);
  EXPECT_EQ(iv.joules, 0.0);
}

TEST(EnergyCounter, ImplausibleJumpIsInvalid) {
  SimulatedMsrDevice dev;
  PowerUnit u;
  dev.write(kMsrRaplPowerUnit, u.encode());
  dev.write(kMsrPkgEnergyStatus, 0);
  RaplReader reader(dev);
  EnergyCounter counter(reader, Domain::kPackage);
  // +0x90000000 counts = ~36,864 J in one 1-second interval: physically
  // impossible (the multi-wrap signature the fault plan forces).
  dev.write(kMsrPkgEnergyStatus, 0x90000000u);
  const EnergyInterval iv = counter.measure(1.0);
  EXPECT_EQ(iv.quality, MeasurementQuality::kInvalid);
  EXPECT_EQ(iv.joules, 0.0);
}

TEST(EnergyCounter, HalfRangeIntervalWithoutTimingIsDegradedNotInvalid) {
  SimulatedMsrDevice dev;
  PowerUnit u;
  dev.write(kMsrRaplPowerUnit, u.encode());
  dev.write(kMsrPkgEnergyStatus, 0);
  RaplReader reader(dev);
  EnergyCounter counter(reader, Domain::kPackage);
  dev.write(kMsrPkgEnergyStatus, 0x90000000u);
  // Without elapsedSeconds the plausibility check cannot run; the interval
  // is kept but tagged: a second unseen wrap cannot be ruled out.
  const EnergyInterval iv = counter.measure();
  EXPECT_EQ(iv.quality, MeasurementQuality::kDegraded);
  EXPECT_GT(iv.joules, 0.0);
}

TEST(EnergyCounter, StaleCounterIsInvalidWhenEnergyWasExpected) {
  SimulatedMsrDevice dev;
  PowerUnit u;
  dev.write(kMsrRaplPowerUnit, u.encode());
  dev.write(kMsrPkgEnergyStatus, 500);
  RaplReader reader(dev);
  EnergyCounter counter(reader, Domain::kPackage);
  // Register never moves; a 1 s interval at >0 idle watts must deposit.
  const EnergyInterval iv =
      counter.measure(1.0, EnergyCounter::kDefaultMaxWatts,
                      /*minExpectedJoules=*/0.5);
  EXPECT_EQ(iv.quality, MeasurementQuality::kInvalid);

  // Without the floor a zero delta is a legitimate tiny interval.
  const EnergyInterval ok = counter.measure(1.0);
  EXPECT_EQ(ok.quality, MeasurementQuality::kOk);
  EXPECT_EQ(ok.joules, 0.0);
}

TEST(EnergyCounter, AbsentDomainDegradesInsteadOfThrowing) {
  SimulatedMsrDevice dev;
  PowerUnit u;
  dev.write(kMsrRaplPowerUnit, u.encode());
  dev.write(kMsrPkgEnergyStatus, 0);  // no dram register on this "SKU"
  RaplReader reader(dev);
  EnergyCounter counter(reader, Domain::kDram);
  EXPECT_FALSE(counter.available());
  const EnergyInterval iv = counter.measure(1.0);
  EXPECT_EQ(iv.quality, MeasurementQuality::kDegraded);
  EXPECT_EQ(iv.joules, 0.0);
}

TEST(Quality, WorstIsMaxAndNamesAreStable) {
  EXPECT_EQ(worst(MeasurementQuality::kOk, MeasurementQuality::kRetried),
            MeasurementQuality::kRetried);
  EXPECT_EQ(worst(MeasurementQuality::kInvalid, MeasurementQuality::kOk),
            MeasurementQuality::kInvalid);
  EXPECT_EQ(qualityName(MeasurementQuality::kOk), "ok");
  EXPECT_EQ(qualityName(MeasurementQuality::kRetried), "retried");
  EXPECT_EQ(qualityName(MeasurementQuality::kDegraded), "degraded");
  EXPECT_EQ(qualityName(MeasurementQuality::kInvalid), "invalid");
  EXPECT_EQ(qualityFromIndex(2), MeasurementQuality::kDegraded);
  EXPECT_EQ(qualityFromIndex(42), MeasurementQuality::kInvalid);
}

TEST(Rapl, DomainMsrsMatchIntelSdm) {
  EXPECT_EQ(domainMsr(Domain::kPackage), 0x611u);
  EXPECT_EQ(domainMsr(Domain::kCore), 0x639u);
  EXPECT_EQ(domainMsr(Domain::kUncore), 0x641u);
  EXPECT_EQ(domainMsr(Domain::kDram), 0x619u);
}

TEST(Rapl, CustomEnergyUnit) {
  PowerUnit u;
  u.energyUnitBits = 14;  // server parts: 61 uJ quanta
  SimulatedRaplPackage pkg(u);
  RaplReader reader(pkg.device());
  EXPECT_EQ(reader.unit().energyUnitBits, 14u);
  pkg.deposit(Domain::kDram, 1.0);
  EXPECT_NEAR(reader.readJoules(Domain::kDram), 1.0, 1e-3);
  EXPECT_EQ(reader.readRaw(Domain::kDram), 1u << 14);
}

}  // namespace
}  // namespace jepo::rapl
