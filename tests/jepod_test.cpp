// The jepod daemon end to end over its real Unix socket: protocol edge
// cases (malformed JSON -> typed error, never a crash), admission control
// (deterministic queue-full rejects), compile-once caching (hits are
// bit-identical to cold compiles), multi-tenant isolation (a daemon job
// equals the same job run directly through core::Profiler), and graceful
// drain (requestDrain / SIGTERM complete in-flight jobs).
//
// Runs under `ctest -L jepod` — CI's jepod-soak job repeats the label
// under ASan.
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault.hpp"
#include "jepo/engine.hpp"
#include "jepo/profiler.hpp"
#include "jepo/views.hpp"
#include "jepod/client.hpp"
#include "jepod/daemon.hpp"
#include "jepod/program_cache.hpp"
#include "jlang/parser.hpp"
#include "obs/registry.hpp"

namespace jepo {
namespace {

using jepod::Client;
using jepod::Daemon;
using jepod::DaemonConfig;
using jepod::ErrorCode;
using jepod::JobRequest;
using jepod::Response;

// ---------------------------------------------------------------------------
// Workloads

const char* const kQuickSource = R"(
class Quick {
  static int work(int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) { acc = acc + i % 7; }
    return acc;
  }
  static void main(String[] args) {
    System.out.println("acc=" + work(300));
  }
}
)";

// Allocates enough to force collections under a small --heap-limit.
const char* const kChurnSource = R"(
class Node {
  int a;
  int b;
  Node(int x) { a = x; b = x * 2 + 1; }
  int sum() { return a + b; }
}
class Churn {
  static void main(String[] args) {
    int chk = 0;
    int i = 0;
    while (i < 400) {
      Node n = new Node(i);
      int[] buf = new int[8];
      buf[i % 8] = n.sum();
      chk = chk + buf[i % 8];
      i = i + 1;
    }
    System.out.println(chk);
  }
}
)";

// ~3M interpreter steps: long enough that admission-vs-completion races
// in the queue tests have five orders of magnitude of headroom, short
// enough to keep the suite quick.
const char* const kSlowSource = R"(
class Slow {
  static void main(String[] args) {
    long acc = 0L;
    for (int i = 0; i < 600000; i++) { acc = acc + i; }
    System.out.println(acc);
  }
}
)";

JobRequest makeRequest(std::string id, const char* source,
                       std::string tenant = "t0") {
  JobRequest req;
  req.id = std::move(id);
  req.tenant = std::move(tenant);
  req.command = "profile";
  req.source = source;
  return req;
}

// ---------------------------------------------------------------------------
// Harness

std::uint64_t counterValue(const std::string& name) {
  return obs::Registry::global().counter(name).value();
}

bool eventually(const std::function<bool()>& cond, int timeoutMs = 20000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeoutMs);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return cond();
}

class JepodTest : public ::testing::Test {
 protected:
  void startDaemon(DaemonConfig cfg = {}) {
    char tmpl[] = "/tmp/jepodtXXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    cfg.socketPath = dir_ + "/s";
    daemon_ = std::make_unique<Daemon>(cfg);
    daemon_->start();
  }

  void TearDown() override {
    if (daemon_) daemon_->stop();
    daemon_.reset();
    if (!dir_.empty()) {
      ::unlink((dir_ + "/s").c_str());
      ::rmdir(dir_.c_str());
    }
  }

  Client connect() {
    Client c;
    c.connect(daemon_->config().socketPath);
    return c;
  }

  std::string dir_;
  std::unique_ptr<Daemon> daemon_;
};

// ---------------------------------------------------------------------------
// Protocol edge cases

TEST_F(JepodTest, MalformedJsonGetsTypedErrorAndConnectionSurvives) {
  startDaemon();
  Client c = connect();

  const Response bad = jepod::parseResponse(c.roundTrip("{this is not json"));
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.errorCode, "bad-json");
  EXPECT_EQ(bad.id, "");

  // The daemon neither crashed nor closed the connection.
  const Response good = c.submit(makeRequest("after-bad", kQuickSource));
  EXPECT_TRUE(good.ok);
  EXPECT_EQ(good.profile.stdoutText, "acc=897\n");
}

TEST_F(JepodTest, BadRequestsAreTypedAndEchoTheId) {
  startDaemon();
  Client c = connect();

  // Valid JSON, invalid request: the id still comes back for correlation.
  const Response noCmd =
      jepod::parseResponse(c.roundTrip(R"({"v":1,"id":"x7"})"));
  EXPECT_FALSE(noCmd.ok);
  EXPECT_EQ(noCmd.errorCode, "bad-request");
  EXPECT_EQ(noCmd.id, "x7");

  const Response badVersion = jepod::parseResponse(c.roundTrip(
      R"({"v":99,"id":"v9","command":"profile","source":"class A {}"})"));
  EXPECT_FALSE(badVersion.ok);
  EXPECT_EQ(badVersion.errorCode, "bad-request");

  const Response unknown = jepod::parseResponse(c.roundTrip(
      R"({"v":1,"id":"u1","command":"launch","source":"class A {}"})"));
  EXPECT_FALSE(unknown.ok);
  EXPECT_EQ(unknown.errorCode, "unknown-command");

  JobRequest unparsable = makeRequest("p1", "class { nope");
  const Response parseErr = c.submit(unparsable);
  EXPECT_FALSE(parseErr.ok);
  EXPECT_EQ(parseErr.errorCode, "parse-error");

  JobRequest aborts = makeRequest("r1", kQuickSource);
  aborts.maxSteps = 10;  // step-limit abort inside the VM
  const Response runtime = c.submit(aborts);
  EXPECT_FALSE(runtime.ok);
  EXPECT_EQ(runtime.errorCode, "runtime-error");

  JobRequest badPlan = makeRequest("f1", kQuickSource);
  badPlan.faultPlan = "no-such-preset";
  const Response planErr = c.submit(badPlan);
  EXPECT_FALSE(planErr.ok);
  EXPECT_EQ(planErr.errorCode, "bad-request");
}

TEST_F(JepodTest, OversizedLineIsRejectedNotBuffered) {
  DaemonConfig cfg;
  cfg.maxLineBytes = 1024;
  startDaemon(cfg);
  Client c = connect();
  const Response r = jepod::parseResponse(
      c.roundTrip(std::string(4096, 'x')));
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.errorCode, "bad-request");
}

// ---------------------------------------------------------------------------
// Caching

TEST_F(JepodTest, CacheHitIsBitIdenticalToColdCompile) {
  startDaemon();
  Client c = connect();
  const std::uint64_t hits0 = counterValue("jepod.cache.hits");
  const std::uint64_t miss0 = counterValue("jepod.cache.misses");

  const Response cold = c.submit(makeRequest("c1", kChurnSource));
  const Response warm = c.submit(makeRequest("c1", kChurnSource));
  ASSERT_TRUE(cold.ok);
  ASSERT_TRUE(warm.ok);
  EXPECT_FALSE(cold.cached);
  EXPECT_TRUE(warm.cached);
  EXPECT_EQ(counterValue("jepod.cache.misses"), miss0 + 1);
  EXPECT_EQ(counterValue("jepod.cache.hits"), hits0 + 1);

  // Same id, same payload: the raw lines must differ ONLY in the cached
  // flag — the result object is byte-identical.
  const auto payloadOf = [](const std::string& raw) -> std::string {
    const std::size_t at = raw.find("\"result\":");
    EXPECT_NE(at, std::string::npos);
    return at == std::string::npos ? std::string() : raw.substr(at);
  };
  EXPECT_EQ(payloadOf(cold.raw), payloadOf(warm.raw));
}

std::shared_ptr<jepod::CachedProgram> cacheEntry(std::uint64_t hash,
                                                 std::size_t bytes,
                                                 std::string source = "") {
  auto e = std::make_shared<jepod::CachedProgram>();
  if (source.empty()) source = "src-" + std::to_string(hash);
  e->source = std::move(source);
  e->hash = hash;
  e->bytes = bytes;
  return e;
}

std::shared_ptr<const jepod::CachedProgram> cacheGet(
    jepod::ProgramCache& cache, std::uint64_t hash) {
  return cache.get(hash, "src-" + std::to_string(hash));
}

TEST(ProgramCache, EvictsLeastRecentlyUsedPastByteBudget) {
  jepod::ProgramCache cache(/*byteBudget=*/100);
  const std::uint64_t evict0 = counterValue("jepod.cache.evictions");
  cache.put(cacheEntry(1, 60));
  cache.put(cacheEntry(2, 30));
  EXPECT_EQ(cache.entryCount(), 2u);
  // Refresh 1, insert 3: 2 is now the LRU and must go.
  EXPECT_NE(cacheGet(cache, 1), nullptr);
  cache.put(cacheEntry(3, 40));
  EXPECT_EQ(counterValue("jepod.cache.evictions"), evict0 + 1);
  EXPECT_EQ(cacheGet(cache, 2), nullptr);
  EXPECT_NE(cacheGet(cache, 1), nullptr);
  EXPECT_NE(cacheGet(cache, 3), nullptr);
  EXPECT_LE(cache.byteCount(), 100u);

  // An entry larger than the whole budget is admitted (the job must run)
  // but evicts everything else.
  cache.put(cacheEntry(4, 500));
  EXPECT_NE(cacheGet(cache, 4), nullptr);
  EXPECT_EQ(cache.entryCount(), 1u);
}

TEST(ProgramCache, FirstInsertWinsCompileRaces) {
  jepod::ProgramCache cache(0);
  auto a = cacheEntry(7, 10, "same source");
  auto b = cacheEntry(7, 10, "same source");
  EXPECT_EQ(cache.put(a), a);
  EXPECT_EQ(cache.put(b), a);  // the racing duplicate is dropped
  EXPECT_EQ(cache.entryCount(), 1u);
}

TEST(ProgramCache, HashCollisionIsNeitherServedNorAllowedToDisplace) {
  // FNV-1a collisions are adversarially constructible; model one with two
  // different sources pinned to the same 64-bit key. The victim's entry
  // must survive untouched and the collider must never be served it.
  jepod::ProgramCache cache(0);
  const std::uint64_t miss0 = counterValue("jepod.cache.misses");
  auto victim = cacheEntry(7, 10, "victim source");
  auto attacker = cacheEntry(7, 10, "attacker source");
  EXPECT_EQ(cache.put(victim), victim);
  // A colliding lookup is a miss, not the victim's program.
  EXPECT_EQ(cache.get(7, "attacker source"), nullptr);
  EXPECT_EQ(counterValue("jepod.cache.misses"), miss0 + 1);
  // A colliding insert does not evict or replace the incumbent; the
  // newcomer just stays uncached.
  EXPECT_EQ(cache.put(attacker), attacker);
  EXPECT_EQ(cache.entryCount(), 1u);
  EXPECT_EQ(cache.get(7, "victim source"), victim);
  EXPECT_EQ(cache.get(7, "attacker source"), nullptr);
}

TEST(ProgramCache, SourceHashIsStable) {
  // FNV-1a 64 of "abc" — pinned so cache keys are comparable across
  // processes, logs and future sessions.
  EXPECT_EQ(jepod::sourceHash("abc"), 0xe71fa2190541574bULL);
  EXPECT_NE(jepod::sourceHash("abc"), jepod::sourceHash("abd"));
}

// ---------------------------------------------------------------------------
// Bit-identity with the one-shot pipeline

TEST_F(JepodTest, JobMatchesDirectProfilerBitForBit) {
  startDaemon();
  Client c = connect();

  JobRequest req = makeRequest("bi1", kChurnSource, "edge-a");
  req.seed = 42;
  req.heapLimit = 16;  // forces mark-compact collections mid-job
  req.faultPlan = "transient:seed=3,transient-prob=0.05,transient-burst=1";
  const Response resp = c.submit(req);
  ASSERT_TRUE(resp.ok) << resp.errorMessage;

  // The same job, run in-process the way jepo_cli profile does.
  const jlang::Program program =
      jlang::Parser::parseProgram("<jepod>", kChurnSource);
  core::Profiler profiler;
  profiler.setHeapLimit(16);
  profiler.setSeed(42);
  profiler.setFaultSpec(
      fault::parseFaultPlan("transient:seed=3,transient-prob=0.05,transient-burst=1"));
  profiler.profile(program, "", jepod::kDefaultMaxSteps);

  EXPECT_EQ(resp.profile.stdoutText, profiler.programOutput());
  const auto& direct = profiler.records();
  ASSERT_EQ(resp.profile.records.size(), direct.size());
  bool sawRetry = false;
  for (std::size_t i = 0; i < direct.size(); ++i) {
    const auto& a = resp.profile.records[i];
    const auto& b = direct[i];
    EXPECT_EQ(a.method, b.method);
    // Exact double equality: the wire format is shortest-round-trip.
    EXPECT_EQ(a.seconds, b.seconds) << a.method;
    EXPECT_EQ(a.packageJoules, b.packageJoules) << a.method;
    EXPECT_EQ(a.coreJoules, b.coreJoules) << a.method;
    EXPECT_EQ(a.dramJoules, b.dramJoules) << a.method;
    EXPECT_EQ(a.truncated, b.truncated);
    EXPECT_EQ(a.quality, b.quality) << a.method;
    EXPECT_EQ(a.readRetries, b.readRetries) << a.method;
    sawRetry = sawRetry || b.readRetries > 0;
  }
  // The fault plan actually fired (otherwise this test proves nothing
  // about per-job fault streams).
  EXPECT_TRUE(sawRetry);

  // And a different seed derives a different fault stream.
  JobRequest other = req;
  other.id = "bi2";
  other.seed = 43;
  const Response resp2 = c.submit(other);
  ASSERT_TRUE(resp2.ok);
  EXPECT_TRUE(resp2.cached);
  int retriesA = 0;
  int retriesB = 0;
  for (const auto& r : resp.profile.records) retriesA += r.readRetries;
  for (const auto& r : resp2.profile.records) retriesB += r.readRetries;
  EXPECT_NE(retriesA, retriesB);
}

TEST_F(JepodTest, SuggestAndOptimizeMatchInProcessResults) {
  startDaemon();
  Client c = connect();

  JobRequest suggest = makeRequest("s1", kQuickSource);
  suggest.command = "suggest";
  const Response sResp = c.submit(suggest);
  ASSERT_TRUE(sResp.ok);
  const jlang::Program program =
      jlang::Parser::parseProgram("<jepod>", kQuickSource);
  core::SuggestionEngine engine;
  EXPECT_EQ(sResp.view,
            core::renderOptimizerView(engine.analyzeProgram(program)));

  JobRequest optimize = makeRequest("o1", kQuickSource);
  optimize.command = "optimize";
  const Response oResp = c.submit(optimize);
  ASSERT_TRUE(oResp.ok);
  EXPECT_TRUE(oResp.cached);  // suggest compiled it already
  EXPECT_NE(oResp.rewrittenSource.find("class Quick"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Profiling tiers over the wire

TEST_F(JepodTest, TieredJobMatchesLocalRenderByteForByte) {
  startDaemon();
  Client c = connect();
  const std::uint64_t sampled0 = counterValue("jepod.tier.sampled");
  const std::uint64_t tenant0 =
      counterValue("jepod.tenant.edge-a.tier.sampled");

  JobRequest req = makeRequest("t1", kChurnSource, "edge-a");
  req.seed = 42;
  req.tier = "sampled:4";
  const Response resp = c.submit(req);
  ASSERT_TRUE(resp.ok) << resp.errorMessage;
  EXPECT_EQ(counterValue("jepod.tier.sampled"), sampled0 + 1);
  EXPECT_EQ(counterValue("jepod.tenant.edge-a.tier.sampled"), tenant0 + 1);

  // The acceptance contract: the daemon's payload for a tiered job is
  // byte-identical to rendering the same job run locally (jepo_cli's
  // path) through the same protocol writer.
  const jlang::Program program =
      jlang::Parser::parseProgram("<jepod>", kChurnSource);
  core::Profiler profiler;
  profiler.setSeed(42);
  profiler.setTier(jvm::parseTierSpec("sampled:4"));
  profiler.profile(program, "", jepod::kDefaultMaxSteps);
  const std::string local = jepod::renderProfileResponse(
      req, /*cached=*/false,
      {profiler.programOutput(), profiler.records()});
  EXPECT_EQ(resp.raw, local);

  // Tier provenance survives the response parse.
  bool sawSampled = false;
  for (const auto& r : resp.profile.records) {
    if (r.tier == jvm::InstrTier::kSampled) sawSampled = true;
    EXPECT_GT(r.samplingRate, 0.0);
    EXPECT_LE(r.samplingRate, 1.0);
  }
  EXPECT_TRUE(sawSampled);

  core::Profiler fullProfiler;
  fullProfiler.setSeed(42);
  fullProfiler.profile(program, "", jepod::kDefaultMaxSteps);
  EXPECT_LT(resp.profile.records.size(), fullProfiler.records().size())
      << "sampling must drop records";
}

TEST_F(JepodTest, FullTierRequestKeepsPreTierWireBytes) {
  startDaemon();
  Client c = connect();
  const std::uint64_t full0 = counterValue("jepod.tier.full");

  // "full", "" and an absent field are the same wire request — and the
  // rendered request line for both omits the tier key entirely, so old
  // clients and new ones produce identical bytes.
  JobRequest plain = makeRequest("w1", kQuickSource);
  JobRequest full = makeRequest("w1", kQuickSource);
  full.tier = "full";
  EXPECT_EQ(jepod::renderRequest(plain), jepod::renderRequest(full));
  EXPECT_EQ(jepod::renderRequest(plain).find("tier"), std::string::npos);

  const Response a = c.submit(plain);
  const Response b = c.submit(full);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(counterValue("jepod.tier.full"), full0 + 2);
  // Identical payloads (the second is a cache hit, so compare from the
  // result object on).
  const auto payloadOf = [](const std::string& raw) {
    return raw.substr(raw.find("\"result\":"));
  };
  EXPECT_EQ(payloadOf(a.raw), payloadOf(b.raw));
  // Full-tier records carry no tier/samplingRate keys on the wire.
  EXPECT_EQ(a.raw.find("\"tier\""), std::string::npos);
  EXPECT_EQ(a.raw.find("samplingRate"), std::string::npos);
}

TEST_F(JepodTest, MalformedTierIsATypedBadRequest) {
  startDaemon();
  Client c = connect();

  JobRequest req = makeRequest("bt1", kQuickSource);
  req.tier = "sampled:0";
  const Response resp = c.submit(req);
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.errorCode, "bad-request");
  EXPECT_NE(resp.errorMessage.find("tier:"), std::string::npos)
      << resp.errorMessage;
  EXPECT_NE(resp.errorMessage.find("bad tier spec"), std::string::npos);

  // The tier is validated at the parse boundary, before any compile or
  // admission work — a raw line with a bogus tier gets the same answer.
  const Response raw = jepod::parseResponse(c.roundTrip(
      R"({"v":1,"id":"bt2","command":"profile","tier":"warm",)"
      R"("source":"class A { static void main(String[] a) {} }"})"));
  EXPECT_FALSE(raw.ok);
  EXPECT_EQ(raw.errorCode, "bad-request");
}

TEST_F(JepodTest, TierRoundTripsThroughRequestRenderAndParse) {
  JobRequest req = makeRequest("rt1", kQuickSource, "edge-a");
  req.tier = "hot:32";
  const std::string line = jepod::renderRequest(req);
  const JobRequest back = jepod::parseRequest(line);
  EXPECT_EQ(back.tier, "hot:32");
  EXPECT_EQ(back.id, "rt1");

  // Sampled records round-trip tier + samplingRate through the response.
  jvm::MethodRecord rec;
  rec.method = "A.m";
  rec.seconds = 0.25;
  rec.packageJoules = 1.5;
  rec.tier = jvm::InstrTier::kSampled;
  rec.samplingRate = 0.25;
  const std::string respLine =
      jepod::renderProfileResponse(req, false, {"out\n", {rec}});
  const Response parsed = jepod::parseResponse(respLine);
  ASSERT_EQ(parsed.profile.records.size(), 1u);
  EXPECT_EQ(parsed.profile.records[0].tier, jvm::InstrTier::kSampled);
  EXPECT_EQ(parsed.profile.records[0].samplingRate, 0.25);
}

// ---------------------------------------------------------------------------
// Admission control

TEST_F(JepodTest, QueueFullRejectIsDeterministicAndTyped) {
  DaemonConfig cfg;
  cfg.threads = 1;
  cfg.maxQueue = 1;
  cfg.retryAfterMs = 25;
  startDaemon(cfg);
  Client c = connect();

  // Pipeline both requests in one write: the reader admits the slow job,
  // then — in the same thread, microseconds later, while the job still
  // has ~seconds to run — evaluates the second against pending == 1.
  // The reject is therefore a pure function of config, not of timing.
  const std::uint64_t rejected0 =
      counterValue("jepod.jobs.rejected.queuefull");
  JobRequest slow = makeRequest("slow-1", kSlowSource);
  JobRequest second = makeRequest("fast-2", kQuickSource);
  const std::string reject =
      c.roundTrip(jepod::renderRequest(slow) + "\n" +
                  jepod::renderRequest(second));

  // Completion order: the reject is written inline, so it arrives first.
  EXPECT_EQ(reject,
            "{\"v\":1,\"id\":\"fast-2\",\"ok\":false,\"error\":"
            "{\"code\":\"queue-full\",\"message\":\"job queue is full "
            "(1/1 jobs in flight)\"},\"retryAfterMs\":25}");
  EXPECT_EQ(counterValue("jepod.jobs.rejected.queuefull"), rejected0 + 1);

  const Response slowResp = jepod::parseResponse(c.awaitLine());
  EXPECT_TRUE(slowResp.ok);
  EXPECT_EQ(slowResp.id, "slow-1");
  EXPECT_EQ(slowResp.profile.stdoutText, "179999700000\n");
}

TEST_F(JepodTest, PerTenantCountersTrackRequestsAndSanitizeNames) {
  startDaemon();
  Client c = connect();
  const std::uint64_t a0 = counterValue("jepod.tenant.edge-a.requests");
  const std::uint64_t weird0 = counterValue("jepod.tenant.___etc_.requests");

  ASSERT_TRUE(c.submit(makeRequest("t1", kQuickSource, "edge-a")).ok);
  ASSERT_TRUE(c.submit(makeRequest("t2", kQuickSource, "edge-a")).ok);
  ASSERT_TRUE(c.submit(makeRequest("t3", kQuickSource, "../etc!")).ok);

  EXPECT_EQ(counterValue("jepod.tenant.edge-a.requests"), a0 + 2);
  EXPECT_EQ(counterValue("jepod.tenant.___etc_.requests"), weird0 + 1);
  EXPECT_GE(obs::Registry::global()
                .histogram("jepod.tenant.edge-a.latencyUs")
                .count(),
            2u);
}

// ---------------------------------------------------------------------------
// Drain

TEST_F(JepodTest, DrainCompletesInFlightJobsAndRejectsNewOnes) {
  startDaemon();
  const std::uint64_t conns0 = counterValue("jepod.connections");
  Client inflight = connect();
  Client late = connect();  // connected BEFORE the drain begins
  // connect() returns once the kernel queues the handshake; wait until the
  // daemon has actually accept()ed both, or the drain below could reset the
  // still-backlogged connection instead of serving it a typed reject.
  ASSERT_TRUE(eventually(
      [&] { return counterValue("jepod.connections") >= conns0 + 2; }));

  const std::uint64_t admitted0 = counterValue("jepod.jobs.admitted");
  ASSERT_TRUE(inflight.connected());
  // Submit without waiting: send the raw line, then poll for admission.
  JobRequest slow = makeRequest("drain-slow", kSlowSource);
  std::thread sender([&] {
    const Response r = jepod::parseResponse(
        inflight.roundTrip(jepod::renderRequest(slow)));
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.profile.stdoutText, "179999700000\n");
  });
  ASSERT_TRUE(eventually(
      [&] { return counterValue("jepod.jobs.admitted") > admitted0; }));

  daemon_->requestDrain();
  EXPECT_TRUE(daemon_->draining());

  // A request on an already-open connection gets the typed drain reject.
  const Response rejected =
      jepod::parseResponse(late.roundTrip(
          jepod::renderRequest(makeRequest("too-late", kQuickSource))));
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.errorCode, "shutting-down");
  EXPECT_GE(rejected.retryAfterMs, 0);

  // The in-flight job still completes and flushes before teardown.
  sender.join();
  daemon_->waitDrained();

  // The socket file is gone and new connections fail.
  struct stat st;
  EXPECT_NE(::stat(daemon_->config().socketPath.c_str(), &st), 0);
  Client fresh;
  EXPECT_THROW(fresh.connect(daemon_->config().socketPath), Error);
}

TEST_F(JepodTest, DisconnectedClientsAreReapedWhileRunning) {
  startDaemon();
  const std::uint64_t conns0 = counterValue("jepod.connections");
  {
    Client a = connect();
    Client b = connect();
    ASSERT_TRUE(eventually(
        [&] { return counterValue("jepod.connections") >= conns0 + 2; }));
    ASSERT_TRUE(a.submit(makeRequest("reap-1", kQuickSource)).ok);
    EXPECT_EQ(daemon_->openConnectionCount(), 2u);
  }  // both clients close their sockets here

  // The reader threads see EOF and reclaim their registry entries (and
  // with them the fds) while the daemon keeps running — a long-lived
  // daemon serving short-lived clients must not grow without bound until
  // drain. Before the fix, this count stayed at 2 forever.
  EXPECT_TRUE(eventually([&] { return daemon_->openConnectionCount() == 0; }));

  // New clients are served as usual afterwards (this accept also joins
  // the parked reader threads of the reaped connections).
  Client c = connect();
  EXPECT_TRUE(c.submit(makeRequest("reap-2", kQuickSource)).ok);
  EXPECT_EQ(daemon_->openConnectionCount(), 1u);
}

TEST_F(JepodTest, SigtermTriggersGracefulDrain) {
  startDaemon();
  jepod::SignalDrain signals(*daemon_);
  Client c = connect();

  const std::uint64_t admitted0 = counterValue("jepod.jobs.admitted");
  JobRequest slow = makeRequest("sig-slow", kSlowSource);
  std::thread sender([&] {
    const Response r =
        jepod::parseResponse(c.roundTrip(jepod::renderRequest(slow)));
    EXPECT_TRUE(r.ok);
  });
  ASSERT_TRUE(eventually(
      [&] { return counterValue("jepod.jobs.admitted") > admitted0; }));

  ASSERT_EQ(::kill(::getpid(), SIGTERM), 0);
  ASSERT_TRUE(eventually([&] { return signals.triggered(); }));

  sender.join();          // in-flight job completed despite the signal
  daemon_->waitDrained();  // and the daemon wound down cleanly
  EXPECT_TRUE(daemon_->draining());
}

// ---------------------------------------------------------------------------
// Concurrency soak: many tenants, shared cache, bit-identical answers

TEST_F(JepodTest, ConcurrentTenantsGetBitIdenticalIsolatedResults) {
  DaemonConfig cfg;
  cfg.threads = 4;
  startDaemon(cfg);

  const char* sources[] = {kQuickSource, kChurnSource, kSlowSource};
  constexpr int kClients = 8;
  constexpr int kJobsPerClient = 4;
  const std::uint64_t hits0 = counterValue("jepod.cache.hits");

  // Reference payloads, computed through the daemon's own job runner.
  std::string expected[3];
  for (int s = 0; s < 3; ++s) {
    JobRequest ref = makeRequest("ref", sources[s]);
    ref.seed = 7;
    const std::string line = daemon_->runJobForTest(ref);
    const std::size_t at = line.find("\"result\":");
    ASSERT_NE(at, std::string::npos);
    expected[s] = line.substr(at);
  }

  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      Client c;
      c.connect(daemon_->config().socketPath);
      for (int k = 0; k < kJobsPerClient; ++k) {
        const int s = (i + k) % 3;
        JobRequest req = makeRequest(
            "c" + std::to_string(i) + "-" + std::to_string(k), sources[s],
            "tenant-" + std::to_string(i));
        req.seed = 7;
        const Response resp = c.submit(req);
        if (!resp.ok) {
          ++failures;
          continue;
        }
        const std::size_t at = resp.raw.find("\"result\":");
        if (at == std::string::npos ||
            resp.raw.substr(at) != expected[s]) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  // The repeated-source workload hit the cache every time: the reference
  // runs compiled all 3 sources up front, so every one of the 32 socket
  // jobs was a hit.
  EXPECT_GE(counterValue("jepod.cache.hits") - hits0,
            static_cast<std::uint64_t>(kClients * kJobsPerClient));
}

}  // namespace
}  // namespace jepo
