// Seeded synthetic MiniJava corpus for the predictor: small runnable
// programs whose methods vary in loop depth, call fan-out and arithmetic
// payload (spanning the static features) AND in iteration counts the
// static features cannot see — the variation that makes the dynamic
// execution-time feature genuinely informative, reproducing the setting of
// "Static Metrics Are Insufficient".
//
// Generation is a pure function of (count, seed): class names carry the
// program index (W<i>/M<i>), so qualified method names stay unique when
// many programs' profiles are pooled into one training set.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "jlang/ast.hpp"

namespace jepo::predict {

struct SynthProgram {
  std::string name;        // "synth<i>"
  std::string mainClass;   // "M<i>"
  jlang::Program program;  // parsed, runnable (M<i>.main)
};

/// Generate `count` programs from the seed. Throws on count < 1.
std::vector<SynthProgram> synthesizeCorpus(int count, std::uint64_t seed);

}  // namespace jepo::predict
