#include "predict/predictor.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace jepo::predict {

namespace {

/// Ordinal-stream tag for the held-out split, disjoint from every other
/// deriveSeed consumer.
constexpr std::uint64_t kHoldoutTag = 0x5917u;

/// Solve A w = b in place by Gaussian elimination with partial pivoting.
/// A is dim x dim row-major. Throws on a singular system (ridge damping
/// makes that unreachable for any ridge > 0).
std::vector<double> solve(std::vector<double> a, std::vector<double> b,
                          std::size_t dim) {
  for (std::size_t col = 0; col < dim; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < dim; ++r) {
      if (std::fabs(a[r * dim + col]) > std::fabs(a[pivot * dim + col])) {
        pivot = r;
      }
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < dim; ++c) {
        std::swap(a[col * dim + c], a[pivot * dim + c]);
      }
      std::swap(b[col], b[pivot]);
    }
    const double diag = a[col * dim + col];
    JEPO_REQUIRE(std::fabs(diag) > 0.0, "singular normal equations");
    for (std::size_t r = col + 1; r < dim; ++r) {
      const double factor = a[r * dim + col] / diag;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < dim; ++c) {
        a[r * dim + c] -= factor * a[col * dim + c];
      }
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> w(dim, 0.0);
  for (std::size_t r = dim; r-- > 0;) {
    double acc = b[r];
    for (std::size_t c = r + 1; c < dim; ++c) {
      acc -= a[r * dim + c] * w[c];
    }
    w[r] = acc / a[r * dim + r];
  }
  return w;
}

}  // namespace

LinearModel LinearModel::fit(const std::vector<Sample>& samples,
                             double ridge) {
  JEPO_REQUIRE(!samples.empty(), "fit over an empty sample set");
  const std::size_t dim = samples.front().features.size();
  JEPO_REQUIRE(dim >= 1, "samples need at least one feature column");

  // Normal equations: (X^T X + ridge I) w = X^T y.
  std::vector<double> xtx(dim * dim, 0.0);
  std::vector<double> xty(dim, 0.0);
  for (const Sample& s : samples) {
    JEPO_REQUIRE(s.features.size() == dim, "ragged feature matrix");
    for (std::size_t r = 0; r < dim; ++r) {
      xty[r] += s.features[r] * s.packageJoules;
      for (std::size_t c = 0; c < dim; ++c) {
        xtx[r * dim + c] += s.features[r] * s.features[c];
      }
    }
  }
  for (std::size_t d = 0; d < dim; ++d) xtx[d * dim + d] += ridge;

  LinearModel model;
  model.weights_ = solve(std::move(xtx), std::move(xty), dim);
  return model;
}

double LinearModel::predict(const std::vector<double>& features) const {
  JEPO_REQUIRE(features.size() == weights_.size(),
               "feature/weight dimension mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < features.size(); ++i) {
    acc += weights_[i] * features[i];
  }
  return acc;
}

std::vector<Sample> joinSamples(const std::vector<MethodFeatures>& features,
                                const std::vector<DynamicRecord>& records,
                                bool useDynamic) {
  std::vector<Sample> out;
  out.reserve(records.size());
  for (const DynamicRecord& rec : records) {
    const auto it = std::find_if(
        features.begin(), features.end(),
        [&rec](const MethodFeatures& f) { return f.method == rec.method; });
    if (it == features.end()) continue;
    Sample s;
    s.method = rec.method;
    s.packageJoules = rec.packageJoules;
    s.features.push_back(1.0);
    if (useDynamic) s.features.push_back(rec.seconds);
    s.features.push_back(it->bytecodeLen);
    s.features.push_back(it->callCount);
    s.features.push_back(it->loopDepth);
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(), [](const Sample& a, const Sample& b) {
    return a.method < b.method;
  });
  return out;
}

EvalResult evaluateHoldout(const std::vector<Sample>& samples,
                           const PredictorConfig& config) {
  JEPO_REQUIRE(samples.size() >= 2,
               "held-out evaluation needs at least two samples");

  // Per-index coin flips: sample i's side is a pure function of
  // (seed, i), so the split replays exactly and never depends on how the
  // records were gathered.
  std::vector<bool> heldOut(samples.size(), false);
  std::size_t testCount = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    Rng rng(deriveSeed(config.seed, kHoldoutTag,
                       static_cast<std::uint64_t>(i)));
    heldOut[i] = rng.nextDouble() < config.holdoutFraction;
    if (heldOut[i]) ++testCount;
  }
  // Degenerate splits (tiny corpora, extreme fractions): hold out exactly
  // the last sample so both sides stay populated.
  if (testCount == 0 || testCount == samples.size()) {
    std::fill(heldOut.begin(), heldOut.end(), false);
    heldOut.back() = true;
  }

  std::vector<Sample> train;
  std::vector<const Sample*> test;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (heldOut[i]) {
      test.push_back(&samples[i]);
    } else {
      train.push_back(samples[i]);
    }
  }

  const LinearModel model = LinearModel::fit(train, config.ridge);
  double absErr = 0.0;
  double absActual = 0.0;
  for (const Sample* s : test) {
    absErr += std::fabs(model.predict(s->features) - s->packageJoules);
    absActual += std::fabs(s->packageJoules);
  }

  EvalResult result;
  result.trainMethods = static_cast<int>(train.size());
  result.testMethods = static_cast<int>(test.size());
  result.meanAbsError = absErr / static_cast<double>(test.size());
  const double meanActual = absActual / static_cast<double>(test.size());
  result.relativeError =
      meanActual > 0.0 ? result.meanAbsError / meanActual : 0.0;
  result.weights = model.weights();
  return result;
}

}  // namespace jepo::predict
