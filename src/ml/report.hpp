// Full WEKA-style evaluation report: confusion matrix, per-class precision
// / recall / F1, overall accuracy and Cohen's kappa — what `weka.classifiers
// .Evaluation` prints after cross-validation.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ml/classifier.hpp"

namespace jepo::ml {

class EvaluationReport {
 public:
  explicit EvaluationReport(std::size_t numClasses);

  /// Record one prediction.
  void add(int actual, int predicted);

  std::size_t total() const noexcept { return total_; }
  std::size_t correct() const noexcept { return correct_; }
  double accuracy() const;

  /// confusion()[actual][predicted]
  const std::vector<std::vector<std::size_t>>& confusion() const noexcept {
    return matrix_;
  }

  double precision(std::size_t cls) const;  // TP / (TP + FP)
  double recall(std::size_t cls) const;     // TP / (TP + FN)
  double f1(std::size_t cls) const;
  double kappa() const;  // Cohen's kappa vs chance agreement

  /// WEKA-flavoured text render (summary + per-class table + matrix).
  std::string render(const Attribute& classAttr) const;

 private:
  std::vector<std::vector<std::size_t>> matrix_;
  std::size_t total_ = 0;
  std::size_t correct_ = 0;
};

/// Evaluate a trained classifier over a test set into a report.
EvaluationReport evaluateDetailed(Classifier& classifier,
                                  const Instances& test);

/// Stratified k-fold CV accumulating one pooled report over all folds.
EvaluationReport crossValidateDetailed(
    const std::function<std::unique_ptr<Classifier>()>& factory,
    const Instances& data, std::size_t folds, Rng& rng);

}  // namespace jepo::ml
