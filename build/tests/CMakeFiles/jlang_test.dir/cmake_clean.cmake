file(REMOVE_RECURSE
  "CMakeFiles/jlang_test.dir/jlang_test.cpp.o"
  "CMakeFiles/jlang_test.dir/jlang_test.cpp.o.d"
  "jlang_test"
  "jlang_test.pdb"
  "jlang_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jlang_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
