# Empty dependencies file for jepo_core.
# This may be replaced when dependencies are built.
