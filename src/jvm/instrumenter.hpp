// Method-granularity energy instrumentation.
//
// JEPO injects bytecode (via Javassist) that reads the RAPL MSRs and a
// timestamp at the start and end of every method, then dumps one record per
// execution into result.txt. The Instrumenter is that injected code: it
// hooks method entry/exit, reads the energy-status registers through
// RaplReader (the wraparound-correct path), and emits one MethodRecord per
// execution — nested and recursive calls measure inclusively, exactly like
// JEPO's injected reads.
#pragma once

#include <string>
#include <vector>

#include "energy/machine.hpp"
#include "jvm/interpreter.hpp"
#include "rapl/rapl.hpp"

namespace jepo::jvm {

/// One method execution, as JEPO stores it in result.txt.
struct MethodRecord {
  std::string method;      // Class.method
  double seconds = 0.0;    // execution time
  double packageJoules = 0.0;
  double coreJoules = 0.0;
  double dramJoules = 0.0;
  /// The method never exited: the VM aborted (step limit, runtime error)
  /// while it was still on the stack, and the record measures only up to
  /// the abort point.
  bool truncated = false;
};

class Instrumenter final : public MethodHooks {
 public:
  explicit Instrumenter(energy::SimMachine& machine);

  void onEnter(const std::string& qualifiedName) override;
  void onExit(const std::string& qualifiedName) override;

  /// One record per completed method execution, in completion order.
  const std::vector<MethodRecord>& records() const noexcept {
    return records_;
  }

  /// Frames whose onExit never fired (the interpreter aborted mid-method).
  bool hasOpenFrames() const noexcept { return !stack_.empty(); }

  /// Unwind every open frame into a `truncated` record, innermost first
  /// (matching completion order: the deepest call "ends" first as the VM
  /// dies). Call after catching a VM abort; afterwards the instrumenter is
  /// balanced again and safe to reuse. Without this, stale frames would
  /// trip the "unbalanced method hooks" check on the next run and the
  /// partially-executed methods would vanish from the result file.
  void unwindAbortedFrames();

  void clear();

 private:
  MethodRecord closeFrame(bool truncated);

  struct OpenFrame {
    std::string method;
    double startSeconds = 0.0;
    std::uint32_t startPkgRaw = 0;
    std::uint32_t startCoreRaw = 0;
    std::uint32_t startDramRaw = 0;
  };

  energy::SimMachine* machine_;
  rapl::RaplReader reader_;
  std::vector<OpenFrame> stack_;
  std::vector<MethodRecord> records_;
};

}  // namespace jepo::jvm
