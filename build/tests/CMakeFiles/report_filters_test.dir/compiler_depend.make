# Empty compiler generated dependencies file for report_filters_test.
# This may be replaced when dependencies are built.
