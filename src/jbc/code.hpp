// Bytecode representation — the "Javassist level" of the reproduction.
//
// JEPO's profiler injects measurement instructions into compiled method
// bodies. The jbc module makes that level real: a compiler lowers MiniJava
// methods into stack-machine chunks (with exception tables, as on the real
// JVM), and a bytecode VM executes them on the same Heap/Value/Builtin
// substrate as the tree interpreter. The two engines are pinned together by
// cross-engine agreement tests; their energy accounting differs only where
// the compiled form genuinely differs (e.g. a ternary compiles to plain
// branches).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "jlang/ast.hpp"
#include "jvm/value.hpp"

namespace jepo::jbc {

enum class Op : std::uint8_t {
  // Constants. a indexes the matching pool; b is a flags word.
  kConstInt,     // a -> intPool
  kConstLong,    // a -> intPool
  kConstFloat,   // a -> numPool; b=1: plain-decimal spelling
  kConstDouble,  // a -> numPool; b=1: plain-decimal spelling
  kConstStr,     // a -> names (interned at runtime)
  kConstChar,    // a = code point
  kConstBool,    // a = 0/1
  kConstNull,

  // Locals. a = slot; for kStore b = ValKind to coerce to (-1: none).
  kLoad,
  kStore,
  kLoadThis,

  // Fields. a -> names.
  kGetField,      // obj -> value   (array.length handled here)
  kPutField,      // obj value ->
  kGetThisField,  // -> value
  kPutThisField,  // value ->
  kGetStatic,     // a -> names ("Class.field")
  kPutStatic,

  // Arrays.
  kArrayGet,  // arr idx -> value
  kArraySet,  // arr idx value ->
  kNewArray,  // a = dim count (dims on stack), b = leaf ValKind

  // Objects.
  kNewObject,  // a -> names (class), b = argc; c = classId+1 when the
               // resolution pass bound the class (0: dynamic lookup)

  // Operators.
  kBinary,  // a = jlang::BinOp (no &&/||)
  kNeg,
  kNot,
  kBitNot,
  kCast,  // a = ValKind
  kBox,   // a -> names (wrapper class)

  // Control flow. a = target pc.
  kJump,
  kJumpIfFalse,  // b=1: this branch is a compiled ternary (charge kTernary)
  kJumpIfTrue,
  kLoopTick,  // charge one loop iteration
  kTryTick,   // charge a try entry

  // Calls. argc values on stack (receiver below them for virtual).
  kCallStatic,       // a -> names (class), b -> names (method), c = argc
  kCallVirtual,      // a -> names (method), b = argc
  kCallUnqualified,  // a -> names (method), b = argc; current class
  kPrint,            // a = newline flag, b = has-argument flag

  kReturnValue,
  kReturnVoid,
  kPop,
  kDup,
  kThrow,

  // Slot-resolved forms, emitted when the resolution pass (jlang/resolve.hpp)
  // bound the site at compile time. Each preserves the charge sequence and
  // error strings of its dynamic counterpart exactly; only the name lookup
  // is gone. The dynamic ops above remain as fallbacks for sites the
  // resolver could not bind (builtin statics, unknown names in dead code).
  kGetStaticSlot,       // a = global static slot (-1: resolved-missing),
                        // b = classId, c -> names ("Class.field" error text)
  kPutStaticSlot,       // same operands
  kGetThisFieldSlot,    // a = field offset in this's layout
  kPutThisFieldSlot,    // a = field offset; value on stack
  kGetFieldCached,      // a -> names (field), b = field-cache slot
  kPutFieldCached,      // a -> names (field), b = field-cache slot
  kCallStaticResolved,  // a = classId, b = method ordinal, c = argc
  kCallSelfResolved,    // a = method ordinal, b = argc, c = prepend-this flag
  kCallVirtualCached,   // a -> names (method), b = argc, c = call-cache slot

  // Superinstructions, produced only by the post-resolution peephole pass
  // (compiler.cpp, fuseChunk). Each one executes the exact charge()/error
  // sequence of the original instruction run it replaces and carries that
  // run's length in Instr::n, so step() accounting is unchanged. The pass
  // never fuses across a jump target or an exception-table boundary, and
  // jump/handler pcs are remapped after deletion. Operand packing below
  // uses SuperPack (compiler.cpp / bcvm.cpp); a site that does not fit the
  // packing is simply left unfused.
  kLoadLoad,             // [kLoad kLoad]  a = slot1, b = slot2
  kLoadReturn,           // [kLoad kReturnValue]  a = slot
  kThisFieldReturn,      // [kGetThisFieldSlot kReturnValue]  a = offset
  kStorePop,             // [kDup kStore kPop]  a = slot, b = store-kind enc
  kPutThisFieldSlotPop,  // [kDup kPutThisFieldSlot kPop]  a = offset
  kConstBinary,          // [kConstInt kBinary]  a = intPool, b = BinOp
  kLoadConstBinary,      // [kLoad kConstInt kBinary]  a = intPool,
                         //   b = slot | BinOp<<20
  kLoadLoadBinary,       // [kLoad kLoad kBinary]  a = slot1,
                         //   b = slot2 | BinOp<<20
  kThisFieldConstBinary, // [kGetThisFieldSlot kConstInt kBinary]
                         //   a = intPool, b = offset | BinOp<<20
  kThisFieldBinary,      // [kGetThisFieldSlot kBinary]  a = offset, b = BinOp
  kBinaryCast,           // [kBinary kCast(implicit)]  a = BinOp, b = ValKind
  kBinCastStorePop,      // [kBinary kCast(implicit) kDup kStore kPop]
                         //   a = slot, b = BinOp | castK<<8 | storeK<<16
  kLoadLoadBinaryReturn, // [kLoad kLoad kBinary kReturnValue]  a = slot1,
                         //   b = slot2 | BinOp<<20
  kLoadConstCmpJump,     // [kLoad kConstInt kBinary(cmp) kJumpIfFalse
                         //   (kLoopTick)]  a = target, c = intPool,
                         //   b = slot | cmp<<20 | tick<<26
  kLoadLoadCmpJump,      // [kLoad kLoad kBinary(cmp) kJumpIfFalse
                         //   (kLoopTick)]  a = target,
                         //   b = slot1 | slot2<<10 | cmp<<20 | tick<<26
  kLoadConstBinStore,    // [kLoad kConstInt kBinary (kCast impl) kDup kStore
                         //   kPop]  a = intPool, c = castK enc (-1: none),
                         //   b = slot1 | slot2<<10 | BinOp<<20 | storeK<<25
  kIncDecLocalStmt,      // [kLoad kDup kConstInt kBinary (kCast impl) kStore
                         //   kPop]  (post-inc/dec statement, same slot)
                         //   a = intPool, c = castK enc (-1: none),
                         //   b = slot | BinOp<<20 | storeK<<25
  kLoadLoadConstBinary,  // [kLoad kLoad kConstInt kBinary]  a = intPool,
                         //   b = slot1 | slot2<<10 | BinOp<<20; pushes
                         //   slots[slot1] then (slots[slot2] <op> const)
  kIncDecJump,           // kIncDecLocalStmt run + trailing kJump — the
                         //   counted-loop latch.  a = intPool, c = target,
                         //   b = slot | BinOp<<16 | storeK<<21 | castK<<25
                         //   (castK enc 15: none)
  kAccumConstStmt,       // [kLoad kLoad kConstInt kBinary kBinary (kCast
                         //   impl) kDup kStore kPop] — the accumulate
                         //   statement `s1 = s1 <op2> (s2 <op1> const)`.
                         //   a = intPool, b = s1 | s2<<10 | op1<<20 |
                         //   op2<<25, c = storeK | castK<<4 (enc 15: none)
  kThisFieldAccumReturn, // [kGetThisFieldSlot kGetThisFieldSlot kBinary
                         //   (kCast impl) kDup kPutThisFieldSlot kPop
                         //   kGetThisFieldSlot kReturnValue] — the whole
                         //   `f1 = f1 <op> f2; return f1;` body.
                         //   a = off1 | off2<<12, b = BinOp | castK<<8
                         //   (castK enc 15: none)
  kLoadLoadCallSelf,     // [kLoad kLoad kCallSelfResolved] — a and c keep
                         //   the call's operands (ordinal, prepend-this);
                         //   b = argc | slot1<<10 | slot2<<20
  kLoadLoadCallVirt,     // [kLoad kLoad kCallVirtualCached] — a and c keep
                         //   the call's operands (names, cache slot);
                         //   b = argc | slot1<<10 | slot2<<20

  // Loop-tail pairs, produced by the second peephole pass (matchPair) over
  // already-fused code: a loop-body tail statement merged with the
  // kIncDecJump latch that follows it, so a steady-state counted-loop
  // iteration dispatches once for the whole tail. Instr::n carries the
  // combined seed run length. Packed fields are decoded as unsigned.
  kAccumConstJump,       // [kAccumConstStmt][kIncDecJump], latch slot == s2.
                         //   a = pool1 | pool2<<16, c = target |
                         //   storeK1<<16 | castK1<<20 | storeKL<<24 |
                         //   castKL<<28, b = s1 | s2<<8 | bop1<<16 |
                         //   bop2<<21 | bopL<<26
  kStorePopIncDecJump,   // [kStorePop][kIncDecJump].  a = pool | target<<16,
                         //   b = slotS | slotL<<10 | bopL<<20,
                         //   c = storeKS | storeKL<<4 | castKL<<8
  kBinCastStoreIncDecJump, // [kBinCastStorePop][kIncDecJump].
                         //   a = pool | target<<16, b = slotS | slotL<<8 |
                         //   bopS<<16 | bopL<<21, c = storeKS | castKS<<4 |
                         //   storeKL<<8 | castKL<<12

  kCountedAccumLoop,     // Whole counted accumulate loop, produced by the
                         //   third peephole pass (matchLoop):
                         //   [kLoadConstCmpJump][kAccumConstJump] where the
                         //   cmp tests the latch slot, its false-exit is
                         //   the pc after the pair, and the latch jumps
                         //   back to the cmp. Both targets are implicit
                         //   (fall-through / self), so one dispatch runs a
                         //   whole iteration. Instr::n covers only the cmp
                         //   run; the handler accounts the body run on the
                         //   taken path, preserving exact step totals.
                         //   a = limitPool | pool1<<16, b as
                         //   kAccumConstJump, c = pool2 | cmpOp<<10 |
                         //   tick<<15 | storeK1<<16 | castK1<<20 |
                         //   storeKL<<24 | castKL<<28
};

struct Instr {
  Op op;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t c = 0;
  std::int32_t line = 0;
  /// Number of seed instructions this instruction accounts for in step()
  /// bookkeeping: 1 normally, the fused run length for superinstructions.
  std::uint8_t n = 1;
};

/// JVM-style exception table entry: pcs in [start, end) covered; on a match
/// the operand stack is cleared, the exception ref stored to `slot`, and
/// control transfers to `handler`.
struct ExceptionEntry {
  std::int32_t start = 0;
  std::int32_t end = 0;
  std::int32_t handler = 0;
  std::int32_t classNameIdx = -1;  // -1 = catch-all (finally path)
  std::int32_t slot = -1;          // -1 = leave the exception on the stack
};

struct Chunk {
  std::string qualifiedName;  // "Class.method" for the hook interface
  /// Interned program-wide method id (Resolution::methodNames index) —
  /// what MethodHooks receive, so the instrumenter's balance check is an
  /// integer compare instead of a string compare.
  std::uint32_t methodId = jlang::kNoName;
  std::vector<Instr> code;
  std::vector<ExceptionEntry> handlers;
  int numSlots = 0;
  int numParams = 0;  // including the `this` slot for instance methods
  bool isStatic = true;
  std::vector<jvm::ValKind> paramKinds;  // coercion at call time
  /// Dense program-wide chunk index (< CompiledProgram::chunkCount). The VM
  /// keys its private quickened code copies on it, so quickening one VM
  /// never mutates the shared CompiledProgram (ParallelRunner shares it).
  std::uint32_t chunkId = 0;
  /// Worst-case operand-stack depth, computed by dataflow over the
  /// pre-fusion code (a fused instruction never needs more stack than the
  /// run it replaced). Lets the VM pre-size pooled frames exactly.
  int maxStack = 0;
};

struct CompiledField {
  std::string name;
  jvm::ValKind kind = jvm::ValKind::kInt;
  bool isStatic = false;
};

struct CompiledClass {
  std::string name;
  std::int32_t classId = -1;  // index into Resolution::classes
  std::vector<CompiledField> fields;
  std::unordered_map<std::string, Chunk> methods;  // includes ctor (== name)
  Chunk clinit;      // static field initializers (may be empty)
  Chunk initFields;  // instance field initializers (may be empty)
  bool hasMain = false;
};

struct CompiledProgram {
  std::vector<std::string> names;   // shared string/name pool
  std::vector<std::int64_t> intPool;
  std::vector<double> numPool;
  std::unordered_map<std::string, CompiledClass> classes;
  /// Number of chunks across all classes; Chunk::chunkId is dense below it.
  std::uint32_t chunkCount = 0;
  /// The resolution substrate of the source Program (set by compile()).
  /// The slot/classId/cacheSlot operands above index its tables. Holds
  /// pointers into the source AST, so the Program must outlive execution —
  /// the same lifetime contract the tree interpreter has always had.
  std::shared_ptr<const jlang::Resolution> resolution;

  const CompiledClass* findClass(const std::string& name) const {
    const auto it = classes.find(name);
    return it == classes.end() ? nullptr : &it->second;
  }
};

/// Raised when a construct is outside the bytecode backend's supported set
/// (documented limitation: break/continue/return crossing a finally).
class CompileError : public Error {
 public:
  using Error::Error;
};

/// Human-readable disassembly (for tests and debugging).
std::string disassemble(const Chunk& chunk, const CompiledProgram& program);

}  // namespace jepo::jbc
