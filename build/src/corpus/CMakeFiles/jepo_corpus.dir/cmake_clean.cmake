file(REMOVE_RECURSE
  "CMakeFiles/jepo_corpus.dir/corpus.cpp.o"
  "CMakeFiles/jepo_corpus.dir/corpus.cpp.o.d"
  "libjepo_corpus.a"
  "libjepo_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jepo_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
