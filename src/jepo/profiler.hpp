// Profiler — JEPO's "profiler" pop-up button.
//
// Selects the main class (prompting — here: erroring with candidates — when
// ambiguous), runs the project with the Instrumenter installed, and exposes
// the per-execution records plus the two artifacts JEPO produces: the
// result.txt dump and the profiler view (Fig. 4).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "energy/machine.hpp"
#include "fault/fault.hpp"
#include "jlang/ast.hpp"
#include "jvm/instrumenter.hpp"
#include "support/cancel.hpp"

namespace jepo::core {

/// Aggregated per-method totals (all executions of one method summed).
///
/// Under a sampling tier the energy/time columns are count-weighted
/// extrapolations: the instrumented records' sums scaled by
/// invocations / instrumented, with `executions` reporting the true
/// invocation count (the gate counts every entry). A hot-tier method that
/// never crossed the promotion threshold appears with its invocation
/// count and zero measured columns — aggregate-only attribution.
struct MethodTotals {
  std::string method;
  std::size_t executions = 0;
  double seconds = 0.0;
  double packageJoules = 0.0;
  double coreJoules = 0.0;
  double dramJoules = 0.0;
  /// Executions that actually ran instrumented (== executions under full).
  std::size_t instrumentedExecutions = 0;
  /// instrumented / executions for this method (1.0 under full).
  double samplingRate = 1.0;
  jvm::InstrTier tier = jvm::InstrTier::kFull;
};

class Profiler {
 public:
  /// Runs `mainClass` (or the unique main class when empty) on a fresh
  /// SimMachine with method instrumentation and captures the records.
  /// maxSteps guards runaway programs (0 = unlimited). If the VM aborts
  /// (step limit, runtime error) the error is rethrown, but the records
  /// and program output up to the abort are retained first — methods still
  /// on the stack appear as `truncated` records, innermost first.
  void profile(const jlang::Program& program, std::string_view mainClass = {},
               std::uint64_t maxSteps = 0);

  /// Cap the profiled run's heap at `objects` before mark-compact kicks in
  /// (0 = never collect). Unset, the engine default applies (env
  /// JEPO_HEAP_LIMIT, or no collection). GC is host-time only: the profiled
  /// joules/records are identical with or without a limit.
  void setHeapLimit(std::size_t objects) { heapLimit_ = objects; }

  /// Base seed of this run's derived streams (fault injection today; any
  /// future stochastic component of a profiled run). Two profiles of the
  /// same program with the same seed are bit-identical regardless of which
  /// process hosts them — the contract jepod relies on to match jepo_cli.
  void setSeed(std::uint64_t seed) { seed_ = seed; }

  /// Install (or clear, with nullptr) a cooperative cancel token the run's
  /// engine polls at its step boundary. A token fired mid-run aborts the
  /// profile with CancelledError, retaining the records and output captured
  /// so far (on-stack methods flush as truncated records, exactly like a
  /// step-limit abort). A token that never fires changes nothing — the
  /// run stays bit-identical to an uncancellable one. Not owned; must
  /// outlive profile().
  void setCancelToken(const CancelToken* token) { cancel_ = token; }

  /// Select the instrumentation tier (jvm/tier.hpp): full (the default,
  /// bit-identical to the untiered seed behaviour), sampled:N or hot:T.
  /// Sampling decisions are a pure function of (seed, interned method id,
  /// invocation ordinal), so a sampled run replays bit-identically from
  /// its seed — the same contract jepod relies on for full runs.
  void setTier(const jvm::TierSpec& spec) { tier_ = spec; }
  const jvm::TierSpec& tierSpec() const noexcept { return tier_; }

  /// Route the instrumenter's MSR reads through a deterministic
  /// fault-injection device built from `spec`. The plan's stream is
  /// deriveSeed(seed, spec.seed), so per-job seeds give every job a fresh
  /// fault stream while (seed, spec) alone fully determine the run. An
  /// inactive spec is ignored (clean read path, zero overhead).
  void setFaultSpec(fault::FaultSpec spec) { faultSpec_ = std::move(spec); }

  /// One record per method execution (JEPO stores each execution
  /// separately when a method runs more than once).
  const std::vector<jvm::MethodRecord>& records() const noexcept {
    return records_;
  }

  /// Per-method aggregation, sorted by descending package energy — the
  /// "which method is energy-hungry" question the tool answers.
  std::vector<MethodTotals> totals() const;

  /// The program's stdout from the profiled run.
  const std::string& programOutput() const noexcept { return output_; }

  /// The result.txt content JEPO writes into the project directory: one
  /// line per execution, method / seconds / package J / core J / dram J,
  /// with truncated (abort-unwound) executions marked.
  std::string renderResultFile() const;

  /// Per-method population counts from the run's tier gate (empty under
  /// full instrumentation): total vs instrumented invocations.
  const std::vector<jvm::TierGate::MethodStat>& tierStats() const noexcept {
    return tierStats_;
  }

 private:
  std::vector<jvm::MethodRecord> records_;
  std::vector<jvm::TierGate::MethodStat> tierStats_;
  std::string output_;
  jvm::TierSpec tier_;
  std::optional<std::size_t> heapLimit_;
  std::uint64_t seed_ = 0;
  std::optional<fault::FaultSpec> faultSpec_;
  const CancelToken* cancel_ = nullptr;
};

}  // namespace jepo::core
