file(REMOVE_RECURSE
  "libjepo_core.a"
)
