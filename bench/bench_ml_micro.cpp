// google-benchmark micro suite for the mini-WEKA: dataset generation,
// training and prediction throughput per classifier, and the CodeStyle
// metering overhead.
#include <benchmark/benchmark.h>

#include "bench_micro.hpp"
#include "data/airlines.hpp"
#include "ml/evaluation.hpp"

namespace {

using namespace jepo;

ml::Instances sampleData(std::size_t n) {
  data::AirlinesConfig cfg;
  cfg.instances = n;
  return data::generateAirlines(cfg);
}

void BM_GenerateAirlines(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    data::AirlinesConfig cfg;
    cfg.instances = n;
    benchmark::DoNotOptimize(data::generateAirlines(cfg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GenerateAirlines)->Arg(1000)->Arg(10000);

template <ml::ClassifierKind Kind>
void BM_Train(benchmark::State& state) {
  const ml::Instances data = sampleData(
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    energy::SimMachine machine;
    ml::MlRuntime rt(machine, ml::CodeStyle::javaBaseline());
    auto clf = ml::makeClassifier(Kind, ml::Precision::kDouble, rt, 7);
    clf->train(data);
    benchmark::DoNotOptimize(clf.get());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Train<ml::ClassifierKind::kJ48>)->Arg(500);
BENCHMARK(BM_Train<ml::ClassifierKind::kRepTree>)->Arg(500);
BENCHMARK(BM_Train<ml::ClassifierKind::kNaiveBayes>)->Arg(500);
BENCHMARK(BM_Train<ml::ClassifierKind::kLogistic>)->Arg(500);
BENCHMARK(BM_Train<ml::ClassifierKind::kSgd>)->Arg(500);
BENCHMARK(BM_Train<ml::ClassifierKind::kSmo>)->Arg(500);

void BM_PredictIbk(benchmark::State& state) {
  const ml::Instances data = sampleData(500);
  energy::SimMachine machine;
  ml::MlRuntime rt(machine, ml::CodeStyle::javaBaseline());
  auto clf = ml::makeClassifier(ml::ClassifierKind::kIbk,
                                ml::Precision::kDouble, rt, 7);
  clf->train(data);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(clf->predict(data.row(i)));
    i = (i + 1) % data.numInstances();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PredictIbk);

void BM_CrossValidateNaiveBayes(benchmark::State& state) {
  const ml::Instances data = sampleData(400);
  for (auto _ : state) {
    energy::SimMachine machine;
    ml::MlRuntime rt(machine, ml::CodeStyle::jepoOptimized());
    Rng rng(3);
    benchmark::DoNotOptimize(ml::crossValidate(
        [&] {
          return ml::makeClassifier(ml::ClassifierKind::kNaiveBayes,
                                    ml::Precision::kDouble, rt, 7);
        },
        data, 10, rng));
  }
}
BENCHMARK(BM_CrossValidateNaiveBayes);

void BM_StratifiedFolds(benchmark::State& state) {
  const ml::Instances data = sampleData(5000);
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(data.stratifiedFolds(10, rng));
  }
}
BENCHMARK(BM_StratifiedFolds);

}  // namespace

int main(int argc, char** argv) {
  return jepo::bench::microMain("bench_ml_micro", argc, argv);
}
