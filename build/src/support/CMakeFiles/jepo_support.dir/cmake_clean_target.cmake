file(REMOVE_RECURSE
  "libjepo_support.a"
)
