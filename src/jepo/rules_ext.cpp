#include "jepo/rules_ext.hpp"

#include <unordered_map>
#include <unordered_set>

#include "jepo/engine.hpp"
#include "jepo/walk.hpp"

namespace jepo::core {

using jlang::ClassDecl;
using jlang::CompilationUnit;
using jlang::Expr;
using jlang::ExprKind;
using jlang::ExprPtr;
using jlang::MethodDecl;
using jlang::Program;
using jlang::Stmt;
using jlang::StmtKind;
using jlang::StmtPtr;
using jlang::TypeRef;

std::string_view extRuleName(ExtRuleId id) noexcept {
  switch (id) {
    case ExtRuleId::kTryInLoop: return "Exception handling in loop";
    case ExtRuleId::kBoxingInLoop: return "Boxing in loop";
    case ExtRuleId::kAllocationInLoop: return "Allocation in loop";
    case ExtRuleId::kLengthInLoopCond: return "length() in loop condition";
    case ExtRuleId::kRepeatedFieldAccess: return "Repeated field access";
    case ExtRuleId::kExtRuleCount: break;
  }
  return "?";
}

std::string_view extRuleSuggestion(ExtRuleId id) noexcept {
  switch (id) {
    case ExtRuleId::kTryInLoop:
      return "Entering a try block every iteration pays its setup cost "
             "repeatedly. Move the loop inside the try when the handler "
             "allows it.";
    case ExtRuleId::kBoxingInLoop:
      return "Boxing allocates per iteration. Use the primitive inside the "
             "loop and box once outside.";
    case ExtRuleId::kAllocationInLoop:
      return "Allocating a new object every iteration is energy-expensive. "
             "Hoist or reuse the object when it does not escape the "
             "iteration.";
    case ExtRuleId::kLengthInLoopCond:
      return "length() is re-evaluated on every loop test. Hoist it into a "
             "local before the loop.";
    case ExtRuleId::kRepeatedFieldAccess:
      return "The same field is read repeatedly; cache it in a local to "
             "avoid the per-read field access cost.";
    case ExtRuleId::kExtRuleCount: break;
  }
  return "?";
}

std::string ExtSuggestion::message() const {
  std::string out(extRuleSuggestion(rule));
  if (!detail.empty()) out += " [" + detail + "]";
  return out;
}

namespace {

bool isLoop(const Stmt& s) {
  return s.kind == StmtKind::kFor || s.kind == StmtKind::kWhile;
}

/// Visit loop bodies: fn(loopStmt, bodyStmt).
void forEachLoop(const Stmt& root,
                 const std::function<void(const Stmt&)>& fn) {
  walkStmt(
      root,
      [&](const Stmt& s) {
        if (isLoop(s)) fn(s);
      },
      [](const Expr&) {});
}

bool isWrapperName(const std::string& n) {
  return n == "Integer" || n == "Long" || n == "Double" || n == "Float" ||
         n == "Short" || n == "Byte" || n == "Character" || n == "Boolean";
}

}  // namespace

std::vector<ExtSuggestion> analyzeExtensions(const Program& program) {
  std::vector<ExtSuggestion> out;
  for (const auto& unit : program.units) {
    for (const auto& cls : unit.classes) {
      auto emit = [&](ExtRuleId rule, int line, std::string detail) {
        ExtSuggestion s;
        s.rule = rule;
        s.file = unit.fileName;
        s.className = cls.name;
        s.line = line;
        s.detail = std::move(detail);
        out.push_back(std::move(s));
      };

      for (const auto& m : cls.methods) {
        if (!m.body) continue;

        // Loop-scoped rules.
        forEachLoop(*m.body, [&](const Stmt& loop) {
          const Stmt& body = *loop.thenStmt;
          // Rule 1: a try directly inside the loop.
          walkStmt(
              body,
              [&](const Stmt& s) {
                if (s.kind == StmtKind::kTry) {
                  emit(ExtRuleId::kTryInLoop, s.line,
                       "try entered every iteration of the loop at line " +
                           std::to_string(loop.line));
                }
              },
              [](const Expr&) {});
          // Rules 2+3: boxing / allocation inside the loop.
          walkStmt(
              body,
              [&](const Stmt& s) {
                if (s.kind == StmtKind::kVarDecl &&
                    s.declType.arrayDims == 0 &&
                    s.declType.prim == jlang::Prim::kClass &&
                    isWrapperName(s.declType.className)) {
                  emit(ExtRuleId::kBoxingInLoop, s.line,
                       s.declType.className + " '" + s.declName +
                           "' boxed per iteration");
                }
              },
              [&](const Expr& e) {
                if (e.kind == ExprKind::kCall && e.strValue == "valueOf" &&
                    e.a && e.a->kind == ExprKind::kVarRef &&
                    isWrapperName(e.a->strValue)) {
                  emit(ExtRuleId::kBoxingInLoop, e.line,
                       e.a->strValue + ".valueOf per iteration");
                }
                if (e.kind == ExprKind::kNew) {
                  emit(ExtRuleId::kAllocationInLoop, e.line,
                       "new " + e.strValue + " per iteration");
                }
              });
          // Rule 4: length() in the loop condition.
          if (loop.cond) {
            walkExpr(*loop.cond, [&](const Expr& e) {
              if (e.kind == ExprKind::kCall && e.strValue == "length" &&
                  e.a != nullptr) {
                emit(ExtRuleId::kLengthInLoopCond, e.line,
                     "length() evaluated on every test");
              }
            });
          }
        });

        // Rule 5: same instance field read 3+ times in the method.
        std::unordered_set<std::string> fieldNames;
        for (const auto& f : cls.fields) {
          if (!f.isStatic) fieldNames.insert(f.name);
        }
        std::unordered_set<std::string> locals;
        for (const auto& p : m.params) locals.insert(p.name);
        walkStmt(
            *m.body,
            [&](const Stmt& s) {
              if (s.kind == StmtKind::kVarDecl) locals.insert(s.declName);
            },
            [](const Expr&) {});
        std::unordered_map<std::string, int> reads;
        walkStmt(
            *m.body, [](const Stmt&) {},
            [&](const Expr& e) {
              if (e.kind == ExprKind::kVarRef &&
                  fieldNames.count(e.strValue) != 0 &&
                  locals.count(e.strValue) == 0) {
                ++reads[e.strValue];
              }
            });
        for (const auto& [name, count] : reads) {
          if (count >= 3) {
            emit(ExtRuleId::kRepeatedFieldAccess, m.line,
                 "field '" + name + "' read " + std::to_string(count) +
                     " times in " + m.name);
          }
        }
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Safe rewrites.

namespace {

class ExtRewriter {
 public:
  ExtRewriter(CompilationUnit& unit, std::vector<ExtChange>* changes)
      : unit_(unit), changes_(changes) {}

  void run() {
    for (auto& cls : unit_.classes) {
      cls_ = &cls;
      for (auto& m : cls.methods) {
        if (!m.body) continue;
        hoistLengthCalls(m);
        cacheHotFields(m);
      }
    }
  }

 private:
  void record(ExtRuleId rule, int line, std::string description) {
    changes_->push_back(
        ExtChange{rule, cls_->name, line, std::move(description)});
  }

  static bool varWrittenIn(const Stmt& root, const std::string& name) {
    bool written = false;
    walkStmt(
        root, [](const Stmt&) {},
        [&](const Expr& e) {
          if (e.kind == ExprKind::kAssign &&
              e.a->kind == ExprKind::kVarRef && e.a->strValue == name) {
            written = true;
          }
        });
    return written;
  }

  static bool containsCalls(const Stmt& root) {
    bool found = false;
    walkStmt(
        root, [](const Stmt&) {},
        [&](const Expr& e) {
          if (e.kind == ExprKind::kCall || e.kind == ExprKind::kNew) {
            found = true;
          }
        });
    return found;
  }

  /// for (...; i < s.length(); ...) with s a plain variable never written
  /// inside the loop -> hoist into `int __len_s = s.length();`.
  void hoistLengthCalls(MethodDecl& m) {
    rewriteBlockList(m.body->body);
  }

  void rewriteBlockList(std::vector<StmtPtr>& stmts) {
    std::vector<StmtPtr> out;
    out.reserve(stmts.size());
    for (auto& sp : stmts) {
      // Recurse first so inner loops hoist into their own blocks.
      recurseChildren(*sp);

      if (sp->kind == StmtKind::kFor && sp->cond) {
        // Find `X.length()` with X a VarRef in the condition.
        Expr* lengthCall = nullptr;
        std::function<void(Expr&)> find = [&](Expr& e) {
          if (e.kind == ExprKind::kCall && e.strValue == "length" && e.a &&
              e.a->kind == ExprKind::kVarRef && e.args.empty()) {
            lengthCall = &e;
          }
          if (e.a) find(*e.a);
          if (e.b) find(*e.b);
          if (e.c) find(*e.c);
          for (auto& arg : e.args) find(*arg);
        };
        find(*sp->cond);
        if (lengthCall != nullptr) {
          const std::string target = lengthCall->a->strValue;
          if (!varWrittenIn(*sp, target)) {
            const std::string local = "__len_" + target;
            record(ExtRuleId::kLengthInLoopCond, sp->line,
                   "hoisted " + target + ".length() into " + local);
            // int __len_x = x.length();
            auto decl = std::make_unique<Stmt>(StmtKind::kVarDecl);
            decl->line = sp->line;
            decl->declType = TypeRef::scalar(jlang::Prim::kInt);
            decl->declName = local;
            auto call = std::make_unique<Expr>(ExprKind::kCall);
            call->line = sp->line;
            call->strValue = "length";
            call->a = std::make_unique<Expr>(ExprKind::kVarRef);
            call->a->strValue = target;
            call->a->line = sp->line;
            decl->init = std::move(call);
            out.push_back(std::move(decl));
            // Replace the call node with the local read.
            lengthCall->kind = ExprKind::kVarRef;
            lengthCall->strValue = local;
            lengthCall->a.reset();
          }
        }
      }
      out.push_back(std::move(sp));
    }
    stmts = std::move(out);
  }

  void recurseChildren(Stmt& s) {
    if (s.kind == StmtKind::kBlock) {
      rewriteBlockList(s.body);
      return;
    }
    if (s.thenStmt) recurseChildren(*s.thenStmt);
    if (s.elseStmt) recurseChildren(*s.elseStmt);
    if (s.tryBlock) recurseChildren(*s.tryBlock);
    for (auto& c : s.catches) recurseChildren(*c.body);
    if (s.finallyBlock) recurseChildren(*s.finallyBlock);
    for (auto& c : s.cases) rewriteBlockList(c.body);
  }

  /// Cache an instance field read 3+ times when the method never writes it
  /// and performs no calls (calls could write the field through `this`).
  void cacheHotFields(MethodDecl& m) {
    if (m.isStatic || containsCalls(*m.body)) return;

    std::unordered_map<std::string, const jlang::FieldDecl*> fields;
    for (const auto& f : cls_->fields) {
      if (!f.isStatic && f.type.arrayDims == 0 &&
          f.type.prim != jlang::Prim::kClass) {
        fields.emplace(f.name, &f);
      }
    }
    std::unordered_set<std::string> shadowed;
    for (const auto& p : m.params) shadowed.insert(p.name);
    walkStmt(
        *m.body,
        [&](const Stmt& s) {
          if (s.kind == StmtKind::kVarDecl) shadowed.insert(s.declName);
        },
        [](const Expr&) {});

    std::unordered_map<std::string, int> reads;
    walkStmt(
        *m.body, [](const Stmt&) {},
        [&](const Expr& e) {
          if (e.kind == ExprKind::kVarRef && fields.count(e.strValue) != 0 &&
              shadowed.count(e.strValue) == 0) {
            ++reads[e.strValue];
          }
        });

    std::vector<StmtPtr> prologue;
    for (const auto& [name, count] : reads) {
      if (count < 3 || varWrittenIn(*m.body, name)) continue;
      const std::string local = "__field_" + name;
      record(ExtRuleId::kRepeatedFieldAccess, m.line,
             "cached field '" + name + "' (" + std::to_string(count) +
                 " reads) in " + m.name);
      auto decl = std::make_unique<Stmt>(StmtKind::kVarDecl);
      decl->line = m.line;
      decl->declType = fields.at(name)->type;
      decl->declName = local;
      decl->init = std::make_unique<Expr>(ExprKind::kVarRef);
      decl->init->strValue = name;
      decl->init->line = m.line;
      prologue.push_back(std::move(decl));

      // Replace the reads.
      std::function<void(Expr&)> fix = [&](Expr& e) {
        if (e.kind == ExprKind::kVarRef && e.strValue == name) {
          e.strValue = local;
        }
        if (e.a) fix(*e.a);
        if (e.b) fix(*e.b);
        if (e.c) fix(*e.c);
        for (auto& arg : e.args) fix(*arg);
      };
      std::function<void(Stmt&)> walk = [&](Stmt& st) {
        if (st.init) fix(*st.init);
        if (st.expr) fix(*st.expr);
        if (st.cond) fix(*st.cond);
        for (auto& u : st.update) fix(*u);
        for (auto& child : st.body) walk(*child);
        if (st.thenStmt) walk(*st.thenStmt);
        if (st.elseStmt) walk(*st.elseStmt);
        if (st.tryBlock) walk(*st.tryBlock);
        for (auto& c : st.catches) walk(*c.body);
        if (st.finallyBlock) walk(*st.finallyBlock);
        for (auto& c : st.cases) {
          for (auto& child : c.body) walk(*child);
        }
      };
      walk(*m.body);
    }
    for (auto it = prologue.rbegin(); it != prologue.rend(); ++it) {
      m.body->body.insert(m.body->body.begin(), std::move(*it));
    }
  }

  CompilationUnit& unit_;
  std::vector<ExtChange>* changes_;
  const ClassDecl* cls_ = nullptr;
};

}  // namespace

ExtOptimizeResult optimizeExtensions(const Program& program) {
  ExtOptimizeResult result;
  result.program = jlang::cloneProgram(program);
  for (auto& unit : result.program.units) {
    ExtRewriter(unit, &result.changes).run();
  }
  return result;
}

}  // namespace jepo::core
