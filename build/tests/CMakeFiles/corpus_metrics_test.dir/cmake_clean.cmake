file(REMOVE_RECURSE
  "CMakeFiles/corpus_metrics_test.dir/corpus_metrics_test.cpp.o"
  "CMakeFiles/corpus_metrics_test.dir/corpus_metrics_test.cpp.o.d"
  "corpus_metrics_test"
  "corpus_metrics_test.pdb"
  "corpus_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
