#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>

#include <chrono>
#include <thread>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "support/watchdog.hpp"

namespace jepo {
namespace {

// ---------------------------------------------------------------- strings

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Strings, TrimStripsBothEnds) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(startsWith("foobar", "foo"));
  EXPECT_FALSE(startsWith("fo", "foo"));
  EXPECT_TRUE(endsWith("foo.mjava", ".mjava"));
  EXPECT_FALSE(endsWith("mjava", ".mjava"));
  EXPECT_TRUE(startsWith("x", ""));
  EXPECT_TRUE(endsWith("x", ""));
}

TEST(Strings, JoinRoundTripsSplit) {
  const std::vector<std::string> parts = {"a", "bb", "", "c"};
  EXPECT_EQ(split(join(parts, ";"), ';'), parts);
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replaceAll("a%b%c", "%", "%%"), "a%%b%%c");
  EXPECT_EQ(replaceAll("aaa", "aa", "b"), "ba");  // non-overlapping, greedy
  EXPECT_EQ(replaceAll("none", "x", "y"), "none");
  EXPECT_THROW(replaceAll("x", "", "y"), PreconditionError);
}

TEST(Strings, Padding) {
  EXPECT_EQ(padRight("ab", 4), "ab  ");
  EXPECT_EQ(padLeft("ab", 4), "  ab");
  EXPECT_EQ(padRight("abcd", 2), "abcd");  // never truncates
  EXPECT_EQ(padLeft("abcd", 2), "abcd");
}

TEST(Strings, FixedFormatting) {
  EXPECT_EQ(fixed(14.456, 2), "14.46");
  EXPECT_EQ(fixed(0.0, 2), "0.00");
  EXPECT_EQ(fixed(-1.005, 1), "-1.0");
  EXPECT_THROW(fixed(1.0, -1), PreconditionError);
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(withCommas(0), "0");
  EXPECT_EQ(withCommas(999), "999");
  EXPECT_EQ(withCommas(1000), "1,000");
  EXPECT_EQ(withCommas(101172), "101,172");
  EXPECT_EQ(withCommas(539383), "539,383");
  EXPECT_EQ(withCommas(-1234567), "-1,234,567");
}

TEST(Strings, CountLines) {
  EXPECT_EQ(countLines(""), 0u);
  EXPECT_EQ(countLines("one"), 1u);
  EXPECT_EQ(countLines("one\n"), 1u);
  EXPECT_EQ(countLines("one\ntwo"), 2u);
  EXPECT_EQ(countLines("one\ntwo\n"), 2u);
}

// ------------------------------------------------------------------ rng

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.nextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowCoversRangeUniformly) {
  Rng rng(11);
  std::array<int, 10> hist{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++hist[rng.nextBelow(10)];
  for (int h : hist) {
    EXPECT_GT(h, n / 10 - n / 50);
    EXPECT_LT(h, n / 10 + n / 50);
  }
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.nextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values occur
  EXPECT_EQ(rng.nextInt(5, 5), 5);
  EXPECT_THROW(rng.nextInt(2, 1), PreconditionError);
}

TEST(Rng, GaussianMoments) {
  Rng rng(99);
  const int n = 200000;
  double sum = 0.0;
  double sumSq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.nextGaussian();
    sum += g;
    sumSq += g * g;
  }
  const double mean = sum / n;
  const double var = sumSq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, DeriveSeedIsAPureFunctionOfCoordinates) {
  EXPECT_EQ(deriveSeed(2020, 3, 1, 7), deriveSeed(2020, 3, 1, 7));
  // Each coordinate matters independently.
  EXPECT_NE(deriveSeed(2020, 3, 1, 7), deriveSeed(2021, 3, 1, 7));
  EXPECT_NE(deriveSeed(2020, 3, 1, 7), deriveSeed(2020, 4, 1, 7));
  EXPECT_NE(deriveSeed(2020, 3, 1, 7), deriveSeed(2020, 3, 0, 7));
  EXPECT_NE(deriveSeed(2020, 3, 1, 7), deriveSeed(2020, 3, 1, 8));
  // Coordinates do not alias (swapping adjacent coordinates changes the
  // stream — a plain XOR of the raw values would collide here).
  EXPECT_NE(deriveSeed(2020, 1, 3, 7), deriveSeed(2020, 3, 1, 7));
}

TEST(Rng, DeriveSeedStreamsAreStatisticallyIndependent) {
  // Adjacent run indices must land in unrelated streams: count matching
  // outputs between consecutive-seed generators.
  int same = 0;
  for (std::uint64_t run = 0; run < 64; ++run) {
    Rng a(deriveSeed(2020, 2, 1, run));
    Rng b(deriveSeed(2020, 2, 1, run + 1));
    same += (a() == b());
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitStreamsAreIndependentOfParentUse) {
  Rng parent1(5);
  Rng child1 = parent1.split();
  Rng parent2(5);
  Rng child2 = parent2.split();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(child1(), child2());
}

// ---------------------------------------------------------------- table

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"Name", "Value"}, {Align::kLeft, Align::kRight});
  t.addRow({"alpha", "1"});
  t.addRow({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Name  | Value"), std::string::npos);
  EXPECT_NE(out.find("alpha |     1"), std::string::npos);
  EXPECT_NE(out.find("b     |    22"), std::string::npos);
  EXPECT_NE(out.find("------+------"), std::string::npos);
}

TEST(TextTable, HandlesRaggedRowsAndTitle) {
  TextTable t({"A", "B", "C"});
  t.setTitle("Title");
  t.addRow({"x"});
  const std::string out = t.render();
  EXPECT_EQ(out.substr(0, 6), "Title\n");
  EXPECT_EQ(t.rowCount(), 1u);
}

// ------------------------------------------------------------ thread pool

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<int> hit(1000, 0);
  parallelFor(pool, hit.size(), [&](std::size_t i) { hit[i] = 1; });
  EXPECT_EQ(std::accumulate(hit.begin(), hit.end(), 0), 1000);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallelFor(pool, 8,
                  [](std::size_t i) {
                    if (i == 3) throw Error("boom");
                  }),
      Error);
}

TEST(ThreadPool, ZeroTasksIsANoop) {
  ThreadPool pool(2);
  parallelFor(pool, 0, [](std::size_t) { FAIL(); });
}

// Regression: parallelFor used to rethrow on the FIRST failed future while
// later tasks were still queued — those tasks then invoked the by-reference
// `body` after it went out of scope (use-after-scope, caught by TSan/ASan).
// The fix drains every future first; this asserts the drain by counting.
TEST(ThreadPool, ParallelForRunsEveryTaskBeforeRethrowing) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  // The throwing task is early in the batch so plenty of tasks are still
  // queued when the exception is captured.
  auto runOnce = [&] {
    parallelFor(pool, 64, [&completed](std::size_t i) {
      if (i == 1) throw Error("mid-batch boom");
      ++completed;
    });
  };
  EXPECT_THROW(runOnce(), Error);
  // Every non-throwing task ran to completion before parallelFor returned;
  // none of them can touch a dangling body afterwards.
  EXPECT_EQ(completed.load(), 63);
}

TEST(ThreadPool, ParallelForRethrowsFirstExceptionInIndexOrder) {
  ThreadPool pool(4);
  try {
    parallelFor(pool, 16, [](std::size_t i) {
      if (i == 3) throw Error("three");
      if (i == 11) throw Error("eleven");
    });
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("three"), std::string::npos);
  }
}

TEST(ThreadPool, SubmitBatchRunsEveryTask) {
  ThreadPool pool(3);
  std::atomic<int> sum{0};
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 40; ++i) {
    tasks.push_back([i, &sum] {
      ++sum;
      return i * i;
    });
  }
  auto futures = pool.submitBatch(std::move(tasks));
  ASSERT_EQ(futures.size(), 40u);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(futures[i].get(), i * i);
  EXPECT_EQ(sum.load(), 40);
}

TEST(ThreadPool, BoundedQueueCompletesAllWorkUnderBackpressure) {
  // Queue bound far below the task count: producers must block and resume
  // as workers drain. Everything still completes exactly once.
  ThreadPool pool(2, /*maxQueue=*/4);
  std::atomic<int> count{0};
  parallelFor(pool, 200, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 200);

  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 100; ++i) tasks.push_back([&count] { return ++count; });
  for (auto& f : pool.submitBatch(std::move(tasks))) f.get();
  EXPECT_EQ(count.load(), 300);
}

TEST(ParallelConfig, ResolvesThreadCounts) {
  EXPECT_TRUE(ParallelConfig{1}.serial());
  EXPECT_FALSE(ParallelConfig{0}.serial());
  EXPECT_FALSE(ParallelConfig{8}.serial());
  EXPECT_EQ(ParallelConfig{8}.resolvedThreads(), 8u);
  EXPECT_GE(ParallelConfig{0}.resolvedThreads(), 1u);
}

TEST(ThreadPool, ManyMoreTasksThanThreads) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  parallelFor(pool, 500, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 500);
}

// ------------------------------------------------------------- watchdog

TEST(Watchdog, DisabledWatchdogIsInertAndCheap) {
  Watchdog dog(0.0);
  EXPECT_FALSE(dog.enabled());
  {
    auto scope = dog.watch("anything");  // must be a no-op, not a crash
  }
  EXPECT_TRUE(dog.flagged().empty());
}

TEST(Watchdog, FastTasksAreNeverFlagged) {
  Watchdog dog(30.0);
  EXPECT_TRUE(dog.enabled());
  for (int i = 0; i < 20; ++i) {
    auto scope = dog.watch("quick task");
  }
  EXPECT_TRUE(dog.flagged().empty());
}

TEST(Watchdog, SlowTaskIsFlaggedByLabelButNotCancelled) {
  // 50 ms deadline, 200 ms "task": the monitor (scanning at deadline/4)
  // must flag it while the scope is still alive — telemetry only, the
  // task itself runs to completion.
  Watchdog dog(0.05);
  bool finished = false;
  {
    auto scope = dog.watch("slow measure #3");
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    finished = true;
  }
  EXPECT_TRUE(finished);
  const std::vector<std::string> flagged = dog.flagged();
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0], "slow measure #3");
}

TEST(Watchdog, ScopeIsMovableAndFlagsOncePerTask) {
  Watchdog dog(0.05);
  {
    auto outer = dog.watch("moved scope");
    auto inner = std::move(outer);  // job handed to a worker thread
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  EXPECT_EQ(dog.flagged().size(), 1u);
}

// ---------------------------------------------------------------- error

TEST(Error, RequireThrowsWithContext) {
  try {
    JEPO_REQUIRE(1 == 2, "math is broken");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("math is broken"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Error, ParseErrorCarriesLocation) {
  ParseError e("bad token", 12, 7);
  EXPECT_EQ(e.line(), 12);
  EXPECT_EQ(e.col(), 7);
  EXPECT_NE(std::string(e.what()).find("12:7"), std::string::npos);
}

}  // namespace
}  // namespace jepo
