// Hand-written MiniJava lexer. Produces the whole token stream eagerly;
// source files in this repository are small enough that simplicity wins.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "jlang/token.hpp"

namespace jepo::jlang {

class Lexer {
 public:
  explicit Lexer(std::string_view source);

  /// Tokenize to EOF; throws ParseError on malformed input. The returned
  /// vector always ends with a kEof token.
  std::vector<Token> tokenize();

 private:
  bool atEnd() const noexcept { return pos_ >= src_.size(); }
  char peek(std::size_t ahead = 0) const noexcept;
  char advance() noexcept;
  bool match(char expected) noexcept;

  void skipWhitespaceAndComments();
  Token makeToken(Tok type) const;
  Token lexNumber();
  Token lexIdentifierOrKeyword();
  Token lexString();
  Token lexChar();
  [[noreturn]] void fail(const std::string& msg) const;

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  int tokLine_ = 1;
  int tokCol_ = 1;
};

}  // namespace jepo::jlang
