// A small work-stealing-free thread pool plus a parallelFor helper.
//
// Cross-validation folds, forest tree growth and benchmark sweeps are
// embarrassingly parallel; following the HPC guides the parallelism is
// explicit — callers decide what is parallel and the pool only schedules.
// Determinism note: callers must give each task its own RNG stream (Rng::
// split or deriveSeed) and write to disjoint output slots, so results are
// independent of scheduling order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/registry.hpp"
#include "support/error.hpp"

namespace jepo {

/// How a caller asks for parallelism. `threads == 0` means "one thread per
/// hardware core"; `threads == 1` means strictly serial (no pool is built,
/// so single-threaded callers pay nothing). Experiment configs embed this
/// knob; the determinism contract is that results are identical for every
/// value of `threads`.
struct ParallelConfig {
  std::size_t threads = 1;

  bool serial() const noexcept { return threads == 1; }

  /// The worker count a ThreadPool built from this config will have.
  std::size_t resolvedThreads() const noexcept {
    if (threads != 0) return threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }
};

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1). `maxQueue`
  /// bounds the pending-task queue: submit() blocks while the queue is
  /// full, giving natural backpressure when a producer enqueues faster
  /// than the workers drain (0 = unbounded).
  explicit ThreadPool(std::size_t threads = 0, std::size_t maxQueue = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threadCount() const noexcept { return workers_.size(); }

  /// Enqueue a task; the future reports its result or exception. Blocks
  /// while a bounded queue is full.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::unique_lock lock(mu_);
      waitForSpace(lock);
      JEPO_REQUIRE(!stopping_, "submit on a stopped ThreadPool");
      queue_.emplace_back([task] { (*task)(); });
      queueDepth_->set(static_cast<std::int64_t>(queue_.size()));
    }
    cv_.notify_one();
    return fut;
  }

  /// Enqueue a batch of homogeneous tasks under one lock and wake every
  /// worker once — cheaper than n submit() calls for large fan-outs and
  /// the batch lands in the queue contiguously, so a bounded queue admits
  /// it in chunks rather than interleaving with other producers.
  template <typename F>
  auto submitBatch(std::vector<F> tasks)
      -> std::vector<std::future<std::invoke_result_t<F>>> {
    using R = std::invoke_result_t<F>;
    std::vector<std::future<R>> futures;
    futures.reserve(tasks.size());
    std::size_t enqueued = 0;
    while (enqueued < tasks.size()) {
      std::unique_lock lock(mu_);
      waitForSpace(lock);
      JEPO_REQUIRE(!stopping_, "submitBatch on a stopped ThreadPool");
      // Fill whatever space the bound leaves (everything if unbounded).
      do {
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::move(tasks[enqueued]));
        futures.push_back(task->get_future());
        queue_.emplace_back([task] { (*task)(); });
        ++enqueued;
      } while (enqueued < tasks.size() &&
               (maxQueue_ == 0 || queue_.size() < maxQueue_));
      queueDepth_->set(static_cast<std::int64_t>(queue_.size()));
      lock.unlock();
      cv_.notify_all();
    }
    return futures;
  }

 private:
  void workerLoop();

  /// Pre: lock held. Blocks until the bounded queue has space (no-op when
  /// unbounded or stopping). Each blocking visit counts one backpressure
  /// event in the obs registry.
  void waitForSpace(std::unique_lock<std::mutex>& lock) {
    if (maxQueue_ == 0) return;
    if (!stopping_ && queue_.size() >= maxQueue_) backpressure_->add();
    spaceCv_.wait(lock, [this] {
      return stopping_ || queue_.size() < maxQueue_;
    });
  }

  std::mutex mu_;
  std::condition_variable cv_;       // workers wait for tasks
  std::condition_variable spaceCv_;  // producers wait for queue space
  std::deque<std::function<void()>> queue_;
  std::size_t maxQueue_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  // Obs instruments, resolved once at construction (the registry lookup
  // takes a shard mutex; the instruments themselves are lock-free).
  // Counters/gauges are coarse (per task, not per op) and stay on
  // unconditionally; task *spans* are gated on obs::enabled().
  obs::Counter* tasks_ = nullptr;
  obs::Counter* backpressure_ = nullptr;
  obs::Gauge* queueDepth_ = nullptr;
};

/// Run body(i) for i in [0, n), spread over the pool. Waits for ALL tasks
/// to finish (success or failure) before returning, then rethrows the
/// first exception in index order — so `body` (captured by reference) is
/// never invoked after parallelFor returns. Safe to call with n == 0.
void parallelFor(ThreadPool& pool, std::size_t n,
                 const std::function<void(std::size_t)>& body);

}  // namespace jepo
