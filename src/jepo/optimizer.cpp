#include "jepo/optimizer.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

#include "jepo/engine.hpp"
#include "jepo/walk.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "support/strings.hpp"

namespace jepo::core {

using jlang::AssignOp;
using jlang::BinOp;
using jlang::ClassDecl;
using jlang::CompilationUnit;
using jlang::Expr;
using jlang::ExprKind;
using jlang::ExprPtr;
using jlang::FieldDecl;
using jlang::MethodDecl;
using jlang::Prim;
using jlang::Program;
using jlang::Stmt;
using jlang::StmtKind;
using jlang::StmtPtr;
using jlang::TypeRef;
using jlang::UnOp;

namespace {

// ------------------------------------------------------------ small utils

ExprPtr makeVarRef(const std::string& name, int line) {
  auto e = std::make_unique<Expr>(ExprKind::kVarRef);
  e->strValue = name;
  e->line = line;
  return e;
}


bool isIntLit(const Expr& e, std::int64_t v) {
  return e.kind == ExprKind::kIntLit && e.intValue == v;
}


/// Is `++v` / `v += k` / `v *= k` ever applied to this variable anywhere in
/// the statement tree? (Gate for byte/short→int: overflow points differ.)
bool varHasArithmeticUpdates(const Stmt& root, const std::string& name) {
  bool found = false;
  walkStmt(
      root, [](const Stmt&) {},
      [&](const Expr& e) {
        if (e.kind == ExprKind::kAssign && e.assignOp != AssignOp::kSet &&
            e.a->kind == ExprKind::kVarRef && e.a->strValue == name) {
          found = true;
        }
        if (e.kind == ExprKind::kUnary &&
            (e.unOp == UnOp::kPreInc || e.unOp == UnOp::kPreDec ||
             e.unOp == UnOp::kPostInc || e.unOp == UnOp::kPostDec) &&
            e.a->kind == ExprKind::kVarRef && e.a->strValue == name) {
          found = true;
        }
      });
  return found;
}

/// Is the variable reassigned at all (beyond its declaration)?
bool varIsReassigned(const Stmt& root, const std::string& name) {
  bool found = false;
  walkStmt(
      root, [](const Stmt&) {},
      [&](const Expr& e) {
        if (e.kind == ExprKind::kAssign && e.a->kind == ExprKind::kVarRef &&
            e.a->strValue == name) {
          found = true;
        }
        if (e.kind == ExprKind::kUnary &&
            (e.unOp == UnOp::kPreInc || e.unOp == UnOp::kPreDec ||
             e.unOp == UnOp::kPostInc || e.unOp == UnOp::kPostDec) &&
            e.a->kind == ExprKind::kVarRef && e.a->strValue == name) {
          found = true;
        }
      });
  return found;
}

}  // namespace

bool scientificRespell(double value, std::string* out) {
  if (!std::isfinite(value) || value == 0.0) return false;
  // Candidate spellings with increasing mantissa precision; take the first
  // that round-trips to the identical double.
  for (int prec = 0; prec <= 17; ++prec) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*e", prec, value);
    if (std::strtod(buf, nullptr) != value) continue;
    // Canonicalize: "1e+04" -> "1e4", "1.250000e+03" already trimmed by
    // precision search.
    std::string s = buf;
    const auto epos = s.find('e');
    JEPO_ASSERT(epos != std::string::npos);
    std::string mant = s.substr(0, epos);
    std::string exp = s.substr(epos + 1);
    // Trim trailing zeros in the mantissa fraction.
    if (mant.find('.') != std::string::npos) {
      while (mant.back() == '0') mant.pop_back();
      if (mant.back() == '.') mant.pop_back();
    }
    bool negExp = false;
    std::size_t i = 0;
    if (exp[i] == '+') {
      ++i;
    } else if (exp[i] == '-') {
      negExp = true;
      ++i;
    }
    while (i + 1 < exp.size() && exp[i] == '0') ++i;
    *out = mant + "e" + (negExp ? "-" : "") + exp.substr(i);
    return true;
  }
  return false;
}

namespace {

// ---------------------------------------------------------------------------
// Per-program context: which static fields are read-only (never assigned
// outside their initializer) — the gate for the static-caching rewrite.

struct StaticInfo {
  // "Class.field" -> declared type, for read-only static fields.
  std::unordered_map<std::string, TypeRef> readOnlyStatics;
};

StaticInfo collectStaticInfo(const Program& program) {
  StaticInfo info;
  std::unordered_set<std::string> assigned;

  auto noteAssignTarget = [&](const Expr& target, const ClassDecl& cls) {
    if (target.kind == ExprKind::kVarRef) {
      // Could resolve to a static of the enclosing class.
      assigned.insert(cls.name + "." + target.strValue);
    } else if (target.kind == ExprKind::kFieldAccess &&
               target.a->kind == ExprKind::kVarRef) {
      assigned.insert(target.a->strValue + "." + target.strValue);
    }
  };

  for (const auto& unit : program.units) {
    for (const auto& cls : unit.classes) {
      for (const auto& m : cls.methods) {
        if (!m.body) continue;
        walkStmt(
            *m.body, [](const Stmt&) {},
            [&](const Expr& e) {
              if (e.kind == ExprKind::kAssign) noteAssignTarget(*e.a, cls);
              if (e.kind == ExprKind::kUnary &&
                  (e.unOp == UnOp::kPreInc || e.unOp == UnOp::kPreDec ||
                   e.unOp == UnOp::kPostInc || e.unOp == UnOp::kPostDec)) {
                noteAssignTarget(*e.a, cls);
              }
            });
      }
    }
  }
  for (const auto& unit : program.units) {
    for (const auto& cls : unit.classes) {
      for (const auto& f : cls.fields) {
        if (!f.isStatic) continue;
        const std::string key = cls.name + "." + f.name;
        if (assigned.count(key) == 0 && f.type.arrayDims == 0 &&
            f.type.prim != Prim::kClass) {
          info.readOnlyStatics.emplace(key, f.type);
        }
      }
    }
  }
  return info;
}

// ---------------------------------------------------------------------------
// The per-unit rewriter.

class UnitRewriter {
 public:
  UnitRewriter(const OptimizerOptions& options, const StaticInfo& statics,
               CompilationUnit& unit, std::vector<ChangeRecord>* changes)
      : options_(options), statics_(statics), unit_(unit), changes_(changes) {}

  void run() {
    for (auto& cls : unit_.classes) rewriteClass(cls);
  }

 private:
  bool on(RuleId rule) const {
    return options_.enabled[static_cast<int>(rule)];
  }

  void record(RuleId rule, int line, std::string description) {
    ChangeRecord c;
    c.rule = rule;
    c.file = unit_.fileName;
    c.className = currentClass_->name;
    c.line = line;
    c.description = std::move(description);
    changes_->push_back(std::move(c));
  }

  // ---------------------------------------------------------- type edits

  /// byte/short → int is exact unless the variable relies on narrow-width
  /// wraparound via ++/compound assignment. long→int / double→float are
  /// gated by allowLossyNarrowing (paper mode).
  bool narrowType(TypeRef* t, const std::string& name, int line,
                  bool hasArithmeticUpdates, bool isReassigned) {
    if (!on(RuleId::kPrimitiveDataType) || t->arrayDims != 0) return false;
    if ((t->prim == Prim::kByte || t->prim == Prim::kShort) &&
        !hasArithmeticUpdates) {
      record(RuleId::kPrimitiveDataType, line,
             jlang::typeName(*t) + " '" + name + "' -> int");
      t->prim = Prim::kInt;
      return true;
    }
    if (t->prim == Prim::kLong) {
      if (options_.allowLossyNarrowing ||
          (!isReassigned && !hasArithmeticUpdates)) {
        record(RuleId::kPrimitiveDataType, line,
               "long '" + name + "' -> int");
        t->prim = Prim::kInt;
        return true;
      }
    }
    if (t->prim == Prim::kDouble && options_.allowLossyNarrowing) {
      record(RuleId::kPrimitiveDataType, line,
             "double '" + name + "' -> float");
      t->prim = Prim::kFloat;
      return true;
    }
    return false;
  }

  bool improveWrapper(TypeRef* t, const std::string& name, int line) {
    if (!on(RuleId::kWrapperClass) || t->arrayDims != 0 ||
        t->prim != Prim::kClass) {
      return false;
    }
    const std::string& w = t->className;
    const bool exact = w == "Short" || w == "Byte" || w == "Character";
    const bool lossy = w == "Long" && options_.allowLossyNarrowing;
    if (exact || lossy) {
      record(RuleId::kWrapperClass, line, w + " '" + name + "' -> Integer");
      t->className = "Integer";
      return true;
    }
    return false;
  }

  // ------------------------------------------------------------ literals

  void respellLiterals(Expr& e) {
    walkExprMut(e, [&](Expr& node) {
      if ((node.kind == ExprKind::kDoubleLit ||
           node.kind == ExprKind::kFloatLit) &&
          !node.scientific && on(RuleId::kScientificNotation)) {
        const double mag = std::fabs(node.floatValue);
        if (mag >= 1000.0 || (mag > 0.0 && mag < 0.001)) {
          std::string sci;
          if (scientificRespell(node.floatValue, &sci)) {
            record(RuleId::kScientificNotation, node.line,
                   (node.strValue.empty() ? std::string("literal")
                                          : node.strValue) +
                       " -> " + sci);
            node.strValue = sci;
            node.scientific = true;
          }
        }
      }
    });
  }

  // --------------------------------------------------------- expr rewrites

  static void walkExprMut(Expr& e, const std::function<void(Expr&)>& fn) {
    fn(e);
    if (e.a) walkExprMut(*e.a, fn);
    if (e.b) walkExprMut(*e.b, fn);
    if (e.c) walkExprMut(*e.c, fn);
    for (auto& arg : e.args) walkExprMut(*arg, fn);
  }

  /// x % P  ->  x & (P-1) for canonical non-negative loop counters.
  void rewriteModulus(Expr& e) {
    if (!on(RuleId::kModulusOperator)) return;
    walkExprMut(e, [&](Expr& node) {
      if (node.kind != ExprKind::kBinary || node.binOp != BinOp::kMod) return;
      if (node.a->kind != ExprKind::kVarRef) return;
      if (nonNegativeVars_.count(node.a->strValue) == 0) return;
      if (node.b->kind != ExprKind::kIntLit) return;
      const std::int64_t p = node.b->intValue;
      if (p <= 0 || (p & (p - 1)) != 0) return;
      record(RuleId::kModulusOperator, node.line,
             node.a->strValue + " % " + std::to_string(p) + " -> " +
                 node.a->strValue + " & " + std::to_string(p - 1));
      node.binOp = BinOp::kBitAnd;
      node.b->intValue = p - 1;
    });
  }

  /// Swap pure &&/|| operands when the right side is strictly simpler.
  void reorderShortCircuit(Expr& e) {
    if (!on(RuleId::kShortCircuitOrder)) return;
    walkExprMut(e, [&](Expr& node) {
      if (node.kind != ExprKind::kBinary) return;
      if (node.binOp != BinOp::kAndAnd && node.binOp != BinOp::kOrOr) return;
      if (!isPureExpr(*node.a) || !isPureExpr(*node.b)) return;
      if (exprSize(*node.a) <= exprSize(*node.b) + 1) return;
      record(RuleId::kShortCircuitOrder, node.line,
             "swapped operands of short-circuit operator");
      std::swap(node.a, node.b);
    });
  }

  /// a.compareTo(b) == 0  ->  a.equals(b);   != 0  ->  !a.equals(b)
  void rewriteCompareTo(ExprPtr& e) {
    if (!e) return;
    if (e->kind == ExprKind::kBinary &&
        (e->binOp == BinOp::kEq || e->binOp == BinOp::kNe) &&
        e->a->kind == ExprKind::kCall && e->a->strValue == "compareTo" &&
        e->a->args.size() == 1 && isIntLit(*e->b, 0) &&
        on(RuleId::kStringCompare)) {
      record(RuleId::kStringCompare, e->line, "compareTo(..) == 0 -> equals");
      ExprPtr call = std::move(e->a);
      call->strValue = "equals";
      if (e->binOp == BinOp::kEq) {
        e = std::move(call);
      } else {
        auto notExpr = std::make_unique<Expr>(ExprKind::kUnary);
        notExpr->unOp = UnOp::kNot;
        notExpr->line = e->line;
        notExpr->a = std::move(call);
        e = std::move(notExpr);
      }
    }
    if (!e) return;
    if (e->a) rewriteCompareTo(e->a);
    if (e->b) rewriteCompareTo(e->b);
    if (e->c) rewriteCompareTo(e->c);
    for (auto& arg : e->args) rewriteCompareTo(arg);
  }

  void rewriteAllExprsIn(ExprPtr& e) {
    if (!e) return;
    rewriteCompareTo(e);
    respellLiterals(*e);
    rewriteModulus(*e);
    reorderShortCircuit(*e);
  }

  // --------------------------------------------------------- stmt rewrites

  /// Rewrites a block's statement list in place; returns the new list.
  void rewriteStmtList(std::vector<StmtPtr>& stmts) {
    std::vector<StmtPtr> out;
    out.reserve(stmts.size());
    for (auto& sp : stmts) {
      rewriteStmt(sp, &out);
    }
    stmts = std::move(out);
  }

  /// Rewrite one statement; appends the result (1..3 statements) to out.
  void rewriteStmt(StmtPtr& sp, std::vector<StmtPtr>* out) {
    Stmt& s = *sp;

    // Track non-negative canonical loop counters for the modulus rewrite.
    CanonicalFor cf;
    const bool canonical = matchCanonicalFor(s, &cf);
    const bool nonNegCounter = canonical && cf.init->kind == ExprKind::kIntLit &&
                               cf.init->intValue >= 0;

    switch (s.kind) {
      case StmtKind::kVarDecl: {
        if (s.init) rewriteAllExprsIn(s.init);
        narrowType(&s.declType, s.declName, s.line,
                   varsWithArithmeticUpdates_.count(s.declName) != 0,
                   reassignedVars_.count(s.declName) != 0);
        improveWrapper(&s.declType, s.declName, s.line);
        // int x = c ? a : b;  ->  int x; if (c) x = a; else x = b;
        if (s.init && s.init->kind == ExprKind::kTernary &&
            on(RuleId::kTernaryOperator)) {
          record(RuleId::kTernaryOperator, s.line,
                 "ternary initializer of '" + s.declName + "' -> if-then-else");
          ExprPtr ternary = std::move(s.init);
          out->push_back(std::move(sp));
          out->push_back(
              makeIfAssign(std::move(ternary), s.declName, s.line));
          return;
        }
        break;
      }

      case StmtKind::kExprStmt: {
        rewriteAllExprsIn(s.expr);
        // x = c ? a : b;  ->  if (c) x = a; else x = b;
        if (s.expr->kind == ExprKind::kAssign &&
            s.expr->assignOp == AssignOp::kSet &&
            s.expr->a->kind == ExprKind::kVarRef &&
            s.expr->b->kind == ExprKind::kTernary &&
            on(RuleId::kTernaryOperator)) {
          record(RuleId::kTernaryOperator, s.line,
                 "ternary assignment to '" + s.expr->a->strValue +
                     "' -> if-then-else");
          out->push_back(makeIfAssign(std::move(s.expr->b),
                                      s.expr->a->strValue, s.line));
          return;
        }
        break;
      }

      case StmtKind::kReturn: {
        if (s.expr) rewriteAllExprsIn(s.expr);
        // return c ? a : b;  ->  if (c) return a; else return b;
        if (s.expr && s.expr->kind == ExprKind::kTernary &&
            on(RuleId::kTernaryOperator)) {
          record(RuleId::kTernaryOperator, s.line,
                 "ternary return -> if-then-else");
          Expr& t = *s.expr;
          auto ifStmt = std::make_unique<Stmt>(StmtKind::kIf);
          ifStmt->line = s.line;
          ifStmt->cond = std::move(t.a);
          auto thenRet = std::make_unique<Stmt>(StmtKind::kReturn);
          thenRet->line = s.line;
          thenRet->expr = std::move(t.b);
          auto elseRet = std::make_unique<Stmt>(StmtKind::kReturn);
          elseRet->line = s.line;
          elseRet->expr = std::move(t.c);
          ifStmt->thenStmt = std::move(thenRet);
          ifStmt->elseStmt = std::move(elseRet);
          out->push_back(std::move(ifStmt));
          return;
        }
        break;
      }

      case StmtKind::kFor: {
        for (auto& init : s.body) {
          if (init->init) rewriteAllExprsIn(init->init);
          if (init->expr) rewriteAllExprsIn(init->expr);
        }
        if (s.cond) rewriteAllExprsIn(s.cond);
        for (auto& u : s.update) rewriteAllExprsIn(u);

        // System.arraycopy rewrite for manual copy loops.
        if (canonical && on(RuleId::kArrayCopy)) {
          std::string dst;
          std::string src;
          if (matchManualCopyBody(*cf.body, cf.var, &dst, &src) &&
              isPureExpr(*cf.init) && isPureExpr(*cf.bound)) {
            record(RuleId::kArrayCopy, s.line,
                   "copy loop -> System.arraycopy(" + src + ", " + dst + ")");
            out->push_back(makeArraycopy(cf, src, dst, s.line));
            return;
          }
        }

        // Loop interchange for column-major nests.
        if (canonical && on(RuleId::kArrayTraversal) &&
            tryLoopInterchange(sp, cf, out)) {
          return;
        }

        // StringBuilder extraction for concat-in-loop.
        if (on(RuleId::kStringConcat) &&
            tryBuilderExtraction(sp, out)) {
          return;
        }
        break;
      }

      case StmtKind::kWhile: {
        if (s.cond) rewriteAllExprsIn(s.cond);
        if (on(RuleId::kStringConcat) && tryBuilderExtraction(sp, out)) {
          return;
        }
        break;
      }

      default:
        if (s.expr) rewriteAllExprsIn(s.expr);
        if (s.cond) rewriteAllExprsIn(s.cond);
        break;
    }

    // Recurse into child statements.
    if (nonNegCounter) nonNegativeVars_.insert(cf.var);
    if (!s.body.empty() && s.kind == StmtKind::kBlock) {
      rewriteStmtList(s.body);
    }
    if (s.thenStmt) rewriteChild(s.thenStmt);
    if (s.elseStmt) rewriteChild(s.elseStmt);
    if (s.tryBlock) rewriteChild(s.tryBlock);
    for (auto& c : s.catches) rewriteChild(c.body);
    if (s.finallyBlock) rewriteChild(s.finallyBlock);
    for (auto& c : s.cases) rewriteStmtList(c.body);
    if (nonNegCounter) nonNegativeVars_.erase(cf.var);

    out->push_back(std::move(sp));
  }

  /// Rewrite a single child statement slot (wraps multi-statement results
  /// in a block).
  void rewriteChild(StmtPtr& slot) {
    std::vector<StmtPtr> result;
    rewriteStmt(slot, &result);
    JEPO_ASSERT(!result.empty());
    if (result.size() == 1) {
      slot = std::move(result[0]);
    } else {
      auto block = std::make_unique<Stmt>(StmtKind::kBlock);
      block->line = result[0]->line;
      block->body = std::move(result);
      slot = std::move(block);
    }
  }

  /// if (cond) name = then; else name = otherwise;
  StmtPtr makeIfAssign(ExprPtr ternary, const std::string& name, int line) {
    JEPO_ASSERT(ternary->kind == ExprKind::kTernary);
    auto ifStmt = std::make_unique<Stmt>(StmtKind::kIf);
    ifStmt->line = line;
    ifStmt->cond = std::move(ternary->a);
    auto mkAssign = [&](ExprPtr value) {
      auto assign = std::make_unique<Expr>(ExprKind::kAssign);
      assign->line = line;
      assign->assignOp = AssignOp::kSet;
      assign->a = makeVarRef(name, line);
      assign->b = std::move(value);
      auto stmt = std::make_unique<Stmt>(StmtKind::kExprStmt);
      stmt->line = line;
      stmt->expr = std::move(assign);
      return stmt;
    };
    ifStmt->thenStmt = mkAssign(std::move(ternary->b));
    ifStmt->elseStmt = mkAssign(std::move(ternary->c));
    return ifStmt;
  }

  /// System.arraycopy(src, init, dst, init, bound - init);
  StmtPtr makeArraycopy(const CanonicalFor& cf, const std::string& src,
                        const std::string& dst, int line) {
    auto call = std::make_unique<Expr>(ExprKind::kCall);
    call->line = line;
    call->strValue = "arraycopy";
    call->a = makeVarRef("System", line);
    call->args.push_back(makeVarRef(src, line));
    call->args.push_back(cloneExpr(*cf.init));
    call->args.push_back(makeVarRef(dst, line));
    call->args.push_back(cloneExpr(*cf.init));
    if (isIntLit(*cf.init, 0)) {
      call->args.push_back(cloneExpr(*cf.bound));
    } else {
      auto len = std::make_unique<Expr>(ExprKind::kBinary);
      len->line = line;
      len->binOp = BinOp::kSub;
      len->a = cloneExpr(*cf.bound);
      len->b = cloneExpr(*cf.init);
      call->args.push_back(std::move(len));
    }
    auto stmt = std::make_unique<Stmt>(StmtKind::kExprStmt);
    stmt->line = line;
    stmt->expr = std::move(call);
    return stmt;
  }

  // ------------------------------------------------------ loop interchange

  /// Interchange `for (o) for (i) acc += m[i][o];`-shaped nests so the
  /// first dimension varies slowest. Legal when the body is a single
  /// accumulation into a scalar (`acc += pure`) or a write `m[i][o] = pure`
  /// with a RHS not reading the matrix — both are iteration-order
  /// independent (integer accumulation is exactly associative; FP
  /// accumulation is gated behind allowLossyNarrowing).
  bool tryLoopInterchange(StmtPtr& sp, const CanonicalFor& outer,
                          std::vector<StmtPtr>* out) {
    Stmt& s = *sp;
    // Inner statement (possibly inside a single-statement block).
    Stmt* innerHolder = s.thenStmt.get();
    if (innerHolder->kind == StmtKind::kBlock) {
      if (innerHolder->body.size() != 1) return false;
      innerHolder = innerHolder->body[0].get();
    }
    CanonicalFor inner;
    if (!matchCanonicalFor(*innerHolder, &inner)) return false;
    // Bounds must not depend on either loop variable.
    if (mentionsVar(*outer.bound, inner.var) ||
        mentionsVar(*inner.bound, outer.var) ||
        mentionsVar(*inner.bound, inner.var) ||
        mentionsVar(*outer.bound, outer.var)) {
      return false;
    }
    if (!isIntLit(*outer.init, 0) || !isIntLit(*inner.init, 0)) return false;

    // Body must be a single expression statement.
    const Stmt* body = inner.body;
    if (body->kind == StmtKind::kBlock) {
      if (body->body.size() != 1) return false;
      body = body->body[0].get();
    }
    if (body->kind != StmtKind::kExprStmt) return false;
    const Expr& e = *body->expr;

    // Every 2-D access must be m[inner][outer] (column-major evidence).
    bool sawColumnMajor = false;
    bool sawOther2d = false;
    walkExpr(e, [&](const Expr& node) {
      if (node.kind != ExprKind::kArrayIndex) return;
      if (node.a->kind != ExprKind::kArrayIndex) return;
      const bool colMajor = node.b->kind == ExprKind::kVarRef &&
                            node.b->strValue == outer.var &&
                            node.a->b->kind == ExprKind::kVarRef &&
                            node.a->b->strValue == inner.var;
      (colMajor ? sawColumnMajor : sawOther2d) = true;
    });
    if (!sawColumnMajor || sawOther2d) return false;

    // Shape A: acc += <expr>, acc a plain variable not mentioned in expr.
    bool legal = false;
    if (e.kind == ExprKind::kAssign && e.assignOp == AssignOp::kAdd &&
        e.a->kind == ExprKind::kVarRef && !mentionsVar(*e.b, e.a->strValue)) {
      // Integer accumulation reorders exactly; FP reassociation is lossy.
      legal = true;
      if (!options_.allowLossyNarrowing && !isPureExpr(*e.b)) legal = false;
    }
    // Shape B: m[i][o] = <pure rhs> with rhs not reading the matrix.
    if (e.kind == ExprKind::kAssign && e.assignOp == AssignOp::kSet &&
        e.a->kind == ExprKind::kArrayIndex &&
        e.a->a->kind == ExprKind::kArrayIndex &&
        e.a->a->a->kind == ExprKind::kVarRef) {
      const std::string& matrix = e.a->a->a->strValue;
      if (isPureExpr(*e.b) && !mentionsVar(*e.b, matrix)) legal = true;
    }
    if (!legal) return false;

    record(RuleId::kArrayTraversal, s.line,
           "interchanged loops '" + outer.var + "'/'" + inner.var +
               "' to row-major order");

    // Swap the two loop headers (inits, conds, updates); keep the body.
    Stmt& innerFor = *innerHolder;
    std::swap(s.body, innerFor.body);
    std::swap(s.cond, innerFor.cond);
    std::swap(s.update, innerFor.update);
    out->push_back(std::move(sp));
    return true;
  }

  // --------------------------------------------------- builder extraction

  /// s = s + X inside a loop -> StringBuilder __sbN before the loop,
  /// append(X) inside, s = __sbN.toString() after.
  bool tryBuilderExtraction(StmtPtr& loopStmt, std::vector<StmtPtr>* out) {
    // Find candidate target: collect assignments `v = v + X` / `v += X`
    // where v is a known String variable.
    std::unordered_map<std::string, int> concatCounts;
    std::unordered_map<std::string, int> otherUses;
    walkStmt(
        *loopStmt, [](const Stmt&) {},
        [&](const Expr& e) {
          if (e.kind == ExprKind::kAssign && e.a->kind == ExprKind::kVarRef &&
              stringVars_.count(e.a->strValue) != 0) {
            const std::string& v = e.a->strValue;
            const bool selfConcat =
                (e.assignOp == AssignOp::kAdd &&
                 !mentionsVar(*e.b, v)) ||
                (e.assignOp == AssignOp::kSet &&
                 e.b->kind == ExprKind::kBinary &&
                 e.b->binOp == BinOp::kAdd &&
                 e.b->a->kind == ExprKind::kVarRef && e.b->a->strValue == v &&
                 !mentionsVar(*e.b->b, v));
            if (selfConcat) {
              ++concatCounts[v];
              return;
            }
          }
        });
    // Count *all* VarRef uses; the rewrite needs every use to be part of a
    // self-concat assignment (2 refs per kSet form, 1 per += form).
    std::string target;
    for (const auto& [v, n] : concatCounts) {
      int refs = 0;
      walkStmt(
          *loopStmt, [](const Stmt&) {},
          [&](const Expr& e) {
            if (e.kind == ExprKind::kVarRef && e.strValue == v) ++refs;
          });
      int expected = 0;
      walkStmt(
          *loopStmt, [](const Stmt&) {},
          [&](const Expr& e) {
            if (e.kind == ExprKind::kAssign &&
                e.a->kind == ExprKind::kVarRef && e.a->strValue == v) {
              expected += e.assignOp == AssignOp::kAdd ? 1 : 2;
            }
          });
      // The variable must be declared before the loop — a declaration
      // inside would leave the inserted StringBuilder(target) dangling.
      bool declaredInside = false;
      walkStmt(
          *loopStmt,
          [&](const Stmt& st) {
            if (st.kind == StmtKind::kVarDecl && st.declName == v) {
              declaredInside = true;
            }
          },
          [](const Expr&) {});
      if (refs == expected && n > 0 && !declaredInside) {
        target = v;
        break;
      }
    }
    (void)otherUses;
    if (target.empty()) return false;

    const int line = loopStmt->line;
    const std::string sbName = "__sb" + std::to_string(builderCounter_++);
    record(RuleId::kStringConcat, line,
           "hoisted '" + target + "' concat loop into StringBuilder " + sbName);

    // StringBuilder __sbN = new StringBuilder(target);
    auto decl = std::make_unique<Stmt>(StmtKind::kVarDecl);
    decl->line = line;
    decl->declType = TypeRef::ofClass("StringBuilder");
    decl->declName = sbName;
    auto ctor = std::make_unique<Expr>(ExprKind::kNew);
    ctor->line = line;
    ctor->strValue = "StringBuilder";
    ctor->args.push_back(makeVarRef(target, line));
    decl->init = std::move(ctor);

    // Replace each self-concat with __sbN.append(X).
    replaceConcatWithAppend(*loopStmt, target, sbName);

    // target = __sbN.toString();
    auto final = std::make_unique<Stmt>(StmtKind::kExprStmt);
    final->line = line;
    auto assign = std::make_unique<Expr>(ExprKind::kAssign);
    assign->line = line;
    assign->assignOp = AssignOp::kSet;
    assign->a = makeVarRef(target, line);
    auto toStr = std::make_unique<Expr>(ExprKind::kCall);
    toStr->line = line;
    toStr->strValue = "toString";
    toStr->a = makeVarRef(sbName, line);
    assign->b = std::move(toStr);
    final->expr = std::move(assign);

    out->push_back(std::move(decl));
    out->push_back(std::move(loopStmt));
    out->push_back(std::move(final));
    return true;
  }

  void replaceConcatWithAppend(Stmt& s, const std::string& target,
                               const std::string& sbName) {
    auto rewriteExprSlot = [&](ExprPtr& slot) {
      if (!slot) return;
      Expr& e = *slot;
      if (e.kind == ExprKind::kAssign && e.a->kind == ExprKind::kVarRef &&
          e.a->strValue == target) {
        ExprPtr appended;
        if (e.assignOp == AssignOp::kAdd) {
          appended = std::move(e.b);
        } else if (e.assignOp == AssignOp::kSet &&
                   e.b->kind == ExprKind::kBinary &&
                   e.b->binOp == BinOp::kAdd &&
                   e.b->a->kind == ExprKind::kVarRef &&
                   e.b->a->strValue == target) {
          appended = std::move(e.b->b);
        }
        if (appended) {
          auto call = std::make_unique<Expr>(ExprKind::kCall);
          call->line = e.line;
          call->strValue = "append";
          call->a = makeVarRef(sbName, e.line);
          call->args.push_back(std::move(appended));
          slot = std::move(call);
          return;
        }
      }
    };
    // Walk all statement expression slots.
    std::function<void(Stmt&)> walk = [&](Stmt& st) {
      rewriteExprSlot(st.expr);
      rewriteExprSlot(st.init);
      rewriteExprSlot(st.cond);
      for (auto& u : st.update) rewriteExprSlot(u);
      for (auto& child : st.body) walk(*child);
      if (st.thenStmt) walk(*st.thenStmt);
      if (st.elseStmt) walk(*st.elseStmt);
      if (st.tryBlock) walk(*st.tryBlock);
      for (auto& c : st.catches) walk(*c.body);
      if (st.finallyBlock) walk(*st.finallyBlock);
      for (auto& c : st.cases) {
        for (auto& child : c.body) walk(*child);
      }
    };
    walk(s);
  }

  // ---------------------------------------------------- static caching

  /// Hoist reads of read-only static fields into a method-local copy when a
  /// method reads them repeatedly (JEPO's static-keyword remedy).
  void cacheStatics(MethodDecl& m) {
    if (!on(RuleId::kStaticKeyword) || !m.body) return;
    // Count unqualified reads of each read-only static of this class.
    std::unordered_map<std::string, int> reads;  // field -> count
    walkStmt(
        *m.body, [](const Stmt&) {},
        [&](const Expr& e) {
          if (e.kind == ExprKind::kVarRef) {
            const std::string key = currentClass_->name + "." + e.strValue;
            if (statics_.readOnlyStatics.count(key) != 0) {
              ++reads[e.strValue];
            }
          }
        });
    std::vector<StmtPtr> prologue;
    for (auto& [field, count] : reads) {
      if (count < 2) continue;
      // Skip if a local/param of the same name exists (shadowing).
      bool shadowed = false;
      for (const auto& p : m.params) {
        if (p.name == field) shadowed = true;
      }
      walkStmt(
          *m.body,
          [&](const Stmt& st) {
            if (st.kind == StmtKind::kVarDecl && st.declName == field) {
              shadowed = true;
            }
          },
          [](const Expr&) {});
      if (shadowed) continue;

      const std::string localName = "__cached_" + field;
      const TypeRef type =
          statics_.readOnlyStatics.at(currentClass_->name + "." + field);
      record(RuleId::kStaticKeyword, m.line,
             "cached static '" + field + "' in local (" +
                 std::to_string(count) + " reads) in " + m.name);

      auto decl = std::make_unique<Stmt>(StmtKind::kVarDecl);
      decl->line = m.line;
      decl->declType = type;
      decl->declName = localName;
      decl->init = makeVarRef(field, m.line);
      prologue.push_back(std::move(decl));

      // Replace reads.
      std::function<void(Stmt&)> walk = [&](Stmt& st) {
        auto fix = [&](ExprPtr& slot) {
          if (!slot) return;
          UnitRewriter::walkExprMut(*slot, [&](Expr& e) {
            if (e.kind == ExprKind::kVarRef && e.strValue == field) {
              e.strValue = localName;
            }
          });
        };
        fix(st.expr);
        fix(st.init);
        fix(st.cond);
        for (auto& u : st.update) fix(u);
        for (auto& child : st.body) walk(*child);
        if (st.thenStmt) walk(*st.thenStmt);
        if (st.elseStmt) walk(*st.elseStmt);
        if (st.tryBlock) walk(*st.tryBlock);
        for (auto& c : st.catches) walk(*c.body);
        if (st.finallyBlock) walk(*st.finallyBlock);
        for (auto& c : st.cases) {
          for (auto& child : c.body) walk(*child);
        }
      };
      walk(*m.body);
    }
    if (!prologue.empty()) {
      for (auto it = prologue.rbegin(); it != prologue.rend(); ++it) {
        m.body->body.insert(m.body->body.begin(), std::move(*it));
      }
    }
  }

  // ------------------------------------------------------------- drivers

  void collectStringVars(const MethodDecl& m) {
    stringVars_.clear();
    for (const auto& p : m.params) {
      if (p.type.isClass("String")) stringVars_.insert(p.name);
    }
    if (m.body) {
      walkStmt(
          *m.body,
          [&](const Stmt& st) {
            if (st.kind == StmtKind::kVarDecl &&
                st.declType.isClass("String")) {
              stringVars_.insert(st.declName);
            }
          },
          [](const Expr&) {});
    }
    for (const auto& f : currentClass_->fields) {
      if (f.type.isClass("String")) stringVars_.insert(f.name);
    }
  }

  void rewriteClass(ClassDecl& cls) {
    currentClass_ = &cls;
    for (auto& f : cls.fields) {
      // Field narrowing is gated on no arithmetic updates anywhere in the
      // class (fields escape method scope).
      bool hasUpdates = false;
      bool reassigned = false;
      for (const auto& m : cls.methods) {
        if (!m.body) continue;
        hasUpdates = hasUpdates || varHasArithmeticUpdates(*m.body, f.name);
        reassigned = reassigned || varIsReassigned(*m.body, f.name);
      }
      narrowType(&f.type, f.name, f.line, hasUpdates, reassigned);
      improveWrapper(&f.type, f.name, f.line);
      if (f.init) rewriteAllExprsIn(f.init);
    }
    for (auto& m : cls.methods) {
      // Per-variable facts must be computed BEFORE rewriting: the rewriter
      // moves statements out of the body while it runs.
      varsWithArithmeticUpdates_.clear();
      reassignedVars_.clear();
      if (m.body) {
        walkStmt(
            *m.body, [](const Stmt&) {},
            [&](const Expr& e) {
              const Expr* target = nullptr;
              bool arithmetic = false;
              if (e.kind == ExprKind::kAssign &&
                  e.a->kind == ExprKind::kVarRef) {
                target = e.a.get();
                arithmetic = e.assignOp != AssignOp::kSet;
              } else if (e.kind == ExprKind::kUnary &&
                         (e.unOp == UnOp::kPreInc || e.unOp == UnOp::kPreDec ||
                          e.unOp == UnOp::kPostInc ||
                          e.unOp == UnOp::kPostDec) &&
                         e.a->kind == ExprKind::kVarRef) {
                target = e.a.get();
                arithmetic = true;
              }
              if (target != nullptr) {
                reassignedVars_.insert(target->strValue);
                if (arithmetic) {
                  varsWithArithmeticUpdates_.insert(target->strValue);
                }
              }
            });
      }
      for (auto& p : m.params) {
        narrowType(&p.type, p.name, m.line,
                   varsWithArithmeticUpdates_.count(p.name) != 0,
                   reassignedVars_.count(p.name) != 0);
      }
      if (!m.body) continue;
      collectStringVars(m);
      rewriteStmtList(m.body->body);
      cacheStatics(m);
    }
  }

  const OptimizerOptions& options_;
  const StaticInfo& statics_;
  CompilationUnit& unit_;
  std::vector<ChangeRecord>* changes_;
  const ClassDecl* currentClass_ = nullptr;
  std::unordered_set<std::string> varsWithArithmeticUpdates_;
  std::unordered_set<std::string> reassignedVars_;
  std::unordered_set<std::string> nonNegativeVars_;
  std::unordered_set<std::string> stringVars_;
  int builderCounter_ = 0;
};


}  // namespace

Optimizer::Optimizer(OptimizerOptions options) : options_(std::move(options)) {}

OptimizeResult Optimizer::optimize(const Program& program) const {
  static obs::Counter& changes =
      obs::Registry::global().counter("jepo.changes");
  obs::Span span("jepo.optimize");
  OptimizeResult result;
  const StaticInfo statics = collectStaticInfo(program);
  for (const auto& unit : program.units) {
    CompilationUnit copy = jlang::cloneUnit(unit);
    UnitRewriter(options_, statics, copy, &result.changes).run();
    result.program.units.push_back(std::move(copy));
  }
  changes.add(result.changes.size());
  return result;
}

}  // namespace jepo::core
