// Seeded, deterministic bootstrap confidence intervals — the probabilistic
// layer over the Section VIII multi-run matrix.
//
// "Probabilistic energy profiler for statically typed JVM-based programming
// languages" argues an energy result should be a distribution, not a point:
// the run-to-run matrix the Tukey protocol already collects is exactly the
// empirical distribution to resample. This module turns a metric column of
// that matrix into a percentile-bootstrap confidence interval around the
// reported mean, with two properties the rest of the pipeline relies on:
//
//   Determinism.  Resample r draws every index from Rng(deriveSeed(seed, r))
//   — the same ordinal-stream discipline as the parallel experiment runner
//   (PR 1), so the interval is a pure function of (values, seed, config).
//   An executor may fan the resamples out over any number of threads in any
//   order; each resample writes its own pre-assigned slot, so the result is
//   bit-identical at any thread count.
//
//   Quality awareness.  Each run row carries the PR 3 measurement-quality
//   tag. kInvalid rows are excluded from resampling (their energy columns
//   are zeroed garbage) but counted, and the interval widens as the
//   surviving rows' quality degrades — ok < retried < degraded — so a
//   fault-degraded matrix honestly reports more uncertainty than a clean
//   one even when the surviving values happen to coincide.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/protocol.hpp"

namespace jepo::stats {

struct BootstrapConfig {
  /// Number of bootstrap resamples. 200 keeps the smoke sweep cheap while
  /// placing the 2.5/97.5 percentiles within a run's noise floor.
  int resamples = 200;
  /// Two-sided confidence level in (0, 1).
  double confidence = 0.95;
  /// Base seed of the resample ordinal streams (deriveSeed(seed, r)).
  std::uint64_t seed = 2020;
};

/// A confidence interval around a reported mean. lo <= mean <= hi always
/// (the percentile interval is clamped to bracket the point estimate, so a
/// skewed small-sample resample distribution can never report a mean
/// outside its own interval).
struct Interval {
  double lo = 0.0;
  double mean = 0.0;
  double hi = 0.0;
  double width() const noexcept { return hi - lo; }
};

/// Per-row measurement quality, as the rapl::MeasurementQuality enum index
/// round-tripped through the protocol's bookkeeping column:
/// 0 = ok, 1 = retried, 2 = degraded, 3 = invalid. (Kept as plain ints so
/// jepo_stats does not grow a rapl dependency.)
inline constexpr int kQualityOk = 0;
inline constexpr int kQualityRetried = 1;
inline constexpr int kQualityDegraded = 2;
inline constexpr int kQualityInvalid = 3;

/// Widening penalties per surviving-row quality (fractions of the rows
/// that are retried / degraded). The exact values are a policy choice; the
/// invariants the tests pin are ordering (ok < retried < degraded) and
/// strict monotonicity of the factor in either fraction.
inline constexpr double kRetriedWiden = 0.35;
inline constexpr double kDegradedWiden = 1.00;

/// 1 + kRetriedWiden * fracRetried + kDegradedWiden * fracDegraded.
double qualityWidenFactor(double fracRetried, double fracDegraded) noexcept;

/// The quality-aware interval over one metric column of a run matrix.
struct IntervalResult {
  Interval interval;
  /// Rows that participated in resampling (quality != invalid).
  int validRows = 0;
  /// kInvalid rows excluded from resampling but counted here.
  int excludedRows = 0;
  /// Fraction of valid rows tagged retried / degraded, and the widening
  /// factor applied to the raw percentile interval.
  double retriedFraction = 0.0;
  double degradedFraction = 0.0;
  double widenFactor = 1.0;
  /// The interval degenerated to a point estimate: fewer than two valid
  /// rows (nothing to resample — including the all-flagged matrix, whose
  /// mean falls back to the plain mean over every row rather than
  /// aborting).
  bool pointEstimate = false;
};

/// The B resample means of `xs` under the deriveSeed ordinal streams.
/// Resample r's indices come from Rng(deriveSeed(seed, r)); the executor
/// only ever sees independent slot-writing jobs, so any scheduling yields
/// bit-identical output. Throws PreconditionError on empty input or
/// resamples < 1.
std::vector<double> bootstrapMeans(const std::vector<double>& xs,
                                   int resamples, std::uint64_t seed,
                                   const BatchExecutor& exec);

/// Percentile interval of `samples` at `confidence`, clamped to bracket
/// `center` (the reported point estimate). Throws on empty samples or a
/// confidence outside (0, 1).
Interval percentileInterval(std::vector<double> samples, double center,
                            double confidence);

/// Expand an interval's half-widths around its mean by `factor` (>= 1).
Interval widen(const Interval& interval, double factor) noexcept;

/// The full quality-aware pipeline over one metric column. `values` and
/// `qualities` are parallel arrays (one entry per final run of the
/// protocol matrix). Invalid rows are excluded-but-counted; fewer than two
/// surviving rows degrade to a point estimate at the plain mean (over the
/// survivors, or over every row when none survive) instead of throwing.
IntervalResult qualityInterval(const std::vector<double>& values,
                               const std::vector<int>& qualities,
                               const BootstrapConfig& config,
                               const BatchExecutor& exec = serialExecutor());

}  // namespace jepo::stats
