// RandomForest: bagging over RandomTrees (WEKA's RandomForest = bagged
// RandomTree with random feature selection per node).
#pragma once

#include <memory>

#include "ml/tree.hpp"

namespace jepo::ml {

struct ForestOptions {
  int numTrees = 10;       // WEKA defaults to 100; benches scale this
  int randomFeatures = 0;  // 0: ceil(log2(F) + 1), the WEKA default
};

template <typename Real>
class RandomForest final : public Classifier {
 public:
  RandomForest(MlRuntime& runtime, ForestOptions options, Rng rng);

  void train(const Instances& data) override;
  int predict(const std::vector<double>& row) const override;
  std::string name() const override { return "RandomForest"; }

  std::size_t treeCount() const noexcept { return trees_.size(); }

 private:
  MlRuntime* rt_;
  ForestOptions options_;
  Rng rng_;
  std::vector<std::unique_ptr<DecisionTree<Real>>> trees_;
  std::size_t numClasses_ = 0;
};

extern template class RandomForest<float>;
extern template class RandomForest<double>;

}  // namespace jepo::ml
