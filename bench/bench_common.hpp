// Shared utilities for the bench binaries: a strict --key=value flag
// parser, the paper-vs-measured table header every reproduction bench
// prints, and BenchReport — the common machine-readable artifact
// ({bench, config, rows[], wallMs, counters{}}) every bench emits with
// --json=<path> for CI's smoke-bench step.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "obs/registry.hpp"
#include "support/json_writer.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace jepo::bench {

/// Parses flags of the form --name=value (bare --name means "true").
///
/// Every bench declares its flag vocabulary up front; anything outside it
/// — a typo like --intances, a flag from a different bench, a stray
/// positional argument — prints the valid set and exits with status 2, so
/// a CI invocation can never silently run with a misspelled knob at its
/// default value. "help", "json", "runs", "trace" and "fault-plan" are
/// accepted by every bench (CI runs them all uniformly with
/// --runs=1 --json=...; chaos runs add --fault-plan=<spec>).
class Flags {
 public:
  Flags(int argc, char** argv, std::vector<std::string> known = {}) {
    for (const char* common : {"help", "json", "runs", "trace",
                               "fault-plan"}) {
      if (std::find(known.begin(), known.end(), common) == known.end()) {
        known.emplace_back(common);
      }
    }
    std::sort(known.begin(), known.end());
    bool bad = false;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (startsWith(arg, "--")) {
        const auto eq = arg.find('=');
        const std::string name =
            eq == std::string::npos ? arg.substr(2) : arg.substr(2, eq - 2);
        if (std::binary_search(known.begin(), known.end(), name)) {
          if (eq == std::string::npos) {
            values_.emplace_back(name, "true");
          } else {
            values_.emplace_back(name, arg.substr(eq + 1));
          }
          continue;
        }
      }
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      bad = true;
    }
    if (bad || getBool("help")) {
      std::FILE* out = bad ? stderr : stdout;
      std::fprintf(out, "valid flags:");
      for (const auto& k : known) std::fprintf(out, " --%s", k.c_str());
      std::fprintf(out, "\n");
      std::exit(bad ? 2 : 0);
    }
  }

  std::string get(const std::string& name, const std::string& def) const {
    for (const auto& [k, v] : values_) {
      if (k == name) return v;
    }
    return def;
  }

  long getInt(const std::string& name, long def) const {
    const std::string v = get(name, "");
    return v.empty() ? def : std::strtol(v.c_str(), nullptr, 10);
  }

  double getDouble(const std::string& name, double def) const {
    const std::string v = get(name, "");
    return v.empty() ? def : std::strtod(v.c_str(), nullptr);
  }

  bool getBool(const std::string& name, bool def = false) const {
    const std::string v = get(name, "");
    return v.empty() ? def : v == "true" || v == "1";
  }

 private:
  std::vector<std::pair<std::string, std::string>> values_;
};

/// Resolve --fault-plan=<spec> (see fault::parseFaultPlan for the syntax:
/// a preset like "transient" or "chaos", optionally with ':'-separated
/// key=value overrides). Returns nullopt when the flag is absent or the
/// spec is inactive ("none"); a malformed spec prints the parse error and
/// exits 2, matching the strict-flag philosophy above.
inline std::optional<fault::FaultSpec> faultSpecFromFlags(
    const Flags& flags) {
  const std::string text = flags.get("fault-plan", "");
  if (text.empty()) return std::nullopt;
  try {
    fault::FaultSpec spec = fault::parseFaultPlan(text);
    if (!spec.active()) return std::nullopt;
    return spec;
  } catch (const Error& e) {
    std::fprintf(stderr, "--fault-plan: %s\n", e.what());
    std::exit(2);
  }
}

inline void printHeader(const std::string& title) {
  std::printf("==================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==================================================\n");
}

/// The machine-readable side of a bench run. Construct it right after
/// Flags (it starts the wall clock and arms tracing from JEPO_TRACE /
/// --trace), record config knobs and result rows while the bench prints
/// its human-readable table, and `return report.finish();` from main.
///
/// finish() writes the common schema
///   {"bench": ..., "config": {...}, "rows": [{...}, ...],
///    "wallMs": ..., "counters": {...}}
/// to the --json path (validated in CI by scripts/check_bench_json.py) and
/// dumps the Chrome trace if one was requested.
class BenchReport {
 public:
  BenchReport(std::string bench, const Flags& flags)
      : bench_(std::move(bench)),
        jsonPath_(flags.get("json", "")),
        start_(std::chrono::steady_clock::now()) {
    obs::initFromEnv();
    const std::string trace = flags.get("trace", "");
    if (!trace.empty()) obs::setTracePath(trace);
  }

  void config(const std::string& key, JsonValue v) {
    config_.emplace_back(key, std::move(v));
  }

  using Row = std::vector<std::pair<std::string, JsonValue>>;
  void addRow(Row row) { rows_.push_back(std::move(row)); }

  /// Returns main's exit status: 0, or 1 if a requested report could not
  /// be written.
  int finish() {
    const double wallMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_)
            .count();
    int status = 0;
    if (!jsonPath_.empty() && !writeJson(wallMs)) status = 1;
    obs::writeTraceIfRequested();
    return status;
  }

 private:
  bool writeJson(double wallMs) const {
    JsonWriter w;
    w.beginObject();
    w.kv("bench", bench_);
    w.key("config");
    w.beginObject();
    for (const auto& [k, v] : config_) w.kv(k, v);
    w.endObject();
    w.key("rows");
    w.beginArray();
    for (const auto& row : rows_) {
      w.beginObject();
      for (const auto& [k, v] : row) w.kv(k, v);
      w.endObject();
    }
    w.endArray();
    w.kv("wallMs", wallMs);
    w.key("counters");
    w.beginObject();
    for (const auto& [name, value] :
         obs::Registry::global().snapshot().counters) {
      w.kv(name, value);
    }
    w.endObject();
    w.endObject();

    std::FILE* f = std::fopen(jsonPath_.c_str(), "wb");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", jsonPath_.c_str());
      return false;
    }
    const std::string& doc = w.str();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    return true;
  }

  std::string bench_;
  std::string jsonPath_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, JsonValue>> config_;
  std::vector<Row> rows_;
};

}  // namespace jepo::bench
