file(REMOVE_RECURSE
  "CMakeFiles/jepo_energy.dir/cost_model.cpp.o"
  "CMakeFiles/jepo_energy.dir/cost_model.cpp.o.d"
  "CMakeFiles/jepo_energy.dir/machine.cpp.o"
  "CMakeFiles/jepo_energy.dir/machine.cpp.o.d"
  "CMakeFiles/jepo_energy.dir/op.cpp.o"
  "CMakeFiles/jepo_energy.dir/op.cpp.o.d"
  "libjepo_energy.a"
  "libjepo_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jepo_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
