// Energy-aware model selection — the paper's §IV-A describes OpenEI's
// "model selector … used to pick up the best matching hardware and software
// combination to save energy". This is that component for the mini-WEKA:
// it measures each candidate classifier's accuracy, per-inference energy
// and latency on the simulated edge device, then picks the most accurate
// model that fits the deployment's energy/latency budget.
#pragma once

#include <limits>
#include <vector>

#include "ml/classifier.hpp"

namespace jepo::ml {

struct Candidate {
  ClassifierKind kind = ClassifierKind::kNaiveBayes;
  Precision precision = Precision::kDouble;
};

struct DeploymentBudget {
  double maxJoulesPerInference = std::numeric_limits<double>::infinity();
  double maxSecondsPerInference = std::numeric_limits<double>::infinity();
  double minAccuracy = 0.0;  // fraction in [0, 1]
};

struct CandidateReport {
  Candidate candidate;
  double accuracy = 0.0;            // holdout accuracy (fraction)
  double trainJoules = 0.0;         // one-time training cost
  double joulesPerInference = 0.0;  // steady-state energy per prediction
  double secondsPerInference = 0.0;
  bool feasible = false;            // against the budget it was scored with
};

class ModelSelector {
 public:
  /// `holdoutFraction` of the data scores accuracy; energy/latency are
  /// measured over the holdout predictions on a fresh machine per
  /// candidate, using the given CodeStyle.
  ModelSelector(CodeStyle style, double holdoutFraction = 0.3,
                std::uint64_t seed = 99);

  /// Measure every candidate against the budget.
  std::vector<CandidateReport> evaluate(
      const Instances& data, const std::vector<Candidate>& candidates,
      const DeploymentBudget& budget) const;

  /// The winner: highest accuracy among feasible candidates, ties broken
  /// by lower energy per inference. Returns nullptr if none is feasible.
  static const CandidateReport* select(
      const std::vector<CandidateReport>& reports);

 private:
  CodeStyle style_;
  double holdoutFraction_;
  std::uint64_t seed_;
};

}  // namespace jepo::ml
