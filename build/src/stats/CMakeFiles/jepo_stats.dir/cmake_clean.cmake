file(REMOVE_RECURSE
  "CMakeFiles/jepo_stats.dir/protocol.cpp.o"
  "CMakeFiles/jepo_stats.dir/protocol.cpp.o.d"
  "CMakeFiles/jepo_stats.dir/stats.cpp.o"
  "CMakeFiles/jepo_stats.dir/stats.cpp.o.d"
  "libjepo_stats.a"
  "libjepo_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jepo_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
