// Blocking client for the jepod socket protocol.
//
// One connection, synchronous request/response — the shape every consumer
// here needs (jepod_client CLI, bench_jepod's simulated clients, the test
// suite). The raw-line seam exists so tests can send deliberately
// malformed bytes and assert on the typed error that comes back.
#pragma once

#include <string>

#include "jepod/protocol.hpp"

namespace jepo::jepod {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connect to a daemon's socket. Throws Error when nothing listens.
  void connect(const std::string& socketPath);
  bool connected() const noexcept { return fd_ >= 0; }
  void close();

  /// Send one request, block for one response line, decode it.
  Response submit(const JobRequest& req);

  /// Send raw bytes + '\n', return the raw response line (for protocol
  /// edge-case tests). Throws Error on EOF before a full line arrives.
  std::string roundTrip(const std::string& rawLine);

  /// Block for the next response line without sending anything — for
  /// pipelined requests, whose responses arrive in completion order.
  std::string awaitLine() { return readLine(); }

 private:
  std::string readLine();

  int fd_ = -1;
  std::string buffer_;  // bytes past the last consumed line
};

}  // namespace jepo::jepod
