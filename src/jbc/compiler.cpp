#include "jbc/compiler.hpp"

#include <unordered_map>

#include "jlang/resolve.hpp"
#include "jvm/builtins.hpp"
#include "jvm/ops.hpp"

namespace jepo::jbc {

using jlang::AssignOp;
using jlang::BinOp;
using jlang::ClassDecl;
using jlang::Expr;
using jlang::ExprKind;
using jlang::MethodDecl;
using jlang::Prim;
using jlang::Program;
using jlang::Stmt;
using jlang::StmtKind;
using jlang::UnOp;
using jvm::BuiltinLibrary;
using jvm::ValKind;

namespace {

class ProgramCompiler;

/// Compiles one method body into a Chunk.
class MethodCompiler {
 public:
  MethodCompiler(ProgramCompiler& owner, const ClassDecl& cls,
                 bool isStatic);

  Chunk compileMethod(const MethodDecl& m);
  /// Synthesized chunks over field initializers.
  Chunk compileFieldInits(const ClassDecl& cls, bool staticFields);

 private:
  // ------------------------------------------------------------- emission
  int emit(Op op, std::int32_t a = 0, std::int32_t b = 0, std::int32_t c = 0,
           int line = 0) {
    chunk_.code.push_back(Instr{op, a, b, c, line});
    return static_cast<int>(chunk_.code.size() - 1);
  }
  int here() const { return static_cast<int>(chunk_.code.size()); }
  void patch(int at, int target) {
    chunk_.code[static_cast<std::size_t>(at)].a = target;
  }

  // --------------------------------------------------------------- scopes
  struct LocalInfo {
    int slot;
    ValKind kind;
  };
  void pushScope() { scopes_.emplace_back(); }
  void popScope() { scopes_.pop_back(); }
  int declareLocal(const std::string& name, ValKind kind) {
    const int slot = chunk_.numSlots++;
    scopes_.back().emplace_back(name, LocalInfo{slot, kind});
    return slot;
  }
  const LocalInfo* findLocal(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      for (const auto& [n, info] : *it) {
        if (n == name) return &info;
      }
    }
    return nullptr;
  }
  int newTemp() { return chunk_.numSlots++; }

  // ------------------------------------------------------------ statements
  void compileStmt(const Stmt& s);
  void compileBlock(const Stmt& s);
  void compileVarDecl(const Stmt& s);
  void compileIf(const Stmt& s);
  void compileWhile(const Stmt& s);
  void compileFor(const Stmt& s);
  void compileTry(const Stmt& s);
  void compileSwitch(const Stmt& s);
  void compileReturn(const Stmt& s);

  // ----------------------------------------------------------- expressions
  void compileExpr(const Expr& e);
  void compileAssign(const Expr& e);
  void compileIncDec(const Expr& e);
  void compileCall(const Expr& e);
  void compileVarRef(const Expr& e);
  void compileFieldAccess(const Expr& e);
  /// Store the top of stack into the lvalue `target`.
  void compileStoreTo(const Expr& target);
  void emitDefault(ValKind k, int line);

  // -------------------------------------------------------------- helpers
  bool isClassNameRef(const Expr& e) const;
  /// The resolver's view of the class being compiled.
  const jlang::ResolvedClass& rcls() const;
  /// Emit a static get/put against a named class: slot-resolved when the
  /// class is a program class, the dynamic builtin-first op otherwise.
  void emitStaticAccess(bool store, const std::string& className,
                        const std::string& fieldName, int line);
  /// Emit inlined copies of the finally blocks for frames deeper than
  /// `downToDepth` (for return/break/continue crossing try-finally).
  void emitFinallyCopies(std::size_t downToDepth);

  ProgramCompiler& owner_;
  const ClassDecl& cls_;
  bool isStatic_;
  Chunk chunk_;
  std::vector<std::vector<std::pair<std::string, LocalInfo>>> scopes_;

  struct LoopContext {
    std::vector<int> breakJumps;
    std::vector<int> continueJumps;
    bool isLoop = true;         // false for switch (breakable only)
    std::size_t finallyDepth;   // finally frames live at loop entry
  };
  std::vector<LoopContext> loops_;
  std::vector<const Stmt*> finallyStack_;  // enclosing finally blocks
};

class ProgramCompiler {
 public:
  ProgramCompiler(const Program& program, const CompileOptions& options)
      : program_(program), options_(options) {}

  CompiledProgram run();

  int nameIdx(const std::string& s) {
    const auto it = nameIndex_.find(s);
    if (it != nameIndex_.end()) return it->second;
    out_.names.push_back(s);
    const int idx = static_cast<int>(out_.names.size() - 1);
    nameIndex_.emplace(s, idx);
    return idx;
  }
  int intIdx(std::int64_t v) {
    out_.intPool.push_back(v);
    return static_cast<int>(out_.intPool.size() - 1);
  }
  int numIdx(double v) {
    out_.numPool.push_back(v);
    return static_cast<int>(out_.numPool.size() - 1);
  }

  const Program& program() const { return program_; }
  bool isProgramClass(const std::string& name) const {
    return program_.findClass(name) != nullptr;
  }
  /// The resolution substrate (available once run() has started).
  const jlang::Resolution& res() const { return *res_; }

 private:
  const Program& program_;
  CompileOptions options_;
  CompiledProgram out_;
  std::unordered_map<std::string, int> nameIndex_;
  std::shared_ptr<const jlang::Resolution> res_;
};

// ---------------------------------------------------------------------------

MethodCompiler::MethodCompiler(ProgramCompiler& owner, const ClassDecl& cls,
                               bool isStatic)
    : owner_(owner), cls_(cls), isStatic_(isStatic) {}

const jlang::ResolvedClass& MethodCompiler::rcls() const {
  return owner_.res().classes[static_cast<std::size_t>(cls_.classId)];
}

Chunk MethodCompiler::compileMethod(const MethodDecl& m) {
  chunk_ = Chunk{};
  chunk_.qualifiedName = cls_.name + "." + m.name;
  chunk_.methodId = m.methodId;
  chunk_.isStatic = m.isStatic;
  pushScope();
  if (!m.isStatic) {
    declareLocal("this", ValKind::kRef);
    chunk_.paramKinds.push_back(ValKind::kRef);
  }
  for (const auto& p : m.params) {
    const ValKind k = jvm::kindOfType(p.type);
    declareLocal(p.name, k);
    chunk_.paramKinds.push_back(k);
  }
  chunk_.numParams = static_cast<int>(chunk_.paramKinds.size());
  if (m.body) compileBlock(*m.body);
  emit(Op::kReturnVoid, 0, 0, 0, m.line);
  popScope();
  return std::move(chunk_);
}

Chunk MethodCompiler::compileFieldInits(const ClassDecl& cls,
                                        bool staticFields) {
  chunk_ = Chunk{};
  chunk_.qualifiedName =
      cls.name + (staticFields ? ".<clinit>" : ".<initfields>");
  chunk_.methodId = staticFields ? rcls().clinitId : rcls().initFieldsId;
  chunk_.isStatic = staticFields;
  pushScope();
  if (!staticFields) {
    declareLocal("this", ValKind::kRef);
    chunk_.paramKinds.push_back(ValKind::kRef);
  }
  chunk_.numParams = static_cast<int>(chunk_.paramKinds.size());
  for (const auto& f : cls.fields) {
    if (f.isStatic != staticFields || !f.init) continue;
    compileExpr(*f.init);
    const ValKind k = jvm::kindOfType(f.type);
    if (k != ValKind::kRef) emit(Op::kCast, static_cast<int>(k), 0, 0, f.line);
    if (BuiltinLibrary::isWrapperClassName(f.type.className) &&
        f.type.arrayDims == 0) {
      emit(Op::kBox, owner_.nameIdx(f.type.className), 0, 0, f.line);
    }
    // f.slot was assigned by the resolver: the global flat-statics slot
    // for statics, the layout offset for instance fields.
    if (staticFields) {
      emit(Op::kPutStaticSlot, f.slot, cls.classId, 0, f.line);
    } else {
      emit(Op::kPutThisFieldSlot, f.slot, 0, 0, f.line);
    }
  }
  emit(Op::kReturnVoid);
  popScope();
  return std::move(chunk_);
}

void MethodCompiler::emitDefault(ValKind k, int line) {
  switch (k) {
    case ValKind::kBool: emit(Op::kConstBool, 0, 0, 0, line); break;
    case ValKind::kFloat:
      emit(Op::kConstFloat, owner_.numIdx(0.0), 0, 0, line);
      break;
    case ValKind::kDouble:
      emit(Op::kConstDouble, owner_.numIdx(0.0), 0, 0, line);
      break;
    case ValKind::kChar: emit(Op::kConstChar, 0, 0, 0, line); break;
    case ValKind::kLong:
      emit(Op::kConstLong, owner_.intIdx(0), 0, 0, line);
      break;
    case ValKind::kByte:
    case ValKind::kShort:
    case ValKind::kInt:
      emit(Op::kConstInt, owner_.intIdx(0), 0, 0, line);
      break;
    default: emit(Op::kConstNull, 0, 0, 0, line); break;
  }
}

// ----------------------------------------------------------------- stmts

void MethodCompiler::compileBlock(const Stmt& s) {
  pushScope();
  for (const auto& st : s.body) compileStmt(*st);
  popScope();
}

void MethodCompiler::compileStmt(const Stmt& s) {
  switch (s.kind) {
    case StmtKind::kBlock: compileBlock(s); return;
    case StmtKind::kVarDecl: compileVarDecl(s); return;
    case StmtKind::kExprStmt:
      compileExpr(*s.expr);
      emit(Op::kPop, 0, 0, 0, s.line);
      return;
    case StmtKind::kIf: compileIf(s); return;
    case StmtKind::kWhile: compileWhile(s); return;
    case StmtKind::kFor: compileFor(s); return;
    case StmtKind::kReturn: compileReturn(s); return;
    case StmtKind::kThrow:
      compileExpr(*s.expr);
      emit(Op::kThrow, 0, 0, 0, s.line);
      return;
    case StmtKind::kTry: compileTry(s); return;
    case StmtKind::kSwitch: compileSwitch(s); return;
    case StmtKind::kBreak: {
      JEPO_REQUIRE(!loops_.empty(), "break outside loop/switch");
      emitFinallyCopies(loops_.back().finallyDepth);
      loops_.back().breakJumps.push_back(emit(Op::kJump, 0, 0, 0, s.line));
      return;
    }
    case StmtKind::kContinue: {
      // The nearest *loop* (switches are not continue targets).
      LoopContext* target = nullptr;
      for (auto it = loops_.rbegin(); it != loops_.rend(); ++it) {
        if (it->isLoop) {
          target = &*it;
          break;
        }
      }
      JEPO_REQUIRE(target != nullptr, "continue outside loop");
      emitFinallyCopies(target->finallyDepth);
      target->continueJumps.push_back(emit(Op::kJump, 0, 0, 0, s.line));
      return;
    }
  }
  throw Error("unhandled statement kind in compiler");
}

void MethodCompiler::compileVarDecl(const Stmt& s) {
  const ValKind k = jvm::kindOfType(s.declType);
  if (s.init) {
    compileExpr(*s.init);
  } else {
    emitDefault(k, s.line);
  }
  const bool wrapper =
      s.declType.arrayDims == 0 &&
      BuiltinLibrary::isWrapperClassName(s.declType.className);
  if (wrapper) {
    emit(Op::kBox, owner_.nameIdx(s.declType.className), 0, 0, s.line);
  }
  const int slot = declareLocal(s.declName, k);
  emit(Op::kStore, slot, static_cast<int>(k), 0, s.line);
}

void MethodCompiler::compileIf(const Stmt& s) {
  compileExpr(*s.cond);
  const int jumpElse = emit(Op::kJumpIfFalse, 0, 0, 0, s.line);
  compileStmt(*s.thenStmt);
  if (s.elseStmt) {
    const int jumpEnd = emit(Op::kJump);
    patch(jumpElse, here());
    compileStmt(*s.elseStmt);
    patch(jumpEnd, here());
  } else {
    patch(jumpElse, here());
  }
}

void MethodCompiler::compileWhile(const Stmt& s) {
  const int start = here();
  compileExpr(*s.cond);
  const int exitJump = emit(Op::kJumpIfFalse, 0, 0, 0, s.line);
  emit(Op::kLoopTick);
  loops_.push_back(LoopContext{{}, {}, true, finallyStack_.size()});
  compileStmt(*s.thenStmt);
  LoopContext ctx = std::move(loops_.back());
  loops_.pop_back();
  for (int j : ctx.continueJumps) patch(j, start);
  emit(Op::kJump, start);
  patch(exitJump, here());
  for (int j : ctx.breakJumps) patch(j, here());
}

void MethodCompiler::compileFor(const Stmt& s) {
  pushScope();
  for (const auto& init : s.body) compileStmt(*init);
  const int start = here();
  int exitJump = -1;
  if (s.cond) {
    compileExpr(*s.cond);
    exitJump = emit(Op::kJumpIfFalse, 0, 0, 0, s.line);
  }
  emit(Op::kLoopTick);
  loops_.push_back(LoopContext{{}, {}, true, finallyStack_.size()});
  compileStmt(*s.thenStmt);
  LoopContext ctx = std::move(loops_.back());
  loops_.pop_back();
  const int updateTarget = here();
  for (int j : ctx.continueJumps) patch(j, updateTarget);
  for (const auto& u : s.update) {
    compileExpr(*u);
    emit(Op::kPop);
  }
  emit(Op::kJump, start);
  if (exitJump >= 0) patch(exitJump, here());
  for (int j : ctx.breakJumps) patch(j, here());
  popScope();
}

void MethodCompiler::emitFinallyCopies(std::size_t downToDepth) {
  for (std::size_t i = finallyStack_.size(); i > downToDepth; --i) {
    const Stmt* fin = finallyStack_[i - 1];
    if (fin != nullptr) compileStmt(*fin);
  }
}

void MethodCompiler::compileReturn(const Stmt& s) {
  if (finallyStack_.empty()) {
    if (s.expr) {
      compileExpr(*s.expr);
      emit(Op::kReturnValue, 0, 0, 0, s.line);
    } else {
      emit(Op::kReturnVoid, 0, 0, 0, s.line);
    }
    return;
  }
  // Return crossing finally frames: stash the value, run the finallys.
  if (s.expr) {
    compileExpr(*s.expr);
    const int temp = newTemp();
    emit(Op::kStore, temp, -1, 0, s.line);
    emitFinallyCopies(0);
    emit(Op::kLoad, temp, 0, 0, s.line);
    emit(Op::kReturnValue, 0, 0, 0, s.line);
  } else {
    emitFinallyCopies(0);
    emit(Op::kReturnVoid, 0, 0, 0, s.line);
  }
}

void MethodCompiler::compileTry(const Stmt& s) {
  emit(Op::kTryTick, 0, 0, 0, s.line);
  const Stmt* finallyBlock = s.finallyBlock.get();
  finallyStack_.push_back(finallyBlock);

  const int tryStart = here();
  compileStmt(*s.tryBlock);
  const int tryEnd = here();

  finallyStack_.pop_back();  // handlers/finally copies run outside the frame

  std::vector<int> endJumps;
  if (finallyBlock != nullptr) compileStmt(*finallyBlock);
  endJumps.push_back(emit(Op::kJump));

  // Catch handlers.
  for (const auto& clause : s.catches) {
    pushScope();
    const int slot = declareLocal(clause.varName, ValKind::kRef);
    ExceptionEntry entry;
    entry.start = tryStart;
    entry.end = tryEnd;
    entry.handler = here();
    entry.classNameIdx = owner_.nameIdx(clause.exceptionClass);
    entry.slot = slot;
    chunk_.handlers.push_back(entry);
    compileStmt(*clause.body);
    popScope();
    if (finallyBlock != nullptr) compileStmt(*finallyBlock);
    endJumps.push_back(emit(Op::kJump));
  }
  const int catchesEnd = here();

  // Catch-all: run the finally, rethrow. Covers the try AND catch bodies.
  if (finallyBlock != nullptr) {
    const int temp = newTemp();
    ExceptionEntry entry;
    entry.start = tryStart;
    entry.end = catchesEnd;
    entry.handler = here();
    entry.classNameIdx = -1;
    entry.slot = temp;
    chunk_.handlers.push_back(entry);
    compileStmt(*finallyBlock);
    emit(Op::kLoad, temp);
    emit(Op::kThrow);
  }

  for (int j : endJumps) patch(j, here());
}

void MethodCompiler::compileSwitch(const Stmt& s) {
  compileExpr(*s.cond);
  const int selSlot = newTemp();
  emit(Op::kStore, selSlot, -1, 0, s.line);

  // Dispatch: compare against each case label in order.
  std::vector<int> caseJumps(s.cases.size(), -1);
  int defaultIdx = -1;
  for (std::size_t i = 0; i < s.cases.size(); ++i) {
    if (s.cases[i].isDefault) {
      defaultIdx = static_cast<int>(i);
      continue;
    }
    emit(Op::kLoad, selSlot);
    emit(Op::kConstInt, owner_.intIdx(s.cases[i].value));
    emit(Op::kBinary, static_cast<int>(BinOp::kEq));
    caseJumps[i] = emit(Op::kJumpIfTrue, 0, 0, 0, s.line);
  }
  const int dispatchEndJump = emit(Op::kJump);

  loops_.push_back(LoopContext{{}, {}, false, finallyStack_.size()});
  std::vector<int> bodyStart(s.cases.size(), 0);
  for (std::size_t i = 0; i < s.cases.size(); ++i) {
    bodyStart[i] = here();
    for (const auto& st : s.cases[i].body) compileStmt(*st);
  }
  LoopContext ctx = std::move(loops_.back());
  loops_.pop_back();
  JEPO_REQUIRE(ctx.continueJumps.empty(),
               "continue inside switch must target a loop");

  for (std::size_t i = 0; i < s.cases.size(); ++i) {
    if (caseJumps[i] >= 0) patch(caseJumps[i], bodyStart[i]);
  }
  patch(dispatchEndJump,
        defaultIdx >= 0 ? bodyStart[static_cast<std::size_t>(defaultIdx)]
                        : here());
  for (int j : ctx.breakJumps) patch(j, here());
}

// ----------------------------------------------------------------- exprs

bool MethodCompiler::isClassNameRef(const Expr& e) const {
  if (e.kind != ExprKind::kVarRef) return false;
  if (findLocal(e.strValue) != nullptr) return false;
  return owner_.isProgramClass(e.strValue) ||
         BuiltinLibrary::isBuiltinClassName(e.strValue);
}

void MethodCompiler::compileVarRef(const Expr& e) {
  if (e.strValue == "this") {
    emit(Op::kLoadThis, 0, 0, 0, e.line);
    return;
  }
  if (const LocalInfo* local = findLocal(e.strValue)) {
    emit(Op::kLoad, local->slot, 0, 0, e.line);
    return;
  }
  // Instance field of this (f.slot = layout offset, from the resolver).
  if (!isStatic_) {
    for (const auto& f : cls_.fields) {
      if (!f.isStatic && f.name == e.strValue) {
        emit(Op::kGetThisFieldSlot, f.slot, 0, 0, e.line);
        return;
      }
    }
  }
  // Static field of the current class (f.slot = global statics slot).
  for (const auto& f : cls_.fields) {
    if (f.isStatic && f.name == e.strValue) {
      emit(Op::kGetStaticSlot, f.slot, cls_.classId, 0, e.line);
      return;
    }
  }
  throw CompileError("undefined name '" + e.strValue + "' at line " +
                     std::to_string(e.line));
}

void MethodCompiler::emitStaticAccess(bool store, const std::string& className,
                                      const std::string& fieldName, int line) {
  // Builtin class names keep the dynamic op: the VM probes the builtin
  // static table first, exactly as the seed did.
  if (!BuiltinLibrary::isBuiltinClassName(className)) {
    const std::int32_t id = owner_.res().classIdOf(className);
    if (id >= 0) {
      const jlang::ResolvedClass& rc =
          owner_.res().classes[static_cast<std::size_t>(id)];
      const int idx = rc.staticIndexOf(fieldName);
      const std::int32_t slot = idx >= 0 ? rc.staticSlots[idx] : -1;
      // slot -1: the resolver proved the field missing. The VM still runs
      // <clinit> first, then raises the seed's error using the name in c.
      emit(store ? Op::kPutStaticSlot : Op::kGetStaticSlot, slot, id,
           owner_.nameIdx(className + "." + fieldName), line);
      return;
    }
  }
  emit(store ? Op::kPutStatic : Op::kGetStatic,
       owner_.nameIdx(className + "." + fieldName), 0, 0, line);
}

void MethodCompiler::compileFieldAccess(const Expr& e) {
  if (isClassNameRef(*e.a)) {
    emitStaticAccess(/*store=*/false, e.a->strValue, e.strValue, e.line);
    return;
  }
  compileExpr(*e.a);
  if (e.nameRef == jlang::NameRef::kInstanceField && e.cacheSlot >= 0) {
    emit(Op::kGetFieldCached, owner_.nameIdx(e.strValue), e.cacheSlot, 0,
         e.line);
  } else {
    emit(Op::kGetField, owner_.nameIdx(e.strValue), 0, 0, e.line);
  }
}

void MethodCompiler::compileStoreTo(const Expr& target) {
  // Precondition: the value to store is on top of the stack.
  switch (target.kind) {
    case ExprKind::kVarRef: {
      if (const LocalInfo* local = findLocal(target.strValue)) {
        emit(Op::kStore, local->slot, static_cast<int>(local->kind), 0,
             target.line);
        return;
      }
      if (!isStatic_) {
        for (const auto& f : cls_.fields) {
          if (!f.isStatic && f.name == target.strValue) {
            emit(Op::kPutThisFieldSlot, f.slot, 0, 0, target.line);
            return;
          }
        }
      }
      for (const auto& f : cls_.fields) {
        if (f.isStatic && f.name == target.strValue) {
          emit(Op::kPutStaticSlot, f.slot, cls_.classId, 0, target.line);
          return;
        }
      }
      throw CompileError("assignment to undefined name '" + target.strValue +
                         "' at line " + std::to_string(target.line));
    }
    case ExprKind::kFieldAccess: {
      if (isClassNameRef(*target.a)) {
        emitStaticAccess(/*store=*/true, target.a->strValue, target.strValue,
                         target.line);
        return;
      }
      // value on stack; need obj value for kPutField: stash value.
      const int temp = newTemp();
      emit(Op::kStore, temp, -1, 0, target.line);
      compileExpr(*target.a);
      emit(Op::kLoad, temp);
      if (target.nameRef == jlang::NameRef::kInstanceField &&
          target.cacheSlot >= 0) {
        emit(Op::kPutFieldCached, owner_.nameIdx(target.strValue),
             target.cacheSlot, 0, target.line);
      } else {
        emit(Op::kPutField, owner_.nameIdx(target.strValue), 0, 0,
             target.line);
      }
      return;
    }
    case ExprKind::kArrayIndex: {
      const int temp = newTemp();
      emit(Op::kStore, temp, -1, 0, target.line);
      compileExpr(*target.a);
      compileExpr(*target.b);
      emit(Op::kLoad, temp);
      emit(Op::kArraySet, 0, 0, 0, target.line);
      return;
    }
    default:
      throw CompileError("invalid assignment target at line " +
                         std::to_string(target.line));
  }
}

void MethodCompiler::compileAssign(const Expr& e) {
  if (e.assignOp == AssignOp::kSet) {
    compileExpr(*e.b);
  } else {
    BinOp op;
    switch (e.assignOp) {
      case AssignOp::kAdd: op = BinOp::kAdd; break;
      case AssignOp::kSub: op = BinOp::kSub; break;
      case AssignOp::kMul: op = BinOp::kMul; break;
      case AssignOp::kDiv: op = BinOp::kDiv; break;
      case AssignOp::kMod: op = BinOp::kMod; break;
      default: throw Error("bad compound assignment");
    }
    compileExpr(*e.a);  // current value
    compileExpr(*e.b);
    emit(Op::kBinary, static_cast<int>(op), 0, 0, e.line);
    // Narrow compound results back to the target's kind when known.
    if (e.a->kind == ExprKind::kVarRef) {
      if (const LocalInfo* local = findLocal(e.a->strValue)) {
        if (local->kind != ValKind::kRef) {
          emit(Op::kCast, static_cast<int>(local->kind), 1 /*implicit*/, 0,
               e.line);
        }
      }
    }
  }
  emit(Op::kDup);  // assignment yields its value
  compileStoreTo(*e.a);
}

void MethodCompiler::compileIncDec(const Expr& e) {
  const bool inc = e.unOp == UnOp::kPreInc || e.unOp == UnOp::kPostInc;
  const bool pre = e.unOp == UnOp::kPreInc || e.unOp == UnOp::kPreDec;
  // old value
  compileExpr(*e.a);
  if (!pre) emit(Op::kDup);  // keep old as the expression result
  emit(Op::kConstInt, owner_.intIdx(1), 0, 0, e.line);
  emit(Op::kBinary, static_cast<int>(inc ? BinOp::kAdd : BinOp::kSub), 0, 0,
       e.line);
  // Coerce to the target's kind when known (++ on byte wraps at byte).
  if (e.a->kind == ExprKind::kVarRef) {
    if (const LocalInfo* local = findLocal(e.a->strValue)) {
      if (local->kind != ValKind::kRef) {
        emit(Op::kCast, static_cast<int>(local->kind), 1, 0, e.line);
      }
    }
  }
  if (pre) emit(Op::kDup);  // new value is the expression result
  compileStoreTo(*e.a);
}

void MethodCompiler::compileCall(const Expr& e) {
  // System.out.println / print.
  if (e.a && e.a->kind == ExprKind::kFieldAccess && e.a->strValue == "out" &&
      e.a->a && e.a->a->kind == ExprKind::kVarRef &&
      e.a->a->strValue == "System" &&
      (e.strValue == "println" || e.strValue == "print")) {
    const bool hasArg = !e.args.empty();
    if (hasArg) compileExpr(*e.args[0]);
    emit(Op::kPrint, e.strValue == "println" ? 1 : 0, hasArg ? 1 : 0, 0,
         e.line);
    return;
  }
  // Static call.
  if (e.a && isClassNameRef(*e.a)) {
    for (const auto& arg : e.args) compileExpr(*arg);
    // Program-class targets with a known method resolve to (classId,
    // ordinal). Builtin classes and missing methods keep the dynamic op
    // (the builtin dispatch and the seed's errors live there).
    if (!BuiltinLibrary::isBuiltinClassName(e.a->strValue)) {
      const std::int32_t id = owner_.res().classIdOf(e.a->strValue);
      if (id >= 0) {
        const jlang::ResolvedClass& rc =
            owner_.res().classes[static_cast<std::size_t>(id)];
        const jlang::ResolvedMethod* rm = rc.findMethod(e.strValue);
        if (rm != nullptr) {
          emit(Op::kCallStaticResolved, id, rc.methodOrdinal(rm->decl),
               static_cast<int>(e.args.size()), e.line);
          return;
        }
      }
    }
    emit(Op::kCallStatic, owner_.nameIdx(e.a->strValue),
         owner_.nameIdx(e.strValue), static_cast<int>(e.args.size()),
         e.line);
    return;
  }
  // Unqualified call.
  if (!e.a) {
    for (const auto& arg : e.args) compileExpr(*arg);
    const jlang::ResolvedMethod* rm = rcls().findMethod(e.strValue);
    // An instance target in a static chunk keeps the dynamic op, which
    // raises the seed's "instance method called from static context".
    if (rm != nullptr && !(isStatic_ && !rm->decl->isStatic)) {
      emit(Op::kCallSelfResolved, rcls().methodOrdinal(rm->decl),
           static_cast<int>(e.args.size()), rm->decl->isStatic ? 0 : 1,
           e.line);
      return;
    }
    emit(Op::kCallUnqualified, owner_.nameIdx(e.strValue),
         static_cast<int>(e.args.size()), 0, e.line);
    return;
  }
  // Instance call: receiver, then args.
  compileExpr(*e.a);
  for (const auto& arg : e.args) compileExpr(*arg);
  if (e.callKind == jlang::CallKind::kInstanceCached && e.cacheSlot >= 0) {
    emit(Op::kCallVirtualCached, owner_.nameIdx(e.strValue),
         static_cast<int>(e.args.size()), e.cacheSlot, e.line);
  } else {
    emit(Op::kCallVirtual, owner_.nameIdx(e.strValue),
         static_cast<int>(e.args.size()), 0, e.line);
  }
}

void MethodCompiler::compileExpr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kIntLit:
      emit(Op::kConstInt, owner_.intIdx(e.intValue), 0, 0, e.line);
      return;
    case ExprKind::kLongLit:
      emit(Op::kConstLong, owner_.intIdx(e.intValue), 0, 0, e.line);
      return;
    case ExprKind::kFloatLit:
      emit(Op::kConstFloat, owner_.numIdx(e.floatValue), e.scientific ? 0 : 1,
           0, e.line);
      return;
    case ExprKind::kDoubleLit:
      emit(Op::kConstDouble, owner_.numIdx(e.floatValue),
           e.scientific ? 0 : 1, 0, e.line);
      return;
    case ExprKind::kCharLit:
      emit(Op::kConstChar, static_cast<int>(e.intValue), 0, 0, e.line);
      return;
    case ExprKind::kStringLit:
      emit(Op::kConstStr, owner_.nameIdx(e.strValue), 0, 0, e.line);
      return;
    case ExprKind::kBoolLit:
      emit(Op::kConstBool, e.intValue != 0 ? 1 : 0, 0, 0, e.line);
      return;
    case ExprKind::kNullLit:
      emit(Op::kConstNull, 0, 0, 0, e.line);
      return;
    case ExprKind::kVarRef: compileVarRef(e); return;
    case ExprKind::kFieldAccess: compileFieldAccess(e); return;
    case ExprKind::kArrayIndex:
      compileExpr(*e.a);
      compileExpr(*e.b);
      emit(Op::kArrayGet, 0, 0, 0, e.line);
      return;
    case ExprKind::kBinary: {
      if (e.binOp == BinOp::kAndAnd || e.binOp == BinOp::kOrOr) {
        // a && b  ->  a ? b : false ;  a || b  ->  a ? true : b
        compileExpr(*e.a);
        if (e.binOp == BinOp::kAndAnd) {
          const int jumpFalse = emit(Op::kJumpIfFalse, 0, 0, 0, e.line);
          compileExpr(*e.b);
          const int jumpEnd = emit(Op::kJump);
          patch(jumpFalse, here());
          emit(Op::kConstBool, 0);
          patch(jumpEnd, here());
        } else {
          const int jumpTrue = emit(Op::kJumpIfTrue, 0, 0, 0, e.line);
          compileExpr(*e.b);
          const int jumpEnd = emit(Op::kJump);
          patch(jumpTrue, here());
          emit(Op::kConstBool, 1);
          patch(jumpEnd, here());
        }
        return;
      }
      compileExpr(*e.a);
      compileExpr(*e.b);
      emit(Op::kBinary, static_cast<int>(e.binOp), 0, 0, e.line);
      return;
    }
    case ExprKind::kUnary:
      switch (e.unOp) {
        case UnOp::kNeg:
          compileExpr(*e.a);
          emit(Op::kNeg, 0, 0, 0, e.line);
          return;
        case UnOp::kNot:
          compileExpr(*e.a);
          emit(Op::kNot, 0, 0, 0, e.line);
          return;
        case UnOp::kBitNot:
          compileExpr(*e.a);
          emit(Op::kBitNot, 0, 0, 0, e.line);
          return;
        default:
          compileIncDec(e);
          return;
      }
    case ExprKind::kAssign: compileAssign(e); return;
    case ExprKind::kTernary: {
      compileExpr(*e.a);
      const int jumpElse =
          emit(Op::kJumpIfFalse, 0, /*ternary=*/1, 0, e.line);
      compileExpr(*e.b);
      const int jumpEnd = emit(Op::kJump);
      patch(jumpElse, here());
      compileExpr(*e.c);
      patch(jumpEnd, here());
      return;
    }
    case ExprKind::kCall: compileCall(e); return;
    case ExprKind::kNew: {
      for (const auto& arg : e.args) compileExpr(*arg);
      // c = classId+1 when the resolver bound the class (program class,
      // not shadowed by a builtin) — the VM skips the builtin probe.
      const bool bound =
          e.callKind == jlang::CallKind::kConstruct && e.classId >= 0;
      emit(Op::kNewObject, owner_.nameIdx(e.strValue),
           static_cast<int>(e.args.size()), bound ? e.classId + 1 : 0,
           e.line);
      return;
    }
    case ExprKind::kNewArray: {
      for (const auto& dim : e.args) compileExpr(*dim);
      jlang::TypeRef leaf = e.type;
      leaf.arrayDims = 0;
      ValKind leafKind = jvm::kindOfType(leaf);
      if (e.type.arrayDims > 0) leafKind = ValKind::kRef;
      emit(Op::kNewArray, static_cast<int>(e.args.size()),
           static_cast<int>(leafKind), 0, e.line);
      return;
    }
    case ExprKind::kCast: {
      compileExpr(*e.a);
      const ValKind k = jvm::kindOfType(e.type);
      if (e.type.prim != Prim::kClass && e.type.arrayDims == 0) {
        emit(Op::kCast, static_cast<int>(k), 0, 0, e.line);
      }
      return;
    }
  }
  throw Error("unhandled expression kind in compiler");
}

// ------------------------------------------------------------ post passes
//
// Everything below runs on finished chunks: a max-stack dataflow (always)
// and the superinstruction peephole (unless disabled via CompileOptions).

/// Operand-stack effect of one instruction (pushes - pops). Terminators
/// (returns/throw) end propagation, so their effect is irrelevant.
int stackEffect(const Instr& in) {
  switch (in.op) {
    case Op::kConstInt: case Op::kConstLong: case Op::kConstFloat:
    case Op::kConstDouble: case Op::kConstStr: case Op::kConstChar:
    case Op::kConstBool: case Op::kConstNull:
    case Op::kLoad: case Op::kLoadThis:
    case Op::kGetThisField: case Op::kGetStatic:
    case Op::kGetThisFieldSlot: case Op::kGetStaticSlot:
    case Op::kDup:
      return 1;
    case Op::kStore: case Op::kPutThisField: case Op::kPutStatic:
    case Op::kPutThisFieldSlot: case Op::kPutStaticSlot:
    case Op::kJumpIfFalse: case Op::kJumpIfTrue:
    case Op::kBinary: case Op::kArrayGet: case Op::kPop:
    case Op::kReturnValue: case Op::kThrow:
      return -1;
    case Op::kPutField: case Op::kPutFieldCached:
      return -2;
    case Op::kArraySet:
      return -3;
    case Op::kNewArray:
      return 1 - in.a;
    case Op::kNewObject:
      return 1 - in.b;
    case Op::kCallStatic: case Op::kCallStaticResolved:
      return 1 - in.c;
    case Op::kCallUnqualified: case Op::kCallSelfResolved:
      return 1 - in.b;  // argc in b; `this` comes from slot 0, not the stack
    case Op::kCallVirtual: case Op::kCallVirtualCached:
      return -in.b;  // argc args + receiver popped, result pushed
    case Op::kPrint:
      return in.b != 0 ? 0 : 1;  // pops the argument if present, pushes null
    default:
      // kGetField/kGetFieldCached (obj -> value), unary ops, kCast, kBox,
      // kJump, kLoopTick, kTryTick, kReturnVoid: net zero. The peephole
      // runs after this pass, so superinstructions never appear here.
      return 0;
  }
}

bool isTerminator(Op op) {
  return op == Op::kReturnValue || op == Op::kReturnVoid ||
         op == Op::kThrow || op == Op::kJump;
}

/// Worklist dataflow computing the worst-case operand-stack depth. Runs on
/// pre-fusion code; fused instructions never exceed the depth of the runs
/// they replace (their handlers keep intermediates in C locals).
void computeMaxStack(Chunk& chunk) {
  const auto size = chunk.code.size();
  std::vector<int> depthAt(size, -1);
  std::vector<std::size_t> work;
  int maxDepth = 0;
  const auto enqueue = [&](std::size_t pc, int depth) {
    if (pc >= size) return;
    if (depthAt[pc] >= depth) return;
    depthAt[pc] = depth;
    if (depth > maxDepth) maxDepth = depth;
    work.push_back(pc);
  };
  if (size > 0) enqueue(0, 0);
  for (const auto& h : chunk.handlers) {
    // Handler entry: stack cleared, exception either stored to a slot or
    // left as the single stack entry.
    enqueue(static_cast<std::size_t>(h.handler), h.slot >= 0 ? 0 : 1);
  }
  while (!work.empty()) {
    const std::size_t pc = work.back();
    work.pop_back();
    const Instr& in = chunk.code[pc];
    const int after = depthAt[pc] + stackEffect(in);
    if (after > maxDepth) maxDepth = after;
    if (in.op == Op::kJump || in.op == Op::kJumpIfFalse ||
        in.op == Op::kJumpIfTrue) {
      enqueue(static_cast<std::size_t>(in.a), after);
    }
    if (!isTerminator(in.op)) enqueue(pc + 1, after);
  }
  chunk.maxStack = maxDepth;
}

constexpr std::int32_t kNoKindEnc = 15;  // 4-bit "no store coercion" marker

bool isCmp(BinOp op) {
  return op == BinOp::kLt || op == BinOp::kGt || op == BinOp::kLe ||
         op == BinOp::kGe || op == BinOp::kEq || op == BinOp::kNe;
}

/// Try to fuse the instruction run starting at `pc` into one
/// superinstruction. Interior positions must not be jump targets or
/// exception-table boundaries (`barrier`); operands must fit the packing
/// documented in code.hpp. Returns the run length (1 = no fusion).
std::size_t matchSuper(const std::vector<Instr>& c, std::size_t pc,
                       const std::vector<char>& barrier, Instr* out) {
  const std::size_t size = c.size();
  // A fusion candidate of length k needs pc+k <= size and no barrier on
  // any interior pc (the run's first pc may itself be a target).
  const auto runOk = [&](std::size_t k) {
    if (pc + k > size) return false;
    for (std::size_t i = 1; i < k; ++i) {
      if (barrier[pc + i]) return false;
    }
    return true;
  };
  const auto op = [&](std::size_t i) { return c[pc + i].op; };
  const auto in = [&](std::size_t i) -> const Instr& { return c[pc + i]; };
  const auto implicitCast = [&](std::size_t i) {
    return op(i) == Op::kCast && in(i).b == 1;
  };
  const auto storeEnc = [](const Instr& st) {
    return st.b < 0 ? kNoKindEnc : st.b;
  };
  const auto make = [&](Op sop, std::int32_t a, std::int32_t b,
                        std::int32_t cOperand, std::size_t len) {
    *out = Instr{sop, a, b, cOperand, in(0).line};
    out->n = static_cast<std::uint8_t>(len);
    return len;
  };

  switch (op(0)) {
    case Op::kLoad: {
      const std::int32_t s1 = in(0).a;
      // [kLoad kDup kConstInt kBinary (kCast) kStore kPop (kJump)] —
      // post-inc/dec statement on one local; with the trailing kJump it is
      // the canonical counted-loop latch (kIncDecJump).
      for (std::size_t len : {std::size_t{7}, std::size_t{6}}) {
        const bool cast = len == 7;
        if (!runOk(len)) continue;
        std::size_t i = 1;
        if (op(i) != Op::kDup) break;
        ++i;
        if (op(i) != Op::kConstInt) break;
        const std::int32_t pool = in(i).a;
        ++i;
        if (op(i) != Op::kBinary) break;
        const std::int32_t bop = in(i).a;
        ++i;
        std::int32_t castEnc = -1;
        if (cast) {
          if (!implicitCast(i)) continue;
          castEnc = in(i).a;
          ++i;
        }
        if (op(i) != Op::kStore || in(i).a != s1) break;
        const std::int32_t se = storeEnc(in(i));
        ++i;
        if (op(i) != Op::kPop) break;
        if (s1 >= (1 << 20) || bop >= 32 || se >= 16) break;
        // The latch form packs the cast kind into b to free c for the jump
        // target; its tighter slot field falls back to the plain form (and
        // a bare kJump) for slot numbers past 2^16.
        if (runOk(len + 1) && op(len) == Op::kJump && s1 < (1 << 16)) {
          const std::int32_t castE = castEnc < 0 ? kNoKindEnc : castEnc;
          return make(Op::kIncDecJump, pool,
                      s1 | bop << 16 | se << 21 | castE << 25, in(len).a,
                      len + 1);
        }
        return make(Op::kIncDecLocalStmt, pool, s1 | bop << 20 | se << 25,
                    castEnc, len);
      }
      // [kLoad kConstInt kBinary (kCast) kDup kStore kPop] — local
      // assignment statement `s2 = s1 <op> const`.
      for (std::size_t len : {std::size_t{7}, std::size_t{6}}) {
        const bool cast = len == 7;
        if (!runOk(len)) continue;
        std::size_t i = 1;
        if (op(i) != Op::kConstInt) break;
        const std::int32_t pool = in(i).a;
        ++i;
        if (op(i) != Op::kBinary) break;
        const std::int32_t bop = in(i).a;
        ++i;
        std::int32_t castEnc = -1;
        if (cast) {
          if (!implicitCast(i)) continue;
          castEnc = in(i).a;
          ++i;
        }
        if (op(i) != Op::kDup) break;
        ++i;
        if (op(i) != Op::kStore) break;
        const std::int32_t s2 = in(i).a;
        const std::int32_t se = storeEnc(in(i));
        ++i;
        if (op(i) != Op::kPop) break;
        if (s1 >= (1 << 10) || s2 >= (1 << 10) || bop >= 32 || se >= 16) break;
        return make(Op::kLoadConstBinStore, pool,
                    s1 | s2 << 10 | bop << 20 | se << 25, castEnc, len);
      }
      // [kLoad kConstInt kBinary(cmp) kJumpIfFalse (kLoopTick)] — the
      // canonical counted-loop header. Plain branch only (b=0): a ternary
      // branch charges kTernary and is left unfused.
      if (runOk(4) && op(1) == Op::kConstInt && op(2) == Op::kBinary &&
          isCmp(static_cast<BinOp>(in(2).a)) && op(3) == Op::kJumpIfFalse &&
          in(3).b == 0 && s1 < (1 << 20)) {
        const bool tick = runOk(5) && op(4) == Op::kLoopTick;
        const std::size_t len =
            make(Op::kLoadConstCmpJump, in(3).a,
                 s1 | in(2).a << 20 | (tick ? 1 : 0) << 26, in(1).a,
                 tick ? 5 : 4);
        // n covers only the unconditional 4-instruction prefix: the fused
        // kLoopTick executes (and is stepped by the handler) solely on
        // fall-through, while the taken exit runs 4 seed instructions.
        out->n = 4;
        return len;
      }
      if (runOk(4) && op(1) == Op::kLoad && op(2) == Op::kBinary &&
          isCmp(static_cast<BinOp>(in(2).a)) && op(3) == Op::kJumpIfFalse &&
          in(3).b == 0 && s1 < (1 << 10) && in(1).a < (1 << 10)) {
        const bool tick = runOk(5) && op(4) == Op::kLoopTick;
        const std::size_t len =
            make(Op::kLoadLoadCmpJump, in(3).a,
                 s1 | in(1).a << 10 | in(2).a << 20 | (tick ? 1 : 0) << 26,
                 0, tick ? 5 : 4);
        out->n = 4;  // tick stepped on fall-through only; see above
        return len;
      }
      // [kLoad kLoad kBinary kReturnValue] — e.g. `return a + b;`.
      if (runOk(4) && op(1) == Op::kLoad && op(2) == Op::kBinary &&
          op(3) == Op::kReturnValue && in(1).a < (1 << 20)) {
        return make(Op::kLoadLoadBinaryReturn, s1,
                    in(1).a | in(2).a << 20, 0, 4);
      }
      // [kLoad kLoad kConstInt kBinary kBinary (kCast) kDup kStore kPop] —
      // the accumulate statement `s1 = s1 <op2> (s2 <op1> const)`, e.g.
      // `acc = acc + (i & 7);`. Must precede the 4-long prefix match below.
      for (std::size_t len : {std::size_t{9}, std::size_t{8}}) {
        const bool cast = len == 9;
        if (!runOk(len)) continue;
        std::size_t i = 1;
        if (op(i) != Op::kLoad) break;
        const std::int32_t s2 = in(i).a;
        ++i;
        if (op(i) != Op::kConstInt) break;
        const std::int32_t pool = in(i).a;
        ++i;
        if (op(i) != Op::kBinary) break;
        const std::int32_t bop1 = in(i).a;
        ++i;
        if (op(i) != Op::kBinary) break;
        const std::int32_t bop2 = in(i).a;
        ++i;
        std::int32_t castEnc = -1;
        if (cast) {
          if (!implicitCast(i)) continue;
          castEnc = in(i).a;
          ++i;
        }
        if (op(i) != Op::kDup) break;
        ++i;
        if (op(i) != Op::kStore || in(i).a != s1) break;
        const std::int32_t se = storeEnc(in(i));
        ++i;
        if (op(i) != Op::kPop) break;
        if (s1 >= (1 << 10) || s2 >= (1 << 10) || bop1 >= 32 ||
            bop2 >= 32 || se >= 16 || castEnc >= 16) {
          break;
        }
        const std::int32_t castE = castEnc < 0 ? kNoKindEnc : castEnc;
        return make(Op::kAccumConstStmt, pool,
                    s1 | s2 << 10 | bop1 << 20 | bop2 << 25,
                    se | castE << 4, len);
      }
      // [kLoad kLoad kConstInt kBinary] — e.g. `a <op1> (b <op2> const)`
      // operand shapes; the compare-and-branch variants above match first.
      if (runOk(4) && op(1) == Op::kLoad && op(2) == Op::kConstInt &&
          op(3) == Op::kBinary && s1 < (1 << 10) && in(1).a < (1 << 10)) {
        return make(Op::kLoadLoadConstBinary, in(2).a,
                    s1 | in(1).a << 10 | in(3).a << 20, 0, 4);
      }
      // [kLoad kLoad kCall*] — argument loads feeding a resolved call
      // site. The call's own operands ride through unchanged in a and c;
      // argc (always < 1024) shares b with the two slots.
      if (runOk(3) && op(1) == Op::kLoad &&
          (op(2) == Op::kCallSelfResolved ||
           op(2) == Op::kCallVirtualCached) &&
          s1 < (1 << 10) && in(1).a < (1 << 10) && in(2).b < (1 << 10)) {
        return make(op(2) == Op::kCallSelfResolved ? Op::kLoadLoadCallSelf
                                                   : Op::kLoadLoadCallVirt,
                    in(2).a, in(2).b | s1 << 10 | in(1).a << 20, in(2).c, 3);
      }
      if (runOk(3) && op(1) == Op::kConstInt && op(2) == Op::kBinary &&
          s1 < (1 << 20)) {
        return make(Op::kLoadConstBinary, in(1).a, s1 | in(2).a << 20, 0, 3);
      }
      if (runOk(3) && op(1) == Op::kLoad && op(2) == Op::kBinary &&
          in(1).a < (1 << 20)) {
        return make(Op::kLoadLoadBinary, s1, in(1).a | in(2).a << 20, 0, 3);
      }
      if (runOk(2) && op(1) == Op::kReturnValue) {
        return make(Op::kLoadReturn, s1, 0, 0, 2);
      }
      if (runOk(2) && op(1) == Op::kLoad) {
        return make(Op::kLoadLoad, s1, in(1).a, 0, 2);
      }
      break;
    }
    case Op::kGetThisFieldSlot: {
      const std::int32_t off = in(0).a;
      // [kGetThisFieldSlot kGetThisFieldSlot kBinary (kCast) kDup
      //  kPutThisFieldSlot kPop kGetThisFieldSlot kReturnValue] — the
      // `f1 = f1 <op> f2; return f1;` method body, e.g. a counter bump.
      for (std::size_t len : {std::size_t{9}, std::size_t{8}}) {
        const bool cast = len == 9;
        if (!runOk(len)) continue;
        std::size_t i = 1;
        if (op(i) != Op::kGetThisFieldSlot) break;
        const std::int32_t off2 = in(i).a;
        ++i;
        if (op(i) != Op::kBinary) break;
        const std::int32_t bop = in(i).a;
        ++i;
        std::int32_t castEnc = -1;
        if (cast) {
          if (!implicitCast(i)) continue;
          castEnc = in(i).a;
          ++i;
        }
        if (op(i) != Op::kDup) break;
        ++i;
        if (op(i) != Op::kPutThisFieldSlot || in(i).a != off) break;
        ++i;
        if (op(i) != Op::kPop) break;
        ++i;
        if (op(i) != Op::kGetThisFieldSlot || in(i).a != off) break;
        ++i;
        if (op(i) != Op::kReturnValue) break;
        if (off >= (1 << 12) || off2 >= (1 << 12) || bop >= 32 ||
            castEnc >= 16) {
          break;
        }
        const std::int32_t castE = castEnc < 0 ? kNoKindEnc : castEnc;
        return make(Op::kThisFieldAccumReturn, off | off2 << 12,
                    bop | castE << 8, 0, len);
      }
      if (runOk(3) && op(1) == Op::kConstInt && op(2) == Op::kBinary &&
          off < (1 << 20)) {
        return make(Op::kThisFieldConstBinary, in(1).a, off | in(2).a << 20,
                    0, 3);
      }
      if (runOk(2) && op(1) == Op::kBinary) {
        return make(Op::kThisFieldBinary, off, in(1).a, 0, 2);
      }
      if (runOk(2) && op(1) == Op::kReturnValue) {
        return make(Op::kThisFieldReturn, off, 0, 0, 2);
      }
      break;
    }
    case Op::kConstInt:
      if (runOk(2) && op(1) == Op::kBinary) {
        return make(Op::kConstBinary, in(0).a, in(1).a, 0, 2);
      }
      break;
    case Op::kDup:
      if (runOk(3) && op(1) == Op::kStore && op(2) == Op::kPop) {
        return make(Op::kStorePop, in(1).a, in(1).b, 0, 3);
      }
      if (runOk(3) && op(1) == Op::kPutThisFieldSlot && op(2) == Op::kPop) {
        return make(Op::kPutThisFieldSlotPop, in(1).a, 0, 0, 3);
      }
      break;
    case Op::kBinary: {
      const std::int32_t bop = in(0).a;
      if (runOk(5) && implicitCast(1) && op(2) == Op::kDup &&
          op(3) == Op::kStore && op(4) == Op::kPop) {
        const std::int32_t se = storeEnc(in(3));
        if (bop < 256 && in(1).a < 256 && se < 256) {
          return make(Op::kBinCastStorePop, in(3).a,
                      bop | in(1).a << 8 | se << 16, 0, 5);
        }
      }
      if (runOk(2) && implicitCast(1)) {
        return make(Op::kBinaryCast, bop, in(1).a, 0, 2);
      }
      break;
    }
    default:
      break;
  }
  *out = in(0);
  return 1;
}

/// Second peephole pass, over already-fused code: merge a loop-body tail
/// statement with the kIncDecJump latch that follows it, so a steady-state
/// counted-loop iteration dispatches once for the whole tail. The merged
/// instruction replays both constituent charge sequences verbatim and
/// carries the combined seed run length in n. Targets inside the packed
/// operands are the pre-pass pcs; remapping happens in runFusePass like
/// any other jump operand.
std::size_t matchPair(const std::vector<Instr>& c, std::size_t pc,
                      const std::vector<char>& barrier, Instr* out) {
  *out = c[pc];
  if (pc + 2 > c.size() || barrier[pc + 1]) return 1;
  const Instr& i0 = c[pc];
  const Instr& i1 = c[pc + 1];
  if (i1.op != Op::kIncDecJump || i1.a >= (1 << 16) || i1.c >= (1 << 16)) {
    return 1;
  }
  const std::uint32_t lSlot = static_cast<std::uint32_t>(i1.b) & 0xFFFF;
  const std::uint32_t lBop = (static_cast<std::uint32_t>(i1.b) >> 16) & 0x1F;
  const std::uint32_t lStoreK =
      (static_cast<std::uint32_t>(i1.b) >> 21) & 0xF;
  const std::uint32_t lCastK = (static_cast<std::uint32_t>(i1.b) >> 25) & 0xF;
  const std::uint32_t pool = static_cast<std::uint32_t>(i1.a);
  const std::uint32_t target = static_cast<std::uint32_t>(i1.c);
  const auto emit = [&](Op sop, std::uint32_t a, std::uint32_t b,
                        std::uint32_t cOperand) {
    *out = Instr{sop, static_cast<std::int32_t>(a),
                 static_cast<std::int32_t>(b),
                 static_cast<std::int32_t>(cOperand), i0.line};
    out->n = static_cast<std::uint8_t>(i0.n + i1.n);
    return std::size_t{2};
  };
  switch (i0.op) {
    case Op::kAccumConstStmt: {
      const std::uint32_t b0 = static_cast<std::uint32_t>(i0.b);
      const std::uint32_t s1 = b0 & 0x3FF;
      const std::uint32_t s2 = (b0 >> 10) & 0x3FF;
      if (s2 != lSlot || s1 >= (1 << 8) || s2 >= (1 << 8) ||
          i0.a >= (1 << 16)) {
        return 1;
      }
      const std::uint32_t c0 = static_cast<std::uint32_t>(i0.c);
      return emit(Op::kAccumConstJump,
                  static_cast<std::uint32_t>(i0.a) | pool << 16,
                  s1 | s2 << 8 | ((b0 >> 20) & 0x1F) << 16 |
                      ((b0 >> 25) & 0x1F) << 21 | lBop << 26,
                  target | (c0 & 0xF) << 16 | ((c0 >> 4) & 0xF) << 20 |
                      lStoreK << 24 | lCastK << 28);
    }
    case Op::kStorePop: {
      if (i0.a >= (1 << 10) || lSlot >= (1 << 10) || i0.b >= 15) return 1;
      const std::uint32_t storeKS =
          i0.b < 0 ? kNoKindEnc : static_cast<std::uint32_t>(i0.b);
      return emit(Op::kStorePopIncDecJump, pool | target << 16,
                  static_cast<std::uint32_t>(i0.a) | lSlot << 10 |
                      lBop << 20,
                  storeKS | lStoreK << 4 | lCastK << 8);
    }
    case Op::kBinCastStorePop: {
      const std::uint32_t b0 = static_cast<std::uint32_t>(i0.b);
      const std::uint32_t bopS = b0 & 0xFF;
      const std::uint32_t castKS = (b0 >> 8) & 0xFF;
      const std::uint32_t storeKS = (b0 >> 16) & 0xFF;
      if (i0.a >= (1 << 8) || lSlot >= (1 << 8) || bopS >= 32 ||
          castKS >= 16 || storeKS >= 16) {
        return 1;
      }
      return emit(Op::kBinCastStoreIncDecJump, pool | target << 16,
                  static_cast<std::uint32_t>(i0.a) | lSlot << 8 |
                      bopS << 16 | lBop << 21,
                  storeKS | castKS << 4 | lStoreK << 8 | lCastK << 12);
    }
    default:
      return 1;
  }
}

/// Third peephole pass: collapse a whole counted accumulate loop —
/// [kLoadConstCmpJump][kAccumConstJump] with the cmp testing the latch
/// slot, the false-exit falling through past the pair, and the backedge
/// returning to the cmp — into one self-dispatching instruction. n is the
/// cmp run's unconditional prefix (4, the only part an exiting iteration
/// executes); the handler accounts the tick and the body run separately on
/// the taken path, so step totals stay exact on both paths.
std::size_t matchLoop(const std::vector<Instr>& c, std::size_t pc,
                      const std::vector<char>& barrier, Instr* out) {
  *out = c[pc];
  if (pc + 2 > c.size() || barrier[pc + 1]) return 1;
  const Instr& i0 = c[pc];
  const Instr& i1 = c[pc + 1];
  if (i0.op != Op::kLoadConstCmpJump || i1.op != Op::kAccumConstJump) {
    return 1;
  }
  const std::uint32_t b0 = static_cast<std::uint32_t>(i0.b);
  const std::uint32_t b1 = static_cast<std::uint32_t>(i1.b);
  const std::uint32_t c1 = static_cast<std::uint32_t>(i1.c);
  const std::uint32_t tick = (b0 >> 26) & 1;
  const std::uint32_t castK1 = (c1 >> 20) & 0xF;
  const std::uint32_t castKL = c1 >> 28;
  if (i0.a != static_cast<std::int32_t>(pc) + 2 ||       // exit falls through
      (c1 & 0xFFFF) != pc ||                             // backedge to cmp
      (b0 & 0xFFFFF) != ((b1 >> 8) & 0xFF) ||            // cmp slot == s2
      i0.c >= (1 << 16) || (i1.a >> 16) >= (1 << 10) ||
      // The handler derives each part's seed run length from the encoding;
      // refuse shapes where that derivation would not hold.
      i0.n != 4 ||
      i1.n != 15 + (castK1 != 15 ? 1 : 0) + (castKL != 15 ? 1 : 0)) {
    return 1;
  }
  *out = Instr{Op::kCountedAccumLoop,
               static_cast<std::int32_t>(static_cast<std::uint32_t>(i0.c) |
                                         (static_cast<std::uint32_t>(i1.a) &
                                          0xFFFFu)
                                             << 16),
               i1.b,
               static_cast<std::int32_t>(
                   (static_cast<std::uint32_t>(i1.a) >> 16) |
                   ((b0 >> 20) & 0x1F) << 10 | tick << 15 |
                   (c1 >> 16) << 16),
               i0.line};
  out->n = i0.n;
  return 2;
}

/// Every pc a jump operand or handler boundary can name, for the barrier
/// set and the post-pass remap. Understands the fused jump forms too, so
/// later passes can run over earlier passes' output.
template <typename Fn>
void visitJumpOperands(Instr& in, Fn&& fn) {
  switch (in.op) {
    case Op::kJump:
    case Op::kJumpIfFalse:
    case Op::kJumpIfTrue:
    case Op::kLoadConstCmpJump:
    case Op::kLoadLoadCmpJump:
      in.a = fn(in.a);
      break;
    case Op::kIncDecJump:
      in.c = fn(in.c);
      break;
    case Op::kAccumConstJump: {
      const std::uint32_t cc = static_cast<std::uint32_t>(in.c);
      in.c = static_cast<std::int32_t>(
          (cc & ~0xFFFFu) |
          static_cast<std::uint32_t>(fn(static_cast<std::int32_t>(
              cc & 0xFFFF))));
      break;
    }
    case Op::kStorePopIncDecJump:
    case Op::kBinCastStoreIncDecJump: {
      const std::uint32_t aa = static_cast<std::uint32_t>(in.a);
      in.a = static_cast<std::int32_t>(
          (aa & 0xFFFFu) |
          static_cast<std::uint32_t>(
              fn(static_cast<std::int32_t>(aa >> 16)))
              << 16);
      break;
    }
    default:
      break;
  }
}

/// One greedy left-to-right fusion pass: jump-target and exception-range
/// barriers, match, then pc remapping of every jump operand and
/// exception-table entry.
void runFusePass(Chunk& chunk,
                 std::size_t (*match)(const std::vector<Instr>&, std::size_t,
                                      const std::vector<char>&, Instr*)) {
  std::vector<Instr>& code = chunk.code;
  if (code.empty()) return;

  std::vector<char> barrier(code.size() + 1, 0);
  barrier[0] = 1;
  for (Instr& in : code) {
    visitJumpOperands(in, [&](std::int32_t t) {
      barrier[static_cast<std::size_t>(t)] = 1;
      return t;
    });
  }
  for (const auto& h : chunk.handlers) {
    barrier[static_cast<std::size_t>(h.start)] = 1;
    barrier[static_cast<std::size_t>(h.end)] = 1;
    barrier[static_cast<std::size_t>(h.handler)] = 1;
  }

  std::vector<Instr> fused;
  fused.reserve(code.size());
  // Old pc -> new pc. Interior pcs of a fused run map to the run's new pc;
  // that case never feeds a jump or handler operand because interior pcs
  // are barrier-free by construction.
  std::vector<std::int32_t> newPcOf(code.size() + 1, 0);
  std::size_t pc = 0;
  while (pc < code.size()) {
    Instr out;
    const std::size_t len = match(code, pc, barrier, &out);
    for (std::size_t i = 0; i < len; ++i) {
      newPcOf[pc + i] = static_cast<std::int32_t>(fused.size());
    }
    fused.push_back(out);
    pc += len;
  }
  newPcOf[code.size()] = static_cast<std::int32_t>(fused.size());

  for (Instr& in : fused) {
    visitJumpOperands(
        in, [&](std::int32_t t) { return newPcOf[static_cast<std::size_t>(t)]; });
  }
  for (auto& h : chunk.handlers) {
    h.start = newPcOf[static_cast<std::size_t>(h.start)];
    h.end = newPcOf[static_cast<std::size_t>(h.end)];
    h.handler = newPcOf[static_cast<std::size_t>(h.handler)];
  }
  chunk.code = std::move(fused);
}

/// The peephole: run-level fusion over the seed code, the loop-tail pair
/// pass over its output, then the whole-loop pass over that.
void fuseChunk(Chunk& chunk) {
  runFusePass(chunk, matchSuper);
  runFusePass(chunk, matchPair);
  runFusePass(chunk, matchLoop);
}

// ---------------------------------------------------------------------------

CompiledProgram ProgramCompiler::run() {
  // Resolve before lowering: the resolver stamps every class/method/field
  // with ids and slots, and every bound name site compiles straight to a
  // slot-resolved opcode.
  res_ = jlang::ensureResolved(program_);
  out_.resolution = res_;
  for (const auto& unit : program_.units) {
    for (const auto& cls : unit.classes) {
      CompiledClass compiled;
      compiled.name = cls.name;
      compiled.classId = cls.classId;
      for (const auto& f : cls.fields) {
        compiled.fields.push_back(CompiledField{
            f.name, jvm::kindOfType(f.type), f.isStatic});
      }
      {
        MethodCompiler mc(*this, cls, /*isStatic=*/true);
        compiled.clinit = mc.compileFieldInits(cls, /*staticFields=*/true);
      }
      {
        MethodCompiler mc(*this, cls, /*isStatic=*/false);
        compiled.initFields =
            mc.compileFieldInits(cls, /*staticFields=*/false);
      }
      for (const auto& m : cls.methods) {
        MethodCompiler mc(*this, cls, m.isStatic);
        compiled.methods.emplace(m.name, mc.compileMethod(m));
        if (m.name == "main" && m.isStatic) compiled.hasMain = true;
      }
      out_.classes.emplace(cls.name, std::move(compiled));
    }
  }
  // Post passes over every chunk: dense chunk ids (the VM's quickening
  // key), the pre-fusion max-stack dataflow, then the peephole.
  std::uint32_t nextChunkId = 0;
  const auto finishChunk = [&](Chunk& chunk) {
    chunk.chunkId = nextChunkId++;
    computeMaxStack(chunk);
    if (options_.fuseSuperinstructions) fuseChunk(chunk);
  };
  for (auto& [name, cls] : out_.classes) {
    finishChunk(cls.clinit);
    finishChunk(cls.initFields);
    for (auto& [mname, chunk] : cls.methods) finishChunk(chunk);
  }
  out_.chunkCount = nextChunkId;
  return std::move(out_);
}

}  // namespace

CompiledProgram compile(const Program& program) {
  return ProgramCompiler(program, CompileOptions{}).run();
}

CompiledProgram compile(const Program& program,
                        const CompileOptions& options) {
  return ProgramCompiler(program, options).run();
}

std::string disassemble(const Chunk& chunk, const CompiledProgram& program) {
  std::string out = chunk.qualifiedName + " (slots=" +
                    std::to_string(chunk.numSlots) + ")\n";
  for (std::size_t pc = 0; pc < chunk.code.size(); ++pc) {
    const Instr& in = chunk.code[pc];
    out += "  " + std::to_string(pc) + ": op" +
           std::to_string(static_cast<int>(in.op)) + " a=" +
           std::to_string(in.a) + " b=" + std::to_string(in.b);
    if (in.op == Op::kConstStr || in.op == Op::kGetStatic ||
        in.op == Op::kGetField || in.op == Op::kCallVirtual ||
        in.op == Op::kGetFieldCached || in.op == Op::kPutFieldCached ||
        in.op == Op::kCallVirtualCached) {
      out += " (" + program.names.at(static_cast<std::size_t>(in.a)) + ")";
    }
    if (in.n > 1) out += " n=" + std::to_string(static_cast<int>(in.n));
    out += "\n";
  }
  for (const auto& h : chunk.handlers) {
    out += "  handler [" + std::to_string(h.start) + "," +
           std::to_string(h.end) + ") -> " + std::to_string(h.handler) +
           "\n";
  }
  return out;
}

}  // namespace jepo::jbc
