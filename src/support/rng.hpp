// Deterministic random number generation.
//
// Every stochastic component in the reproduction (dataset generator, random
// forests, measurement-noise model, corpus seeding) draws from SplitMix64 /
// Xoshiro256** instances seeded explicitly, so each experiment is bit-for-bit
// repeatable and independent streams never alias.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "support/error.hpp"

namespace jepo {

/// SplitMix64: used to expand a user seed into stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Derive a task-private seed from a base seed and up to three stream
/// coordinates (e.g. classifier, code style, run index). Each coordinate is
/// diffused through its own SplitMix64 step before mixing, so adjacent
/// coordinates land in unrelated streams — the scheme behind the parallel
/// experiment runner's determinism guarantee: a task's RNG depends only on
/// *which* task it is, never on which thread runs it or in what order.
inline std::uint64_t deriveSeed(std::uint64_t base, std::uint64_t a,
                                std::uint64_t b = 0,
                                std::uint64_t c = 0) noexcept {
  SplitMix64 mix(base);
  std::uint64_t seed = mix.next();
  seed ^= SplitMix64(a ^ 0x8ba563d9f99c2a11ULL).next();
  seed = seed * 0x9e3779b97f4a7c15ULL + SplitMix64(b ^ 0x3c79ac492ba7b653ULL).next();
  seed ^= SplitMix64(c ^ 0x1c69b3f74ac4fb91ULL).next();
  return SplitMix64(seed).next();
}

/// Xoshiro256** — the workhorse generator. Satisfies
/// UniformRandomBitGenerator so it composes with <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed1e55ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double nextDouble() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) with rejection to avoid modulo bias.
  std::uint64_t nextBelow(std::uint64_t bound) {
    JEPO_REQUIRE(bound > 0, "bound must be positive");
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t nextInt(std::int64_t lo, std::int64_t hi) {
    JEPO_REQUIRE(lo <= hi, "empty range");
    return lo + static_cast<std::int64_t>(
                    nextBelow(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Standard normal via Marsaglia polar method.
  double nextGaussian() noexcept {
    if (haveSpare_) {
      haveSpare_ = false;
      return spare_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
      u = 2.0 * nextDouble() - 1.0;
      v = 2.0 * nextDouble() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    haveSpare_ = true;
    return u * mul;
  }

  /// Derive an independent child stream (for per-fold / per-tree RNGs).
  Rng split() noexcept { return Rng((*this)() ^ 0x9e3779b97f4a7c15ULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
  double spare_ = 0.0;
  bool haveSpare_ = false;
};

}  // namespace jepo
