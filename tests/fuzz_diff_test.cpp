// Cross-engine differential fuzzer: seeded random MiniJava programs run on
// both the tree interpreter and the bytecode VM, which must agree on
//
//   - printed output (byte-for-byte),
//   - the multiset of instrumented method names (the compiler's synthetic
//     <clinit>/<initfields> chunks are filtered out),
//   - the per-op energy-meter counts, hence the simulated joules. One
//     engine-inherent delta is modeled exactly: the bytecode VM charges
//     kLocalAccess for every invocation argument slot *including `this`*,
//     while the tree interpreter binds `this` without a charge — so bcvm's
//     kLocalAccess count must exceed the tree's by exactly the number of
//     instance invocations (constructors + instance-method calls), which
//     the test counts from the method records. Every other op count must
//     match exactly. Half the seeds ("strict" mode) contain no instance
//     constructs at all; for those the joules/seconds of an uninstrumented
//     run (one terminal pricing sync, so joules are a pure function of the
//     counts) must also be bit-identical. Ternaries, short-circuit operators,
//     qualified field stores and array stores are excluded by the grammar
//     because bytecode legitimately compiles them to different charge
//     sequences (see tests/support/progen.cpp).
//
// Each program then reruns per engine under a tiny heap limit that forces
// multiple mark-compact collections; the observables must stay bit-identical
// to the unlimited run — GC is host-time only.
//
// Environment knobs:
//   JEPO_FUZZ_RUNS=N   number of generated programs (default 200)
//   JEPO_FUZZ_SEED=N   base seed for the derived stream (default below)
//   JEPO_FUZZ_ONLY=N   replay exactly one derived seed (as printed by a
//                      failure) and dump its source
#include <gtest/gtest.h>

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "energy/machine.hpp"
#include "energy/op.hpp"
#include "jbc/bcvm.hpp"
#include "jbc/compiler.hpp"
#include "jlang/parser.hpp"
#include "jvm/instrumenter.hpp"
#include "jvm/interpreter.hpp"
#include "support/rng.hpp"
#include "tests/support/progen.hpp"

namespace {

using namespace jepo;

constexpr std::uint64_t kDefaultBaseSeed = 0x6a65706f2d667aULL;  // "jepo-fz"
constexpr int kDefaultRuns = 200;
constexpr std::size_t kFuzzHeapLimit = 48;
constexpr std::uint64_t kMaxSteps = 20'000'000;

/// Strict u64 parse for seed knobs: decimal or 0x-prefixed hex, the exact
/// inverse of replayBanner's `JEPO_FUZZ_ONLY=0x%llx`. Rejects what
/// strtoull would quietly accept-or-mangle — leading signs/whitespace
/// (strtoull *negates* "-1" into 2^64-1), trailing junk, and out-of-range
/// values (strtoull saturates to ULLONG_MAX with only errno to show for
/// it) — so a replayed seed either round-trips bit-exactly or fails.
bool parseU64(const char* v, std::uint64_t* out) {
  if (v == nullptr || *v == '\0') return false;
  if (!std::isdigit(static_cast<unsigned char>(v[0]))) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(v, &end, 0);
  if (end == v || *end != '\0' || errno == ERANGE) return false;
  *out = n;
  return true;
}

std::uint64_t envU64(const char* name, std::uint64_t fallback, bool* set) {
  if (set != nullptr) *set = false;
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  std::uint64_t n = 0;
  if (!parseU64(v, &n)) {
    // A mangled replay seed must fail loudly: silently falling back here
    // would fuzz 200 fresh seeds instead of replaying the one requested.
    ADD_FAILURE() << name << "='" << v
                  << "' is not a valid u64 (decimal or 0x hex)";
    return fallback;
  }
  if (set != nullptr) *set = true;
  return n;
}

struct RunResult {
  std::string out;
  std::uint64_t pkgBits = 0;
  std::uint64_t coreBits = 0;
  std::uint64_t dramBits = 0;
  std::uint64_t secondsBits = 0;
  // method name -> execution count, compiler-synthetic chunks excluded
  std::map<std::string, int> methods;
  energy::OpArray<std::uint64_t> counts{};
  // constructor + instance-method executions, counted from the records
  std::uint64_t instanceInvocations = 0;
  std::uint64_t collections = 0;
  std::string error;  // non-empty when the run threw

  bool sameObservables(const RunResult& o) const {
    return error == o.error && out == o.out && pkgBits == o.pkgBits &&
           coreBits == o.coreBits && dramBits == o.dramBits &&
           secondsBits == o.secondsBits && methods == o.methods &&
           counts == o.counts;
  }
};

// Generator naming: helper classes are H<i>, instance methods m<digit>,
// constructors share the class name, statics are t<digit> and Main.main.
bool isInstanceRecord(const std::string& method) {
  const std::size_t dot = method.rfind('.');
  if (dot == std::string::npos) return false;
  const std::string cls = method.substr(0, dot);
  const std::string m = method.substr(dot + 1);
  if (m == cls) return true;  // constructor
  return m.size() >= 2 && m[0] == 'm' && std::isdigit(
      static_cast<unsigned char>(m[1]));
}

std::uint64_t doubleBits(double d) {
  std::uint64_t u = 0;
  static_assert(sizeof u == sizeof d);
  std::memcpy(&u, &d, sizeof u);
  return u;
}

void finish(RunResult& r, energy::SimMachine& machine, const std::string& out,
            const jvm::Instrumenter& inst) {
  const energy::MachineSample s = machine.sample();
  r.out = out;
  r.pkgBits = doubleBits(s.packageJoules);
  r.coreBits = doubleBits(s.coreJoules);
  r.dramBits = doubleBits(s.dramJoules);
  r.secondsBits = doubleBits(s.seconds);
  for (const auto& rec : inst.records()) {
    if (rec.method.find('<') != std::string::npos) continue;
    ++r.methods[rec.method];
    if (isInstanceRecord(rec.method)) ++r.instanceInvocations;
  }
  r.counts = machine.meter().counts();
}

// `withHooks=false` skips the instrumenter: the machine then prices all
// counts in one terminal sync, making the joules a pure function of the op
// counts (hook-driven mid-run sampling partitions the float accumulation
// differently per engine, which can shift the last ulp).
RunResult runTree(const testgen::GeneratedProgram& p, std::size_t heapLimit,
                  bool withHooks = true) {
  RunResult r;
  try {
    const jlang::Program prog = jlang::Parser::parseProgram(p.name, p.source);
    energy::SimMachine machine;
    jvm::Interpreter interp(prog, machine);
    interp.setHeapLimit(heapLimit);
    jvm::Instrumenter inst(machine);
    if (withHooks) interp.setHooks(&inst);
    interp.setMaxSteps(kMaxSteps);
    interp.runMain();
    finish(r, machine, interp.output(), inst);
    r.collections = interp.gc().collections();
  } catch (const std::exception& e) {
    r.error = e.what();
  }
  return r;
}

RunResult runBcvm(const testgen::GeneratedProgram& p, std::size_t heapLimit,
                  bool withHooks = true) {
  RunResult r;
  try {
    const jlang::Program prog = jlang::Parser::parseProgram(p.name, p.source);
    const jbc::CompiledProgram compiled = jbc::compile(prog);
    energy::SimMachine machine;
    jbc::BytecodeVm vm(compiled, machine);
    vm.setHeapLimit(heapLimit);
    jvm::Instrumenter inst(machine);
    if (withHooks) vm.setHooks(&inst);
    vm.setMaxSteps(kMaxSteps);
    vm.runMain();
    finish(r, machine, vm.output(), inst);
    r.collections = vm.gc().collections();
  } catch (const std::exception& e) {
    r.error = e.what();
  }
  return r;
}

std::string describe(const RunResult& r) {
  std::string s;
  if (!r.error.empty()) return "error: " + r.error;
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "pkg=%016llx core=%016llx dram=%016llx sec=%016llx out=%zuB",
                static_cast<unsigned long long>(r.pkgBits),
                static_cast<unsigned long long>(r.coreBits),
                static_cast<unsigned long long>(r.dramBits),
                static_cast<unsigned long long>(r.secondsBits),
                r.out.size());
  s = buf;
  s += " methods={";
  for (const auto& [name, count] : r.methods)
    s += name + "x" + std::to_string(count) + " ";
  s += "}";
  return s;
}

std::string replayBanner(std::uint64_t seed,
                         const testgen::GeneratedProgram& p) {
  char buf[96];
  std::snprintf(buf, sizeof buf,
                "replay: JEPO_FUZZ_ONLY=0x%llx ./fuzz_diff_test",
                static_cast<unsigned long long>(seed));
  return std::string(buf) + "\n---- generated program " + p.name +
         " ----\n" + p.source + "----\n";
}

// Checks one derived seed; returns false on any divergence so the caller
// can cap the failure spam. `*strict` reports whether the program had zero
// instance invocations (the joule-bit-identical flavor).
bool checkSeed(std::uint64_t seed, bool* strict = nullptr) {
  const testgen::GeneratedProgram p = testgen::generateProgram(seed);
  const RunResult tree = runTree(p, 0);
  const RunResult bcvm = runBcvm(p, 0);
  if (strict != nullptr) *strict = tree.instanceInvocations == 0;

  // A generator-produced program must execute cleanly on both engines.
  if (!tree.error.empty() || !bcvm.error.empty()) {
    ADD_FAILURE() << "generated program failed to run\n"
                  << "  tree: " << (tree.error.empty() ? "ok" : tree.error)
                  << "\n  bcvm: " << (bcvm.error.empty() ? "ok" : bcvm.error)
                  << "\n" << replayBanner(seed, p);
    return false;
  }

  bool ok = true;
  if (tree.out != bcvm.out) {
    ADD_FAILURE() << "engines disagree on stdout\n"
                  << "  tree: " << tree.out << "  bcvm: " << bcvm.out
                  << replayBanner(seed, p);
    ok = false;
  }
  // Per-op counts must match exactly, except for the bytecode VM's charged
  // `this` slot: +1 kLocalAccess per instance invocation (see file header).
  energy::OpArray<std::uint64_t> expected = tree.counts;
  expected[energy::opIndex(energy::Op::kLocalAccess)] +=
      tree.instanceInvocations;
  if (expected != bcvm.counts) {
    std::string diff;
    for (std::size_t i = 0; i < energy::kOpCount; ++i) {
      if (expected[i] == bcvm.counts[i]) continue;
      diff += "  " +
              std::string(energy::opName(static_cast<energy::Op>(i))) +
              ": expected " + std::to_string(expected[i]) + " bcvm " +
              std::to_string(bcvm.counts[i]) + "\n";
    }
    ADD_FAILURE() << "engines disagree on op counts ("
                  << tree.instanceInvocations
                  << " instance invocations modeled)\n"
                  << diff << replayBanner(seed, p);
    ok = false;
  }
  // With zero instance invocations the raw counts are identical, so the
  // joules priced from them must be bit-identical too. Compared on
  // hook-free runs: a single terminal sync makes the joules a pure
  // function of the counts (see runTree).
  if (tree.instanceInvocations == 0) {
    const RunResult treeBare = runTree(p, 0, /*withHooks=*/false);
    const RunResult bcvmBare = runBcvm(p, 0, /*withHooks=*/false);
    if (treeBare.pkgBits != bcvmBare.pkgBits ||
        treeBare.coreBits != bcvmBare.coreBits ||
        treeBare.dramBits != bcvmBare.dramBits ||
        treeBare.secondsBits != bcvmBare.secondsBits) {
      ADD_FAILURE() << "engines disagree on simulated energy\n  tree "
                    << describe(treeBare) << "\n  bcvm " << describe(bcvmBare)
                    << "\n" << replayBanner(seed, p);
      ok = false;
    }
  }
  if (tree.methods != bcvm.methods) {
    ADD_FAILURE() << "engines disagree on the method-record multiset\n  tree "
                  << describe(tree) << "\n  bcvm " << describe(bcvm) << "\n"
                  << replayBanner(seed, p);
    ok = false;
  }
  if (!ok) return false;

  // GC must be invisible: rerun each engine under a heap limit small enough
  // to force collections and require bit-identical observables.
  const RunResult treeGc = runTree(p, kFuzzHeapLimit);
  const RunResult bcvmGc = runBcvm(p, kFuzzHeapLimit);
  if (!treeGc.sameObservables(tree)) {
    ADD_FAILURE() << "tree engine diverged under heap limit "
                  << kFuzzHeapLimit << "\n  unlimited " << describe(tree)
                  << "\n  limited   " << describe(treeGc) << "\n"
                  << replayBanner(seed, p);
    ok = false;
  }
  if (!bcvmGc.sameObservables(bcvm)) {
    ADD_FAILURE() << "bytecode engine diverged under heap limit "
                  << kFuzzHeapLimit << "\n  unlimited " << describe(bcvm)
                  << "\n  limited   " << describe(bcvmGc) << "\n"
                  << replayBanner(seed, p);
    ok = false;
  }
  // The churn loop every program ends with must actually trigger the
  // collector, or the bit-identity check above proves nothing.
  EXPECT_GT(treeGc.collections, 0u) << replayBanner(seed, p);
  EXPECT_GT(bcvmGc.collections, 0u) << replayBanner(seed, p);
  return ok;
}

TEST(FuzzDiff, ReplaySeedEnvRoundTrips) {
  // A seed printed by replayBanner ("JEPO_FUZZ_ONLY=0x%llx") must come back
  // bit-exact through envU64, including the high bit. Use a scratch variable
  // so a real JEPO_FUZZ_ONLY in the environment can't interfere.
  constexpr const char* kVar = "JEPO_FUZZ_ONLY_ROUNDTRIP_TEST";
  const std::uint64_t seeds[] = {0, 1, kDefaultBaseSeed,
                                 deriveSeed(kDefaultBaseSeed, 7),
                                 0xFFFFFFFFFFFFFFFFULL};
  for (const std::uint64_t seed : seeds) {
    char banner[32];
    std::snprintf(banner, sizeof banner, "0x%llx",
                  static_cast<unsigned long long>(seed));
    ASSERT_EQ(::setenv(kVar, banner, 1), 0);
    bool set = false;
    EXPECT_EQ(envU64(kVar, 42, &set), seed) << banner;
    EXPECT_TRUE(set) << banner;

    // The decimal spelling a user might type by hand round-trips too.
    std::snprintf(banner, sizeof banner, "%llu",
                  static_cast<unsigned long long>(seed));
    ASSERT_EQ(::setenv(kVar, banner, 1), 0);
    set = false;
    EXPECT_EQ(envU64(kVar, 42, &set), seed) << banner;
    EXPECT_TRUE(set) << banner;
  }
  ASSERT_EQ(::unsetenv(kVar), 0);

  // Unset / empty use the fallback without claiming the knob was set.
  bool set = true;
  EXPECT_EQ(envU64(kVar, 42, &set), 42u);
  EXPECT_FALSE(set);
  ASSERT_EQ(::setenv(kVar, "", 1), 0);
  set = true;
  EXPECT_EQ(envU64(kVar, 42, &set), 42u);
  EXPECT_FALSE(set);
  ASSERT_EQ(::unsetenv(kVar), 0);

  // Mangled spellings are rejected outright rather than quietly wrapped,
  // saturated, or truncated into fuzzing some other seed.
  std::uint64_t out = 0;
  EXPECT_FALSE(parseU64(nullptr, &out));
  EXPECT_FALSE(parseU64("", &out));
  EXPECT_FALSE(parseU64("0x", &out));
  EXPECT_FALSE(parseU64("0xfz", &out));
  EXPECT_FALSE(parseU64("123junk", &out));
  EXPECT_FALSE(parseU64("-1", &out));                    // strtoull would wrap
  EXPECT_FALSE(parseU64("+1", &out));
  EXPECT_FALSE(parseU64(" 1", &out));
  EXPECT_FALSE(parseU64("18446744073709551616", &out));  // 2^64 saturates
  EXPECT_FALSE(parseU64("0x10000000000000000", &out));
}

TEST(FuzzDiff, GeneratorIsDeterministic) {
  const testgen::GeneratedProgram a = testgen::generateProgram(1234);
  const testgen::GeneratedProgram b = testgen::generateProgram(1234);
  const testgen::GeneratedProgram c = testgen::generateProgram(1235);
  EXPECT_EQ(a.source, b.source);
  EXPECT_EQ(a.name, b.name);
  EXPECT_NE(a.source, c.source);
}

TEST(FuzzDiff, EnginesAgreeOnGeneratedPrograms) {
  bool onlySet = false;
  const std::uint64_t only = envU64("JEPO_FUZZ_ONLY", 0, &onlySet);
  if (onlySet) {
    const testgen::GeneratedProgram p = testgen::generateProgram(only);
    std::fputs(replayBanner(only, p).c_str(), stderr);
    EXPECT_TRUE(checkSeed(only));
    return;
  }

  const std::uint64_t base =
      envU64("JEPO_FUZZ_SEED", kDefaultBaseSeed, nullptr);
  const int runs = static_cast<int>(envU64(
      "JEPO_FUZZ_RUNS", static_cast<std::uint64_t>(kDefaultRuns), nullptr));
  int failures = 0;
  int strictSeeds = 0;
  for (int i = 0; i < runs; ++i) {
    const std::uint64_t seed = deriveSeed(base, static_cast<std::uint64_t>(i));
    bool strict = false;
    if (!checkSeed(seed, &strict)) ++failures;
    if (strict) ++strictSeeds;
    ASSERT_LT(failures, 3) << "stopping after repeated divergence — replay "
                              "individual seeds with JEPO_FUZZ_ONLY";
  }
  // About half the seeds must exercise the joule-bit-identical flavor, or
  // the energy comparison silently loses its strongest form.
  EXPECT_GE(strictSeeds, runs / 8)
      << "generator mode split drifted; strict seeds " << strictSeeds
      << " of " << runs;
}

}  // namespace
