// Table III reproduction: the MOA airlines schema — attribute names and
// types, distinct-value counts for the nominal attributes, and the
// instance count — measured from the generated dataset.
//
// Flags: --instances=<n>  rows to generate (default 539,383, the MOA size)
#include "bench_common.hpp"

#include "data/airlines.hpp"

int main(int argc, char** argv) {
  using namespace jepo;
  bench::Flags flags(argc, argv, {"instances"});
  bench::BenchReport report("bench_table3_dataset", flags);
  data::AirlinesConfig cfg;
  cfg.instances = static_cast<std::size_t>(
      flags.getInt("instances", static_cast<long>(cfg.instances)));
  report.config("instances", cfg.instances);

  bench::printHeader("Table III — MOA airlines data");
  const ml::Instances data = data::generateAirlines(cfg);

  TextTable schema({"Attributes", "Type", "Distinct values observed"},
                   {Align::kLeft, Align::kLeft, Align::kRight});
  for (std::size_t a = 0; a < data.numAttributes(); ++a) {
    const ml::Attribute& attr = data.attribute(a);
    std::string type;
    if (static_cast<int>(a) == data.classIndex()) {
      type = "Binary";
    } else {
      type = attr.isNominal() ? "Nominal" : "Numeric";
    }
    std::string distinct = "-";
    if (attr.isNominal()) {
      std::vector<bool> seen(attr.numLabels(), false);
      for (std::size_t i = 0; i < data.numInstances(); ++i) {
        seen[static_cast<std::size_t>(data.value(i, a))] = true;
      }
      std::size_t count = 0;
      for (bool s : seen) count += s;
      distinct = std::to_string(count);
    }
    schema.addRow({attr.name(), type, distinct});
    report.addRow(
        {{"attribute", attr.name()},
         {"type", type},
         {"distinct", attr.isNominal() ? JsonValue(std::strtol(
                                             distinct.c_str(), nullptr, 10))
                                       : JsonValue()}});
  }
  std::fputs(schema.render().c_str(), stdout);

  std::size_t delayed = 0;
  for (std::size_t i = 0; i < data.numInstances(); ++i) {
    delayed += data.classValue(i) == 1;
  }
  std::printf("\nInstances: %s (paper: 539,383)\n",
              withCommas(static_cast<long long>(data.numInstances())).c_str());
  std::printf("Delayed fraction: %s%%\n",
              fixed(100.0 * static_cast<double>(delayed) /
                        static_cast<double>(data.numInstances()),
                    2)
                  .c_str());
  std::printf("Airlines: %zu distinct labels (paper: 18)\n",
              data.attribute(0).numLabels());
  std::printf("Airports: %zu distinct labels (paper: 293)\n",
              data.attribute(2).numLabels());
  report.config("delayedFraction",
                static_cast<double>(delayed) /
                    static_cast<double>(data.numInstances()));
  return report.finish();
}
