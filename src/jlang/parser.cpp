#include "jlang/parser.hpp"

#include "jlang/lexer.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace jepo::jlang {

namespace {

/// Binary operator precedence (higher binds tighter); -1 = not a binary op.
int binPrec(Tok t) {
  switch (t) {
    case Tok::kPipePipe: return 1;
    case Tok::kAmpAmp: return 2;
    case Tok::kPipe: return 3;
    case Tok::kCaret: return 4;
    case Tok::kAmp: return 5;
    case Tok::kEqEq:
    case Tok::kNotEq: return 6;
    case Tok::kLt:
    case Tok::kGt:
    case Tok::kLe:
    case Tok::kGe: return 7;
    case Tok::kShl:
    case Tok::kShr: return 8;
    case Tok::kPlus:
    case Tok::kMinus: return 9;
    case Tok::kStar:
    case Tok::kSlash:
    case Tok::kPercent: return 10;
    default: return -1;
  }
}

BinOp binOpFor(Tok t) {
  switch (t) {
    case Tok::kPipePipe: return BinOp::kOrOr;
    case Tok::kAmpAmp: return BinOp::kAndAnd;
    case Tok::kPipe: return BinOp::kBitOr;
    case Tok::kCaret: return BinOp::kBitXor;
    case Tok::kAmp: return BinOp::kBitAnd;
    case Tok::kEqEq: return BinOp::kEq;
    case Tok::kNotEq: return BinOp::kNe;
    case Tok::kLt: return BinOp::kLt;
    case Tok::kGt: return BinOp::kGt;
    case Tok::kLe: return BinOp::kLe;
    case Tok::kGe: return BinOp::kGe;
    case Tok::kShl: return BinOp::kShl;
    case Tok::kShr: return BinOp::kShr;
    case Tok::kPlus: return BinOp::kAdd;
    case Tok::kMinus: return BinOp::kSub;
    case Tok::kStar: return BinOp::kMul;
    case Tok::kSlash: return BinOp::kDiv;
    case Tok::kPercent: return BinOp::kMod;
    default: throw Error("not a binary operator token");
  }
}

bool isPrimTypeToken(Tok t) {
  switch (t) {
    case Tok::kKwByte:
    case Tok::kKwShort:
    case Tok::kKwInt:
    case Tok::kKwLong:
    case Tok::kKwFloat:
    case Tok::kKwDouble:
    case Tok::kKwChar:
    case Tok::kKwBoolean:
    case Tok::kKwVoid:
      return true;
    default:
      return false;
  }
}

Prim primFor(Tok t) {
  switch (t) {
    case Tok::kKwByte: return Prim::kByte;
    case Tok::kKwShort: return Prim::kShort;
    case Tok::kKwInt: return Prim::kInt;
    case Tok::kKwLong: return Prim::kLong;
    case Tok::kKwFloat: return Prim::kFloat;
    case Tok::kKwDouble: return Prim::kDouble;
    case Tok::kKwChar: return Prim::kChar;
    case Tok::kKwBoolean: return Prim::kBoolean;
    case Tok::kKwVoid: return Prim::kVoid;
    default: throw Error("not a primitive type token");
  }
}

}  // namespace

Parser::Parser(std::string fileName, std::string_view source)
    : fileName_(std::move(fileName)) {
  tokens_ = Lexer(source).tokenize();
}

Program Parser::parseProgram(std::string fileName, std::string_view source) {
  Parser p(std::move(fileName), source);
  Program prog;
  prog.units.push_back(p.parseUnit());
  return prog;
}

const Token& Parser::peek(std::size_t ahead) const {
  const std::size_t i = pos_ + ahead;
  return i < tokens_.size() ? tokens_[i] : tokens_.back();
}

const Token& Parser::advance() {
  const Token& t = peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::match(Tok t) {
  if (!check(t)) return false;
  advance();
  return true;
}

const Token& Parser::expect(Tok t, const std::string& what) {
  if (!check(t)) {
    fail("expected " + tokName(t) + " (" + what + "), found " +
         tokName(peek().type));
  }
  return advance();
}

void Parser::fail(const std::string& msg) const {
  throw ParseError(fileName_ + ": " + msg, peek().line, peek().col);
}

std::string Parser::parseQualifiedName() {
  std::string name = expect(Tok::kIdentifier, "qualified name").text;
  while (match(Tok::kDot)) {
    name += '.';
    name += expect(Tok::kIdentifier, "qualified name part").text;
  }
  return name;
}

CompilationUnit Parser::parseUnit() {
  static obs::Counter& parsedUnits =
      obs::Registry::global().counter("jlang.parsedUnits");
  parsedUnits.add();
  obs::Span span("jlang.parse");
  CompilationUnit unit;
  unit.fileName = fileName_;
  if (match(Tok::kKwPackage)) {
    unit.packageName = parseQualifiedName();
    expect(Tok::kSemicolon, "after package declaration");
  }
  while (match(Tok::kKwImport)) {
    unit.imports.push_back(parseQualifiedName());
    expect(Tok::kSemicolon, "after import");
  }
  while (!check(Tok::kEof)) {
    unit.classes.push_back(parseClass());
  }
  return unit;
}

ClassDecl Parser::parseClass() {
  while (match(Tok::kKwPublic) || match(Tok::kKwPrivate) ||
         match(Tok::kKwFinal)) {
  }
  const Token& kw = expect(Tok::kKwClass, "class declaration");
  ClassDecl cls;
  cls.line = kw.line;
  cls.name = expect(Tok::kIdentifier, "class name").text;
  expect(Tok::kLBrace, "class body");
  while (!check(Tok::kRBrace)) {
    parseMember(cls);
  }
  expect(Tok::kRBrace, "end of class body");
  return cls;
}

void Parser::parseMember(ClassDecl& cls) {
  bool isStatic = false;
  for (;;) {
    if (match(Tok::kKwStatic)) {
      isStatic = true;
    } else if (match(Tok::kKwPublic) || match(Tok::kKwPrivate) ||
               match(Tok::kKwFinal)) {
      // access modifiers carry no energy meaning; accepted and dropped
    } else {
      break;
    }
  }

  const int line = peek().line;

  // Constructor: ClassName(...) — no return type; modeled as a method named
  // like the class with a void return.
  if (peek().type == Tok::kIdentifier && peek().text == cls.name &&
      peek(1).type == Tok::kLParen) {
    MethodDecl ctor;
    ctor.name = cls.name;
    ctor.line = line;
    ctor.returnType = TypeRef::scalar(Prim::kVoid);
    advance();  // class name
    expect(Tok::kLParen, "constructor parameter list");
    if (!check(Tok::kRParen)) {
      do {
        Param p;
        p.type = parseType();
        p.name = expect(Tok::kIdentifier, "parameter name").text;
        ctor.params.push_back(std::move(p));
      } while (match(Tok::kComma));
    }
    expect(Tok::kRParen, "end of constructor parameters");
    ctor.body = parseBlock();
    cls.methods.push_back(std::move(ctor));
    return;
  }

  TypeRef type = parseType();
  const std::string name = expect(Tok::kIdentifier, "member name").text;

  if (check(Tok::kLParen)) {
    MethodDecl m;
    m.name = name;
    m.isStatic = isStatic;
    m.returnType = type;
    m.line = line;
    expect(Tok::kLParen, "parameter list");
    if (!check(Tok::kRParen)) {
      do {
        Param p;
        p.type = parseType();
        p.name = expect(Tok::kIdentifier, "parameter name").text;
        m.params.push_back(std::move(p));
      } while (match(Tok::kComma));
    }
    expect(Tok::kRParen, "end of parameter list");
    m.body = parseBlock();
    cls.methods.push_back(std::move(m));
    return;
  }

  // Field (possibly a comma-separated group sharing one type).
  std::string declName = name;
  for (;;) {
    FieldDecl f;
    f.type = type;
    f.name = declName;
    f.isStatic = isStatic;
    f.line = line;
    if (match(Tok::kAssign)) f.init = parseExpr();
    cls.fields.push_back(std::move(f));
    if (!match(Tok::kComma)) break;
    declName = expect(Tok::kIdentifier, "field name").text;
  }
  expect(Tok::kSemicolon, "after field declaration");
}

TypeRef Parser::parseType() {
  TypeRef t;
  if (isPrimTypeToken(peek().type)) {
    t.prim = primFor(advance().type);
  } else {
    t.prim = Prim::kClass;
    t.className = expect(Tok::kIdentifier, "type name").text;
  }
  while (check(Tok::kLBracket) && peek(1).type == Tok::kRBracket) {
    advance();
    advance();
    ++t.arrayDims;
  }
  return t;
}

bool Parser::looksLikeType() const {
  // A statement starts a declaration iff it starts with a primitive type, or
  // with `Ident Ident`, `Ident [ ] Ident`, or `Ident [ ] [ ] Ident`.
  if (isPrimTypeToken(peek().type)) return true;
  if (peek().type != Tok::kIdentifier) return false;
  std::size_t i = 1;
  while (peek(i).type == Tok::kLBracket && peek(i + 1).type == Tok::kRBracket) {
    i += 2;
  }
  return peek(i).type == Tok::kIdentifier;
}

StmtPtr Parser::parseBlock() {
  const Token& open = expect(Tok::kLBrace, "block");
  auto block = std::make_unique<Stmt>(StmtKind::kBlock);
  block->line = open.line;
  block->col = open.col;
  while (!check(Tok::kRBrace)) {
    block->body.push_back(parseStmt());
  }
  expect(Tok::kRBrace, "end of block");
  return block;
}

StmtPtr Parser::parseVarDecl(bool requireSemicolon) {
  auto stmt = std::make_unique<Stmt>(StmtKind::kVarDecl);
  stmt->line = peek().line;
  stmt->col = peek().col;
  while (match(Tok::kKwFinal)) {
  }
  stmt->declType = parseType();
  stmt->declName = expect(Tok::kIdentifier, "variable name").text;
  if (match(Tok::kAssign)) stmt->init = parseExpr();
  if (requireSemicolon) expect(Tok::kSemicolon, "after variable declaration");
  return stmt;
}

StmtPtr Parser::parseStmt() {
  switch (peek().type) {
    case Tok::kLBrace: return parseBlock();
    case Tok::kKwIf: return parseIf();
    case Tok::kKwWhile: return parseWhile();
    case Tok::kKwFor: return parseFor();
    case Tok::kKwTry: return parseTry();
    case Tok::kKwSwitch: return parseSwitch();
    case Tok::kKwReturn: {
      const Token& kw = advance();
      auto stmt = std::make_unique<Stmt>(StmtKind::kReturn);
      stmt->line = kw.line;
      stmt->col = kw.col;
      if (!check(Tok::kSemicolon)) stmt->expr = parseExpr();
      expect(Tok::kSemicolon, "after return");
      return stmt;
    }
    case Tok::kKwThrow: {
      const Token& kw = advance();
      auto stmt = std::make_unique<Stmt>(StmtKind::kThrow);
      stmt->line = kw.line;
      stmt->col = kw.col;
      stmt->expr = parseExpr();
      expect(Tok::kSemicolon, "after throw");
      return stmt;
    }
    case Tok::kKwBreak: {
      const Token& kw = advance();
      auto stmt = std::make_unique<Stmt>(StmtKind::kBreak);
      stmt->line = kw.line;
      stmt->col = kw.col;
      expect(Tok::kSemicolon, "after break");
      return stmt;
    }
    case Tok::kKwContinue: {
      const Token& kw = advance();
      auto stmt = std::make_unique<Stmt>(StmtKind::kContinue);
      stmt->line = kw.line;
      stmt->col = kw.col;
      expect(Tok::kSemicolon, "after continue");
      return stmt;
    }
    default:
      break;
  }
  if (looksLikeType() || peek().type == Tok::kKwFinal) {
    return parseVarDecl(/*requireSemicolon=*/true);
  }
  auto stmt = std::make_unique<Stmt>(StmtKind::kExprStmt);
  stmt->line = peek().line;
  stmt->col = peek().col;
  stmt->expr = parseExpr();
  expect(Tok::kSemicolon, "after expression statement");
  return stmt;
}

StmtPtr Parser::parseIf() {
  const Token& kw = expect(Tok::kKwIf, "if");
  auto stmt = std::make_unique<Stmt>(StmtKind::kIf);
  stmt->line = kw.line;
  stmt->col = kw.col;
  expect(Tok::kLParen, "if condition");
  stmt->cond = parseExpr();
  expect(Tok::kRParen, "end of if condition");
  stmt->thenStmt = parseStmt();
  if (match(Tok::kKwElse)) stmt->elseStmt = parseStmt();
  return stmt;
}

StmtPtr Parser::parseWhile() {
  const Token& kw = expect(Tok::kKwWhile, "while");
  auto stmt = std::make_unique<Stmt>(StmtKind::kWhile);
  stmt->line = kw.line;
  stmt->col = kw.col;
  expect(Tok::kLParen, "while condition");
  stmt->cond = parseExpr();
  expect(Tok::kRParen, "end of while condition");
  stmt->thenStmt = parseStmt();
  return stmt;
}

StmtPtr Parser::parseFor() {
  const Token& kw = expect(Tok::kKwFor, "for");
  auto stmt = std::make_unique<Stmt>(StmtKind::kFor);
  stmt->line = kw.line;
  stmt->col = kw.col;
  expect(Tok::kLParen, "for header");

  if (!check(Tok::kSemicolon)) {
    if (looksLikeType() || peek().type == Tok::kKwFinal) {
      stmt->body.push_back(parseVarDecl(/*requireSemicolon=*/false));
    } else {
      auto init = std::make_unique<Stmt>(StmtKind::kExprStmt);
      init->line = peek().line;
      init->col = peek().col;
      init->expr = parseExpr();
      stmt->body.push_back(std::move(init));
    }
  }
  expect(Tok::kSemicolon, "after for-init");

  if (!check(Tok::kSemicolon)) stmt->cond = parseExpr();
  expect(Tok::kSemicolon, "after for-condition");

  if (!check(Tok::kRParen)) {
    do {
      stmt->update.push_back(parseExpr());
    } while (match(Tok::kComma));
  }
  expect(Tok::kRParen, "end of for header");
  stmt->thenStmt = parseStmt();
  return stmt;
}

StmtPtr Parser::parseTry() {
  const Token& kw = expect(Tok::kKwTry, "try");
  auto stmt = std::make_unique<Stmt>(StmtKind::kTry);
  stmt->line = kw.line;
  stmt->col = kw.col;
  stmt->tryBlock = parseBlock();
  while (check(Tok::kKwCatch)) {
    advance();
    expect(Tok::kLParen, "catch parameter");
    CatchClause clause;
    clause.exceptionClass = expect(Tok::kIdentifier, "exception type").text;
    clause.varName = expect(Tok::kIdentifier, "exception variable").text;
    expect(Tok::kRParen, "end of catch parameter");
    clause.body = parseBlock();
    stmt->catches.push_back(std::move(clause));
  }
  if (match(Tok::kKwFinally)) stmt->finallyBlock = parseBlock();
  if (stmt->catches.empty() && !stmt->finallyBlock) {
    fail("try requires at least one catch or a finally");
  }
  return stmt;
}

StmtPtr Parser::parseSwitch() {
  const Token& kw = expect(Tok::kKwSwitch, "switch");
  auto stmt = std::make_unique<Stmt>(StmtKind::kSwitch);
  stmt->line = kw.line;
  stmt->col = kw.col;
  expect(Tok::kLParen, "switch selector");
  stmt->cond = parseExpr();
  expect(Tok::kRParen, "end of switch selector");
  expect(Tok::kLBrace, "switch body");
  while (!check(Tok::kRBrace)) {
    SwitchCase sc;
    if (match(Tok::kKwDefault)) {
      sc.isDefault = true;
    } else {
      expect(Tok::kKwCase, "case label");
      bool negative = match(Tok::kMinus);
      const Token& lit = peek();
      if (lit.type != Tok::kIntLiteral && lit.type != Tok::kCharLiteral) {
        fail("case label must be an int or char literal");
      }
      advance();
      sc.value = negative ? -lit.intValue : lit.intValue;
    }
    expect(Tok::kColon, "after case label");
    while (!check(Tok::kKwCase) && !check(Tok::kKwDefault) &&
           !check(Tok::kRBrace)) {
      sc.body.push_back(parseStmt());
    }
    stmt->cases.push_back(std::move(sc));
  }
  expect(Tok::kRBrace, "end of switch body");
  return stmt;
}

ExprPtr Parser::parseExpr() { return parseAssignment(); }

ExprPtr Parser::parseAssignment() {
  ExprPtr lhs = parseTernary();
  AssignOp op;
  switch (peek().type) {
    case Tok::kAssign: op = AssignOp::kSet; break;
    case Tok::kPlusAssign: op = AssignOp::kAdd; break;
    case Tok::kMinusAssign: op = AssignOp::kSub; break;
    case Tok::kStarAssign: op = AssignOp::kMul; break;
    case Tok::kSlashAssign: op = AssignOp::kDiv; break;
    case Tok::kPercentAssign: op = AssignOp::kMod; break;
    default: return lhs;
  }
  if (lhs->kind != ExprKind::kVarRef && lhs->kind != ExprKind::kFieldAccess &&
      lhs->kind != ExprKind::kArrayIndex) {
    fail("assignment target must be a variable, field or array element");
  }
  const Token& opTok = advance();
  auto node = std::make_unique<Expr>(ExprKind::kAssign);
  node->line = opTok.line;
  node->col = opTok.col;
  node->assignOp = op;
  node->a = std::move(lhs);
  node->b = parseAssignment();  // right-associative
  return node;
}

ExprPtr Parser::parseTernary() {
  ExprPtr cond = parseBinary(1);
  if (!check(Tok::kQuestion)) return cond;
  const Token& q = advance();
  auto node = std::make_unique<Expr>(ExprKind::kTernary);
  node->line = q.line;
  node->col = q.col;
  node->a = std::move(cond);
  node->b = parseExpr();
  expect(Tok::kColon, "ternary else branch");
  node->c = parseTernary();
  return node;
}

ExprPtr Parser::parseBinary(int minPrec) {
  ExprPtr lhs = parseUnary();
  for (;;) {
    const int prec = binPrec(peek().type);
    if (prec < minPrec) return lhs;
    const Token& opTok = advance();
    ExprPtr rhs = parseBinary(prec + 1);  // all binary ops left-associative
    auto node = std::make_unique<Expr>(ExprKind::kBinary);
    node->line = opTok.line;
    node->col = opTok.col;
    node->binOp = binOpFor(opTok.type);
    node->a = std::move(lhs);
    node->b = std::move(rhs);
    lhs = std::move(node);
  }
}

ExprPtr Parser::parseUnary() {
  const Token& t = peek();
  UnOp op;
  switch (t.type) {
    case Tok::kMinus: op = UnOp::kNeg; break;
    case Tok::kBang: op = UnOp::kNot; break;
    case Tok::kTilde: op = UnOp::kBitNot; break;
    case Tok::kPlusPlus: op = UnOp::kPreInc; break;
    case Tok::kMinusMinus: op = UnOp::kPreDec; break;
    case Tok::kPlus:
      advance();  // unary plus is a no-op
      return parseUnary();
    case Tok::kLParen: {
      // Cast: "( type )" followed by a unary expression. Distinguish from a
      // parenthesized expression by lookahead.
      const bool primCast =
          isPrimTypeToken(peek(1).type) && peek(2).type == Tok::kRParen;
      const bool classCast = peek(1).type == Tok::kIdentifier &&
                             peek(2).type == Tok::kRParen &&
                             (peek(3).type == Tok::kIdentifier ||
                              peek(3).type == Tok::kLParen ||
                              peek(3).type == Tok::kIntLiteral ||
                              peek(3).type == Tok::kDoubleLiteral ||
                              peek(3).type == Tok::kFloatLiteral ||
                              peek(3).type == Tok::kStringLiteral ||
                              peek(3).type == Tok::kKwNew ||
                              peek(3).type == Tok::kKwThis);
      if (primCast || classCast) {
        const Token& open = advance();
        auto node = std::make_unique<Expr>(ExprKind::kCast);
        node->line = open.line;
        node->col = open.col;
        node->type = parseType();
        expect(Tok::kRParen, "end of cast");
        node->a = parseUnary();
        return node;
      }
      return parsePostfix();
    }
    default:
      return parsePostfix();
  }
  advance();
  auto node = std::make_unique<Expr>(ExprKind::kUnary);
  node->line = t.line;
  node->col = t.col;
  node->unOp = op;
  node->a = parseUnary();
  if ((op == UnOp::kPreInc || op == UnOp::kPreDec) &&
      node->a->kind != ExprKind::kVarRef &&
      node->a->kind != ExprKind::kFieldAccess &&
      node->a->kind != ExprKind::kArrayIndex) {
    fail("++/-- target must be a variable, field or array element");
  }
  return node;
}

ExprPtr Parser::parsePostfix() {
  ExprPtr e = parsePrimary();
  for (;;) {
    if (check(Tok::kDot)) {
      advance();
      const Token& name = expect(Tok::kIdentifier, "member name");
      if (check(Tok::kLParen)) {
        auto call = std::make_unique<Expr>(ExprKind::kCall);
        call->line = name.line;
        call->col = name.col;
        call->strValue = name.text;
        call->a = std::move(e);
        advance();
        if (!check(Tok::kRParen)) {
          do {
            call->args.push_back(parseExpr());
          } while (match(Tok::kComma));
        }
        expect(Tok::kRParen, "end of call arguments");
        e = std::move(call);
      } else {
        auto fld = std::make_unique<Expr>(ExprKind::kFieldAccess);
        fld->line = name.line;
        fld->col = name.col;
        fld->strValue = name.text;
        fld->a = std::move(e);
        e = std::move(fld);
      }
    } else if (check(Tok::kLBracket)) {
      const Token& open = advance();
      auto idx = std::make_unique<Expr>(ExprKind::kArrayIndex);
      idx->line = open.line;
      idx->col = open.col;
      idx->a = std::move(e);
      idx->b = parseExpr();
      expect(Tok::kRBracket, "end of array index");
      e = std::move(idx);
    } else if (check(Tok::kPlusPlus) || check(Tok::kMinusMinus)) {
      const Token& opTok = advance();
      auto node = std::make_unique<Expr>(ExprKind::kUnary);
      node->line = opTok.line;
      node->col = opTok.col;
      node->unOp = opTok.type == Tok::kPlusPlus ? UnOp::kPostInc
                                                : UnOp::kPostDec;
      if (e->kind != ExprKind::kVarRef && e->kind != ExprKind::kFieldAccess &&
          e->kind != ExprKind::kArrayIndex) {
        fail("++/-- target must be a variable, field or array element");
      }
      node->a = std::move(e);
      e = std::move(node);
    } else {
      return e;
    }
  }
}

ExprPtr Parser::parsePrimary() {
  const Token& t = peek();
  switch (t.type) {
    case Tok::kIntLiteral: {
      advance();
      auto e = std::make_unique<Expr>(ExprKind::kIntLit);
      e->line = t.line;
      e->col = t.col;
      e->intValue = t.intValue;
      return e;
    }
    case Tok::kLongLiteral: {
      advance();
      auto e = std::make_unique<Expr>(ExprKind::kLongLit);
      e->line = t.line;
      e->col = t.col;
      e->intValue = t.intValue;
      return e;
    }
    case Tok::kFloatLiteral: {
      advance();
      auto e = std::make_unique<Expr>(ExprKind::kFloatLit);
      e->line = t.line;
      e->col = t.col;
      e->floatValue = t.floatValue;
      e->scientific = t.scientific;
      e->strValue = t.text;
      return e;
    }
    case Tok::kDoubleLiteral: {
      advance();
      auto e = std::make_unique<Expr>(ExprKind::kDoubleLit);
      e->line = t.line;
      e->col = t.col;
      e->floatValue = t.floatValue;
      e->scientific = t.scientific;
      e->strValue = t.text;
      return e;
    }
    case Tok::kCharLiteral: {
      advance();
      auto e = std::make_unique<Expr>(ExprKind::kCharLit);
      e->line = t.line;
      e->col = t.col;
      e->intValue = t.intValue;
      e->strValue = t.text;
      return e;
    }
    case Tok::kStringLiteral: {
      advance();
      auto e = std::make_unique<Expr>(ExprKind::kStringLit);
      e->line = t.line;
      e->col = t.col;
      e->strValue = t.text;
      return e;
    }
    case Tok::kKwTrue:
    case Tok::kKwFalse: {
      advance();
      auto e = std::make_unique<Expr>(ExprKind::kBoolLit);
      e->line = t.line;
      e->col = t.col;
      e->intValue = t.type == Tok::kKwTrue ? 1 : 0;
      return e;
    }
    case Tok::kKwNull: {
      advance();
      auto e = std::make_unique<Expr>(ExprKind::kNullLit);
      e->line = t.line;
      e->col = t.col;
      return e;
    }
    case Tok::kKwThis: {
      advance();
      auto e = std::make_unique<Expr>(ExprKind::kVarRef);
      e->line = t.line;
      e->col = t.col;
      e->strValue = "this";
      return e;
    }
    case Tok::kIdentifier: {
      advance();
      if (check(Tok::kLParen)) {
        // Unqualified call: method of the current class.
        auto call = std::make_unique<Expr>(ExprKind::kCall);
        call->line = t.line;
        call->col = t.col;
        call->strValue = t.text;
        advance();
        if (!check(Tok::kRParen)) {
          do {
            call->args.push_back(parseExpr());
          } while (match(Tok::kComma));
        }
        expect(Tok::kRParen, "end of call arguments");
        return call;
      }
      auto e = std::make_unique<Expr>(ExprKind::kVarRef);
      e->line = t.line;
      e->col = t.col;
      e->strValue = t.text;
      return e;
    }
    case Tok::kKwNew: {
      advance();
      TypeRef type = [&] {
        if (isPrimTypeToken(peek().type)) {
          return TypeRef::scalar(primFor(advance().type));
        }
        return TypeRef::ofClass(expect(Tok::kIdentifier, "type name").text);
      }();
      if (check(Tok::kLBracket)) {
        auto arr = std::make_unique<Expr>(ExprKind::kNewArray);
        arr->line = t.line;
        arr->col = t.col;
        arr->type = type;
        while (match(Tok::kLBracket)) {
          if (check(Tok::kRBracket)) {
            // trailing empty dims: new int[5][]
            advance();
            ++arr->type.arrayDims;
            continue;
          }
          arr->args.push_back(parseExpr());
          expect(Tok::kRBracket, "end of array dimension");
        }
        return arr;
      }
      JEPO_REQUIRE(type.prim == Prim::kClass,
                   "cannot 'new' a primitive without array brackets");
      auto obj = std::make_unique<Expr>(ExprKind::kNew);
      obj->line = t.line;
      obj->col = t.col;
      obj->strValue = type.className;
      expect(Tok::kLParen, "constructor arguments");
      if (!check(Tok::kRParen)) {
        do {
          obj->args.push_back(parseExpr());
        } while (match(Tok::kComma));
      }
      expect(Tok::kRParen, "end of constructor arguments");
      return obj;
    }
    case Tok::kLParen: {
      advance();
      ExprPtr inner = parseExpr();
      expect(Tok::kRParen, "closing parenthesis");
      return inner;
    }
    default:
      fail("unexpected token " + tokName(t.type) + " in expression");
  }
}

}  // namespace jepo::jlang
