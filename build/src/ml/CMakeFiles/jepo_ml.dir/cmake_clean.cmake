file(REMOVE_RECURSE
  "CMakeFiles/jepo_ml.dir/bayes.cpp.o"
  "CMakeFiles/jepo_ml.dir/bayes.cpp.o.d"
  "CMakeFiles/jepo_ml.dir/codestyle.cpp.o"
  "CMakeFiles/jepo_ml.dir/codestyle.cpp.o.d"
  "CMakeFiles/jepo_ml.dir/dataset.cpp.o"
  "CMakeFiles/jepo_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/jepo_ml.dir/encoding.cpp.o"
  "CMakeFiles/jepo_ml.dir/encoding.cpp.o.d"
  "CMakeFiles/jepo_ml.dir/evaluation.cpp.o"
  "CMakeFiles/jepo_ml.dir/evaluation.cpp.o.d"
  "CMakeFiles/jepo_ml.dir/factory.cpp.o"
  "CMakeFiles/jepo_ml.dir/factory.cpp.o.d"
  "CMakeFiles/jepo_ml.dir/filters.cpp.o"
  "CMakeFiles/jepo_ml.dir/filters.cpp.o.d"
  "CMakeFiles/jepo_ml.dir/forest.cpp.o"
  "CMakeFiles/jepo_ml.dir/forest.cpp.o.d"
  "CMakeFiles/jepo_ml.dir/lazy.cpp.o"
  "CMakeFiles/jepo_ml.dir/lazy.cpp.o.d"
  "CMakeFiles/jepo_ml.dir/linear.cpp.o"
  "CMakeFiles/jepo_ml.dir/linear.cpp.o.d"
  "CMakeFiles/jepo_ml.dir/report.cpp.o"
  "CMakeFiles/jepo_ml.dir/report.cpp.o.d"
  "CMakeFiles/jepo_ml.dir/selector.cpp.o"
  "CMakeFiles/jepo_ml.dir/selector.cpp.o.d"
  "CMakeFiles/jepo_ml.dir/smo.cpp.o"
  "CMakeFiles/jepo_ml.dir/smo.cpp.o.d"
  "CMakeFiles/jepo_ml.dir/tree.cpp.o"
  "CMakeFiles/jepo_ml.dir/tree.cpp.o.d"
  "libjepo_ml.a"
  "libjepo_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jepo_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
