#include "jvm/heap.hpp"

#include "jlang/resolve.hpp"

namespace jepo::jvm {

Ref Heap::allocObject(std::string className, const jlang::ClassLayout& layout) {
  HeapObject& o = push();
  o.kind = ObjKind::kObject;
  o.className = std::move(className);
  o.layout = &layout;
  o.fields.assign(layout.fieldNames.size(), Value::null());
  return static_cast<Ref>(count_ - 1);
}

}  // namespace jepo::jvm
