#include "obs/span.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>

namespace jepo::obs {

namespace {

/// One thread's flight recorder. push() is called only by the owning
/// thread; the mutex exists for the (rare) cross-thread snapshot, capacity
/// change and clear, so the hot path takes an uncontended lock.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<SpanEvent> ring;
  std::size_t capacity = 0;
  std::size_t head = 0;  // next overwrite position once full
  std::uint64_t dropped = 0;
  std::uint32_t tid = 0;

  void push(SpanEvent e) {
    std::lock_guard lock(mu);
    if (capacity == 0) {
      ++dropped;
      return;
    }
    if (ring.size() < capacity) {
      ring.push_back(std::move(e));
      return;
    }
    ring[head] = std::move(e);
    head = (head + 1) % capacity;
    ++dropped;
  }

  /// Chronological copy (oldest surviving event first).
  void snapshotInto(std::vector<SpanEvent>& out) {
    std::lock_guard lock(mu);
    if (ring.size() < capacity) {
      out.insert(out.end(), ring.begin(), ring.end());
      return;
    }
    out.insert(out.end(), ring.begin() + static_cast<std::ptrdiff_t>(head),
               ring.end());
    out.insert(out.end(), ring.begin(),
               ring.begin() + static_cast<std::ptrdiff_t>(head));
  }

  void reset(std::size_t newCapacity) {
    std::lock_guard lock(mu);
    ring.clear();
    ring.shrink_to_fit();
    capacity = newCapacity;
    head = 0;
    dropped = 0;
  }
};

struct CollectorState {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::size_t capacity = 1 << 16;
  std::uint32_t nextTid = 0;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
};

CollectorState& state() {
  static CollectorState s;
  return s;
}

struct OpenSpan {
  std::string name;
  double startUs = 0.0;
};

struct ThreadLocalTrace {
  std::shared_ptr<ThreadBuffer> buffer;
  std::vector<OpenSpan> open;

  ThreadBuffer& ensureBuffer() {
    if (!buffer) {
      buffer = std::make_shared<ThreadBuffer>();
      CollectorState& s = state();
      std::lock_guard lock(s.mu);
      buffer->capacity = s.capacity;
      buffer->tid = s.nextTid++;
      s.buffers.push_back(buffer);
    }
    return *buffer;
  }
};

ThreadLocalTrace& tls() {
  thread_local ThreadLocalTrace t;
  return t;
}

}  // namespace

double nowMicros() noexcept {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - state().epoch)
      .count();
}

void beginSpan(std::string_view name) {
  if (!enabled()) return;
  ThreadLocalTrace& t = tls();
  t.ensureBuffer();
  t.open.push_back({std::string(name), nowMicros()});
}

void endSpan() {
  ThreadLocalTrace& t = tls();
  if (t.open.empty()) return;  // begin was gated off or toggled mid-span
  OpenSpan span = std::move(t.open.back());
  t.open.pop_back();
  SpanEvent e;
  e.name = std::move(span.name);
  e.startUs = span.startUs;
  e.durUs = nowMicros() - span.startUs;
  ThreadBuffer& buf = t.ensureBuffer();
  e.tid = buf.tid;
  e.depth = static_cast<std::uint32_t>(t.open.size());
  buf.push(std::move(e));
}

std::vector<SpanEvent> TraceCollector::events() {
  // Copy the buffer list under the registry lock, then snapshot each buffer
  // under its own lock (buffers are shared_ptrs, so threads that already
  // exited still contribute their events).
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    CollectorState& s = state();
    std::lock_guard lock(s.mu);
    buffers = s.buffers;
  }
  std::vector<SpanEvent> out;
  for (const auto& buf : buffers) buf->snapshotInto(out);
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     return a.startUs < b.startUs;
                   });
  return out;
}

std::uint64_t TraceCollector::dropped() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    CollectorState& s = state();
    std::lock_guard lock(s.mu);
    buffers = s.buffers;
  }
  std::uint64_t total = 0;
  for (const auto& buf : buffers) {
    std::lock_guard lock(buf->mu);
    total += buf->dropped;
  }
  return total;
}

void TraceCollector::clear() {
  CollectorState& s = state();
  std::lock_guard lock(s.mu);
  for (const auto& buf : s.buffers) buf->reset(s.capacity);
}

void TraceCollector::setCapacityPerThread(std::size_t capacity) {
  CollectorState& s = state();
  std::lock_guard lock(s.mu);
  s.capacity = capacity;
  for (const auto& buf : s.buffers) buf->reset(capacity);
}

std::size_t TraceCollector::capacityPerThread() {
  CollectorState& s = state();
  std::lock_guard lock(s.mu);
  return s.capacity;
}

}  // namespace jepo::obs
