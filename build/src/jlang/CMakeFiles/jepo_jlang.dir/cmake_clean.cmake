file(REMOVE_RECURSE
  "CMakeFiles/jepo_jlang.dir/ast.cpp.o"
  "CMakeFiles/jepo_jlang.dir/ast.cpp.o.d"
  "CMakeFiles/jepo_jlang.dir/lexer.cpp.o"
  "CMakeFiles/jepo_jlang.dir/lexer.cpp.o.d"
  "CMakeFiles/jepo_jlang.dir/parser.cpp.o"
  "CMakeFiles/jepo_jlang.dir/parser.cpp.o.d"
  "CMakeFiles/jepo_jlang.dir/printer.cpp.o"
  "CMakeFiles/jepo_jlang.dir/printer.cpp.o.d"
  "CMakeFiles/jepo_jlang.dir/token.cpp.o"
  "CMakeFiles/jepo_jlang.dir/token.cpp.o.d"
  "libjepo_jlang.a"
  "libjepo_jlang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jepo_jlang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
