#include "obs/registry.hpp"

#include <algorithm>
#include <functional>

namespace jepo::obs {

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Registry::Shard& Registry::shardFor(const std::string& name) {
  return shards_[std::hash<std::string>{}(name) % kShardCount];
}

Counter& Registry::counter(const std::string& name) {
  Shard& shard = shardFor(name);
  std::lock_guard lock(shard.mu);
  auto& slot = shard.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  Shard& shard = shardFor(name);
  std::lock_guard lock(shard.mu);
  auto& slot = shard.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  Shard& shard = shardFor(name);
  std::lock_guard lock(shard.mu);
  auto& slot = shard.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

Registry::Snapshot Registry::snapshot() const {
  Snapshot snap;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    for (const auto& [name, c] : shard.counters) {
      snap.counters.emplace_back(name, c->value());
    }
    for (const auto& [name, g] : shard.gauges) {
      snap.gauges.push_back({name, g->value(), g->peak()});
    }
    for (const auto& [name, h] : shard.histograms) {
      HistogramRow row;
      row.name = name;
      row.count = h->count();
      row.sum = h->sum();
      int top = Histogram::kBuckets;
      while (top > 0 && h->bucket(top - 1) == 0) --top;
      row.buckets.reserve(static_cast<std::size_t>(top));
      for (int b = 0; b < top; ++b) row.buckets.push_back(h->bucket(b));
      snap.histograms.push_back(std::move(row));
    }
  }
  std::sort(snap.counters.begin(), snap.counters.end());
  std::sort(snap.gauges.begin(), snap.gauges.end(),
            [](const GaugeRow& a, const GaugeRow& b) { return a.name < b.name; });
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const HistogramRow& a, const HistogramRow& b) {
              return a.name < b.name;
            });
  return snap;
}

void Registry::reset() {
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    for (auto& [name, c] : shard.counters) c->reset();
    for (auto& [name, g] : shard.gauges) g->reset();
    for (auto& [name, h] : shard.histograms) h->reset();
  }
}

}  // namespace jepo::obs
