// Deterministic fault injection for the socket transport.
//
// PR 3 taught the MSR substrate to glitch on demand; this module does the
// same for the jepod wire. Real daemons die to the transport, not the
// happy path: frames torn across short writes, connections reset mid-frame,
// slow-loris peers that trickle bytes with long pauses. A FaultyStream
// decorates any ByteStream (the read/write seam both the daemon's
// connections and jepod::Client sit behind) and injects exactly those
// failure modes so chaos tests can prove the daemon survives them and a
// retrying client recovers from them.
//
// Determinism contract, mirroring FaultPlan: every decision is a pure
// function of (spec.seed, connection ordinal, per-stream op ordinal) — no
// wall clock, no shared state — so a chaos soak replays the same fault
// schedule on every run. Injected delays are host-time-only; a job's
// response payload is unaffected by how its bytes were mangled in flight
// (either the frame arrives intact and bit-identical, or the transport
// error surfaces and the client retries).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace jepo::fault {

/// Minimal byte-stream seam over a connected socket. Return conventions
/// follow recv/send: > 0 bytes transferred, 0 EOF (reads), -1 error.
class ByteStream {
 public:
  virtual ~ByteStream() = default;
  virtual long read(char* buf, std::size_t n) = 0;
  virtual long write(const char* buf, std::size_t n) = 0;
  /// Tear down the underlying transport immediately (used by reset
  /// injection). Must be safe when other threads are blocked on the fd —
  /// implementations shut the socket down rather than close the fd, so
  /// the descriptor itself stays valid for its owner to close.
  virtual void closeNow() = 0;
};

/// ByteStream over a connected socket fd. Non-owning: whoever accepted or
/// connected the fd still closes it.
class FdStream final : public ByteStream {
 public:
  explicit FdStream(int fd) : fd_(fd) {}
  long read(char* buf, std::size_t n) override;
  long write(const char* buf, std::size_t n) override;
  void closeNow() override;

 private:
  int fd_;
};

/// The knobs of a transport fault plan. Probabilities are per I/O
/// operation. Resets apply to writes (a peer vanishing mid-frame); short
/// reads/writes tear frames across syscall boundaries; delays stall the
/// op by delayMs first (the slow-loris ingredient).
struct TransportFaultSpec {
  std::uint64_t seed = 1;
  double shortWriteProb = 0.0;
  double shortReadProb = 0.0;
  double resetProb = 0.0;
  double delayProb = 0.0;
  int delayMs = 2;

  /// Does this spec inject anything at all? Inactive specs let callers
  /// skip the decorator entirely (the clean path stays untouched).
  bool active() const noexcept;

  /// Canonical spec string, parseable by parseTransportPlan.
  std::string describe() const;
};

/// Parse "--transport-plan=" syntax: a preset name optionally followed by
/// ':' and comma-separated key=value overrides.
///
///   none | torn | slow-loris | reset | chaos
///
/// overrides: seed=<n> short-write-prob=<p> short-read-prob=<p>
///            reset-prob=<p> delay-prob=<p> delay-ms=<n>
///
/// e.g. "torn:seed=7,reset-prob=0.05". Throws Error on unknown names/keys.
TransportFaultSpec parseTransportPlan(const std::string& text);

enum class TransportFaultKind {
  kNone,
  kShortWrite,  // transfer only a seeded prefix of the buffer
  kShortRead,   // ask the kernel for fewer bytes than the caller did
  kReset,       // write a prefix, then hard-close the transport
  kDelay,       // sleep delayMs before the op (host time only)
};

std::string_view transportFaultKindName(TransportFaultKind k) noexcept;

/// The schedule: decide(op ordinal, direction) is pure in (spec.seed,
/// connection ordinal, op ordinal), so two streams built from the same
/// identity replay identical fault sequences.
class TransportFaultPlan {
 public:
  TransportFaultPlan() = default;
  TransportFaultPlan(TransportFaultSpec spec, std::uint64_t connOrdinal);

  const TransportFaultSpec& spec() const noexcept { return spec_; }
  std::uint64_t connectionOrdinal() const noexcept { return conn_; }
  TransportFaultKind decide(std::uint64_t opOrdinal, bool isWrite) const;
  /// Seeded split point in [1, n-1] for short/reset ops (n >= 2).
  std::size_t splitPoint(std::uint64_t opOrdinal, std::size_t n) const;

 private:
  TransportFaultSpec spec_;
  std::uint64_t conn_ = 0;
};

/// Chaos decorator over any ByteStream. Not thread-safe for concurrent
/// reads or concurrent writes, matching the streams it wraps (jepod
/// serializes writes per connection under writeMu; reads have one owner).
class FaultyStream final : public ByteStream {
 public:
  /// `sleeper` services kDelay (injectable so tests need no wall time);
  /// defaults to std::this_thread::sleep_for.
  FaultyStream(std::unique_ptr<ByteStream> inner, TransportFaultPlan plan,
               std::function<void(int)> sleeper = {});

  long read(char* buf, std::size_t n) override;
  long write(const char* buf, std::size_t n) override;
  void closeNow() override;

  /// Fault events injected by this stream so far (all kinds).
  std::uint64_t injected() const noexcept { return injected_; }
  std::uint64_t shortWrites() const noexcept { return shortWrites_; }
  std::uint64_t shortReads() const noexcept { return shortReads_; }
  std::uint64_t resets() const noexcept { return resets_; }
  std::uint64_t delays() const noexcept { return delays_; }

 private:
  std::unique_ptr<ByteStream> inner_;
  TransportFaultPlan plan_;
  std::function<void(int)> sleeper_;
  std::uint64_t ordinal_ = 0;  // shared across directions: one op stream
  std::uint64_t injected_ = 0;
  std::uint64_t shortWrites_ = 0;
  std::uint64_t shortReads_ = 0;
  std::uint64_t resets_ = 0;
  std::uint64_t delays_ = 0;
  bool resetDone_ = false;  // after a reset every op fails like a dead peer
};

}  // namespace jepo::fault
