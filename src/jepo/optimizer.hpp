// Optimizer — the refactoring half of JEPO.
//
// The paper's evaluation hand-applies JEPO's suggestions to WEKA and counts
// the edits (Table IV's "Changes" column). The Optimizer automates exactly
// those edits as AST-to-AST rewrites, each guarded by an applicability check
// so the transformation is behaviour-preserving (the semantic-preservation
// property test runs every program before and after optimization and
// compares outputs).
//
// Two rewrites are *deliberately lossy* when `allowLossyNarrowing` is set —
// long→int and double→float — because the paper applies them and accounts
// for the damage as the "Accuracy Drop" column (max 0.48%). With the flag
// off, only provably exact rewrites run.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "jepo/suggestion.hpp"
#include "jlang/ast.hpp"

namespace jepo::core {

/// One applied refactoring (the unit the paper's "Changes" column counts).
struct ChangeRecord {
  RuleId rule = RuleId::kPrimitiveDataType;
  std::string file;
  std::string className;
  int line = 0;
  std::string description;
};

struct OptimizerOptions {
  /// Permit long→int and double→float narrowing (paper Table IV mode).
  bool allowLossyNarrowing = true;
  /// Per-rule enable switches (for the rule-contribution ablation).
  std::array<bool, kRuleCount> enabled;
  OptimizerOptions() { enabled.fill(true); }
};

struct OptimizeResult {
  jlang::Program program;  // deep-copied, rewritten
  std::vector<ChangeRecord> changes;
};

class Optimizer {
 public:
  explicit Optimizer(OptimizerOptions options = {});

  /// Rewrite a whole project. The input is not modified.
  OptimizeResult optimize(const jlang::Program& program) const;

  const OptimizerOptions& options() const noexcept { return options_; }

 private:
  OptimizerOptions options_;
};

/// Respell a floating literal in scientific notation, preserving its exact
/// value (returns false when no shorter exact respelling exists).
bool scientificRespell(double value, std::string* out);

}  // namespace jepo::core
