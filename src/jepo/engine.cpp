#include "jepo/engine.hpp"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "jepo/walk.hpp"
#include "jlang/parser.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace jepo::core {

using jlang::BinOp;
using jlang::ClassDecl;
using jlang::CompilationUnit;
using jlang::Expr;
using jlang::ExprKind;
using jlang::Prim;
using jlang::Program;
using jlang::Stmt;
using jlang::StmtKind;
using jlang::TypeRef;

namespace {

bool isNonIntPrimitive(const TypeRef& t) {
  if (t.arrayDims != 0) return false;
  return t.prim == Prim::kByte || t.prim == Prim::kShort ||
         t.prim == Prim::kLong;
}

bool isNonIntegerWrapper(const TypeRef& t) {
  if (t.arrayDims != 0 || t.prim != Prim::kClass) return false;
  const std::string& n = t.className;
  return n == "Long" || n == "Short" || n == "Byte" || n == "Double" ||
         n == "Float" || n == "Character";
}

/// A plain decimal literal that would be shorter/cheaper in scientific
/// notation: large magnitudes or tiny fractions.
bool wantsScientific(double v) {
  const double mag = std::fabs(v);
  return mag >= 1000.0 || (mag > 0.0 && mag < 0.001);
}

bool isPowerOfTwoLiteral(const Expr& e) {
  if (e.kind != ExprKind::kIntLit && e.kind != ExprKind::kLongLit) {
    return false;
  }
  const std::int64_t v = e.intValue;
  return v > 0 && (v & (v - 1)) == 0;
}

}  // namespace

bool matchCanonicalFor(const Stmt& s, CanonicalFor* out) {
  if (s.kind != StmtKind::kFor) return false;
  if (s.body.size() != 1 || s.body[0]->kind != StmtKind::kVarDecl) {
    return false;
  }
  const Stmt& init = *s.body[0];
  if (init.declType != TypeRef::scalar(Prim::kInt) || !init.init) return false;
  if (!s.cond || s.cond->kind != ExprKind::kBinary ||
      s.cond->binOp != BinOp::kLt) {
    return false;
  }
  if (s.cond->a->kind != ExprKind::kVarRef ||
      s.cond->a->strValue != init.declName) {
    return false;
  }
  if (s.update.size() != 1) return false;
  const Expr& u = *s.update[0];
  const bool isIncrement =
      (u.kind == ExprKind::kUnary &&
       (u.unOp == jlang::UnOp::kPostInc || u.unOp == jlang::UnOp::kPreInc) &&
       u.a->kind == ExprKind::kVarRef && u.a->strValue == init.declName) ||
      (u.kind == ExprKind::kAssign && u.assignOp == jlang::AssignOp::kAdd &&
       u.a->kind == ExprKind::kVarRef && u.a->strValue == init.declName &&
       u.b->kind == ExprKind::kIntLit && u.b->intValue == 1);
  if (!isIncrement) return false;
  if (out != nullptr) {
    out->var = init.declName;
    out->init = init.init.get();
    out->bound = s.cond->b.get();
    out->body = s.thenStmt.get();
  }
  return true;
}

bool matchManualCopyBody(const Stmt& body, const std::string& var,
                         std::string* dstName, std::string* srcName) {
  const Stmt* stmt = &body;
  if (stmt->kind == StmtKind::kBlock) {
    if (stmt->body.size() != 1) return false;
    stmt = stmt->body[0].get();
  }
  if (stmt->kind != StmtKind::kExprStmt) return false;
  const Expr& e = *stmt->expr;
  if (e.kind != ExprKind::kAssign || e.assignOp != jlang::AssignOp::kSet) {
    return false;
  }
  const Expr& dst = *e.a;
  const Expr& src = *e.b;
  auto isSimpleIndex = [&var](const Expr& x, std::string* arrayName) {
    if (x.kind != ExprKind::kArrayIndex) return false;
    if (x.a->kind != ExprKind::kVarRef) return false;
    if (x.b->kind != ExprKind::kVarRef || x.b->strValue != var) return false;
    *arrayName = x.a->strValue;
    return true;
  };
  std::string d;
  std::string s2;
  if (!isSimpleIndex(dst, &d) || !isSimpleIndex(src, &s2)) return false;
  if (d == s2) return false;  // self-copy is not the pattern
  if (dstName != nullptr) *dstName = d;
  if (srcName != nullptr) *srcName = s2;
  return true;
}

SuggestionEngine::SuggestionEngine(Options options)
    : options_(std::move(options)) {}

namespace {

/// Per-class analysis pass: walks every member, tracking local String /
/// numeric declarations for the type-sensitive rules.
class ClassAnalyzer {
 public:
  ClassAnalyzer(const SuggestionEngine& engine, const std::string& file,
                const ClassDecl& cls, std::vector<Suggestion>* out)
      : engine_(engine), file_(file), cls_(cls), out_(out) {}

  void run() {
    for (const auto& f : cls_.fields) analyzeField(f);
    for (const auto& m : cls_.methods) analyzeMethod(m);
  }

 private:
  void emit(RuleId rule, int line, std::string detail) {
    if (!engine_.ruleEnabled(rule)) return;
    Suggestion s;
    s.rule = rule;
    s.file = file_;
    s.className = cls_.name;
    s.line = line;
    s.detail = std::move(detail);
    out_->push_back(std::move(s));
  }

  void analyzeField(const jlang::FieldDecl& f) {
    if (f.isStatic) {
      emit(RuleId::kStaticKeyword, f.line, "static field '" + f.name + "'");
    }
    if (isNonIntPrimitive(f.type)) {
      emit(RuleId::kPrimitiveDataType, f.line,
           jlang::typeName(f.type) + " field '" + f.name + "'");
    }
    if (isNonIntegerWrapper(f.type)) {
      emit(RuleId::kWrapperClass, f.line,
           f.type.className + " field '" + f.name + "'");
    }
    if (f.type.isClass("String")) stringNames_.insert(f.name);
    if (f.init) analyzeExpr(*f.init);
  }

  void analyzeMethod(const jlang::MethodDecl& m) {
    stringLocals_.clear();
    for (const auto& p : m.params) {
      if (isNonIntPrimitive(p.type)) {
        emit(RuleId::kPrimitiveDataType, m.line,
             jlang::typeName(p.type) + " parameter '" + p.name + "'");
      }
      if (p.type.isClass("String")) stringLocals_.insert(p.name);
    }
    if (m.body) analyzeStmt(*m.body);
  }

  bool isStringExpr(const Expr& e) const {
    switch (e.kind) {
      case ExprKind::kStringLit: return true;
      case ExprKind::kVarRef:
        return stringLocals_.count(e.strValue) != 0 ||
               stringNames_.count(e.strValue) != 0;
      case ExprKind::kBinary:
        return e.binOp == BinOp::kAdd &&
               (isStringExpr(*e.a) || isStringExpr(*e.b));
      case ExprKind::kCall:
        return e.strValue == "toString" || e.strValue == "substring" ||
               e.strValue == "concat" ||
               (e.strValue == "valueOf" && e.a &&
                e.a->kind == ExprKind::kVarRef && e.a->strValue == "String");
      default: return false;
    }
  }

  void analyzeStmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kVarDecl: {
        if (isNonIntPrimitive(s.declType)) {
          emit(RuleId::kPrimitiveDataType, s.line,
               jlang::typeName(s.declType) + " local '" + s.declName + "'");
        }
        if (isNonIntegerWrapper(s.declType)) {
          emit(RuleId::kWrapperClass, s.line,
               s.declType.className + " local '" + s.declName + "'");
        }
        if (s.declType.isClass("String")) stringLocals_.insert(s.declName);
        if (s.init) analyzeExpr(*s.init);
        return;
      }
      case StmtKind::kFor: {
        CanonicalFor outer;
        if (matchCanonicalFor(s, &outer)) {
          // Manual array copy: for (int i = ...) dst[i] = src[i];
          std::string dst;
          std::string src;
          if (matchManualCopyBody(*outer.body, outer.var, &dst, &src)) {
            emit(RuleId::kArrayCopy, s.line,
                 "manual copy '" + src + "' -> '" + dst + "'");
          }
          // Column traversal: inner canonical loop whose variable indexes
          // the FIRST dimension while the outer variable indexes the second.
          const Stmt* innerStmt = outer.body;
          if (innerStmt->kind == StmtKind::kBlock &&
              innerStmt->body.size() == 1) {
            innerStmt = innerStmt->body[0].get();
          }
          CanonicalFor inner;
          if (matchCanonicalFor(*innerStmt, &inner)) {
            bool columnMajor = false;
            walkStmt(
                *inner.body, [](const Stmt&) {},
                [&](const Expr& e) {
                  if (e.kind != ExprKind::kArrayIndex) return;
                  // e == X[inner.var][outer.var]?
                  if (e.b->kind == ExprKind::kVarRef &&
                      e.b->strValue == outer.var &&
                      e.a->kind == ExprKind::kArrayIndex &&
                      e.a->b->kind == ExprKind::kVarRef &&
                      e.a->b->strValue == inner.var) {
                    columnMajor = true;
                  }
                });
            if (columnMajor) {
              emit(RuleId::kArrayTraversal, s.line,
                   "inner loop '" + inner.var +
                       "' walks the first dimension (column-major)");
            }
          }
        }
        break;
      }
      default:
        break;
    }

    // Generic traversal of children + expressions.
    auto expr = [&](const jlang::ExprPtr& e) {
      if (e) analyzeExpr(*e);
    };
    expr(s.expr);
    expr(s.cond);
    for (const auto& u : s.update) expr(u);
    for (const auto& st : s.body) analyzeStmt(*st);
    if (s.thenStmt) analyzeStmt(*s.thenStmt);
    if (s.elseStmt) analyzeStmt(*s.elseStmt);
    if (s.tryBlock) analyzeStmt(*s.tryBlock);
    for (const auto& c : s.catches) analyzeStmt(*c.body);
    if (s.finallyBlock) analyzeStmt(*s.finallyBlock);
    for (const auto& c : s.cases) {
      for (const auto& st : c.body) analyzeStmt(*st);
    }
  }

  void analyzeExpr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kFloatLit:
      case ExprKind::kDoubleLit:
        if (!e.scientific && wantsScientific(e.floatValue)) {
          emit(RuleId::kScientificNotation, e.line,
               "literal " + (e.strValue.empty()
                                 ? std::to_string(e.floatValue)
                                 : e.strValue));
        }
        break;
      case ExprKind::kBinary:
        if (e.binOp == BinOp::kMod) {
          std::string detail = "modulus";
          if (isPowerOfTwoLiteral(*e.b)) {
            detail += "; right operand is a power of two, a bitwise AND with " +
                      std::to_string(e.b->intValue - 1) + " is equivalent "
                      "for non-negative operands";
          }
          emit(RuleId::kModulusOperator, e.line, detail);
        }
        if ((e.binOp == BinOp::kAndAnd || e.binOp == BinOp::kOrOr) &&
            isPureExpr(*e.a) && isPureExpr(*e.b) &&
            exprSize(*e.a) > exprSize(*e.b) + 1) {
          emit(RuleId::kShortCircuitOrder, e.line,
               "right operand is simpler; if it is also the more common "
               "case, evaluate it first");
        }
        if (e.binOp == BinOp::kAdd && (isStringExpr(*e.a) || isStringExpr(*e.b))) {
          emit(RuleId::kStringConcat, e.line, "string '+' operator");
        }
        break;
      case ExprKind::kAssign:
        if (e.assignOp == jlang::AssignOp::kAdd && isStringExpr(*e.a)) {
          emit(RuleId::kStringConcat, e.line, "string '+=' operator");
        }
        break;
      case ExprKind::kTernary:
        emit(RuleId::kTernaryOperator, e.line, "?: expression");
        break;
      case ExprKind::kCall:
        if (e.strValue == "compareTo" && e.args.size() == 1 && e.a) {
          emit(RuleId::kStringCompare, e.line, "compareTo call");
        }
        break;
      default:
        break;
    }
    if (e.a) analyzeExpr(*e.a);
    if (e.b) analyzeExpr(*e.b);
    if (e.c) analyzeExpr(*e.c);
    for (const auto& arg : e.args) analyzeExpr(*arg);
  }

  const SuggestionEngine& engine_;
  const std::string& file_;
  const ClassDecl& cls_;
  std::vector<Suggestion>* out_;
  std::unordered_set<std::string> stringLocals_;
  std::unordered_set<std::string> stringNames_;  // String fields
};

}  // namespace

std::vector<Suggestion> SuggestionEngine::analyzeUnit(
    const CompilationUnit& unit) const {
  static obs::Counter& suggestions =
      obs::Registry::global().counter("jepo.suggestions");
  obs::Span span("jepo.analyze");
  std::vector<Suggestion> out;
  for (const auto& cls : unit.classes) {
    ClassAnalyzer(*this, unit.fileName, cls, &out).run();
  }
  suggestions.add(out.size());
  return out;
}

std::vector<Suggestion> SuggestionEngine::analyzeProgram(
    const Program& program) const {
  obs::Span span("jepo.suggest");
  std::vector<Suggestion> out;
  for (const auto& unit : program.units) {
    auto part = analyzeUnit(unit);
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return out;
}

std::vector<Suggestion> SuggestionEngine::analyzeSource(
    const std::string& fileName, const std::string& source) const {
  obs::Span span("jepo.suggest");
  jlang::Parser parser(fileName, source);
  const CompilationUnit unit = parser.parseUnit();
  return analyzeUnit(unit);
}

}  // namespace jepo::core
