// edge_pipeline — the paper's motivating IoT scenario (EdgeBox-style):
// a battery-powered edge node classifies a stream of flight records in
// real time. The example trains a model once, then measures the energy per
// inference in WEKA-as-shipped style vs JEPO-optimized style and converts
// the saving into battery life, mirroring Section II's "20% more energy =
// 100 km more driving" argument.
#include <cstdio>

#include "data/airlines.hpp"
#include "ml/evaluation.hpp"
#include "perf/perf.hpp"

int main() {
  using namespace jepo;

  // The edge node's model: REPTree (small, fast, field-deployable).
  data::AirlinesConfig cfg;
  cfg.instances = 4000;
  const ml::Instances pool = data::generateAirlines(cfg);
  Rng rng(7);
  const ml::Instances train = pool.subsample(2000, rng);

  std::puts("edge_pipeline: streaming delay prediction on an edge node\n");

  constexpr std::size_t kStreamLength = 20'000;  // records to classify
  constexpr double kBatteryJoules = 20.0;        // toy battery budget

  auto deploy = [&](ml::CodeStyle style, const char* label) {
    perf::PerfRunner runner = perf::PerfRunner::exact();
    double accuracy = 0.0;
    const perf::PerfStat stat =
        runner.stat([&](energy::SimMachine& machine) {
          ml::MlRuntime rt(machine, style);
          auto model = ml::makeClassifier(ml::ClassifierKind::kRepTree,
                                          ml::Precision::kDouble, rt, 11);
          model->train(train);
          // Classify the stream (cycling over the pool as "live" data).
          std::size_t hits = 0;
          for (std::size_t i = 0; i < kStreamLength; ++i) {
            const auto& row = pool.row(i % pool.numInstances());
            const int predicted = model->predict(row);
            hits += predicted ==
                    pool.classValue(i % pool.numInstances());
          }
          accuracy = static_cast<double>(hits) / kStreamLength;
        });
    const double joulesPerInference = stat.packageJoules / kStreamLength;
    const double inferencesPerBattery = kBatteryJoules / joulesPerInference;
    std::printf("%-18s accuracy=%.1f%%  total=%.4f J  per-inference=%.2f uJ\n",
                label, accuracy * 100.0, stat.packageJoules,
                joulesPerInference * 1e6);
    std::printf("%-18s battery budget of %.0f J sustains %.1fM inferences\n\n",
                "", kBatteryJoules, inferencesPerBattery / 1e6);
    return stat.packageJoules;
  };

  const double base = deploy(ml::CodeStyle::javaBaseline(),
                             "WEKA as shipped:");
  const double opt = deploy(ml::CodeStyle::jepoOptimized(),
                            "JEPO-optimized:");

  std::printf("Energy saved by the software refactoring alone: %.1f%%\n",
              (1.0 - opt / base) * 100.0);
  std::printf("=> %.1f%% more inferences per charge on identical hardware\n",
              (base / opt - 1.0) * 100.0);
  return 0;
}
