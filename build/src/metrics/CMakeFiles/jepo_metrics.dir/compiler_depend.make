# Empty compiler generated dependencies file for jepo_metrics.
# This may be replaced when dependencies are built.
