file(REMOVE_RECURSE
  "CMakeFiles/jbc_test.dir/jbc_test.cpp.o"
  "CMakeFiles/jbc_test.dir/jbc_test.cpp.o.d"
  "jbc_test"
  "jbc_test.pdb"
  "jbc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jbc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
