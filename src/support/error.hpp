// Error-handling primitives shared by every module.
//
// The library follows the C++ Core Guidelines: exceptions signal broken
// invariants and unusable inputs; JEPO_REQUIRE documents preconditions at
// API boundaries; JEPO_ASSERT guards internal invariants (compiled in all
// build types — the simulators are deterministic, so a tripped assertion is
// always a real bug, never noise).
#pragma once

#include <stdexcept>
#include <string>

namespace jepo {

/// Base class for all errors thrown by the jepo libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed MiniJava source (lexer/parser diagnostics carry line:col).
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line, int col)
      : Error(what + " at " + std::to_string(line) + ":" + std::to_string(col)),
        line_(line),
        col_(col) {}
  int line() const noexcept { return line_; }
  int col() const noexcept { return col_; }

 private:
  int line_;
  int col_;
};

/// Runtime fault inside the MiniJava VM (the analog of a Java exception that
/// escaped main): division by zero, null deref, array bounds, bad cast.
class VmError : public Error {
 public:
  using Error::Error;
};

/// Violated API precondition (caller bug).
class PreconditionError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] void failRequire(const char* cond, const char* file, int line,
                              const std::string& msg);
[[noreturn]] void failAssert(const char* cond, const char* file, int line);
}  // namespace detail

}  // namespace jepo

#define JEPO_REQUIRE(cond, msg)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::jepo::detail::failRequire(#cond, __FILE__, __LINE__, (msg));  \
    }                                                                 \
  } while (false)

#define JEPO_ASSERT(cond)                                       \
  do {                                                          \
    if (!(cond)) {                                              \
      ::jepo::detail::failAssert(#cond, __FILE__, __LINE__);    \
    }                                                           \
  } while (false)
