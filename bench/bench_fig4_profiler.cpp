// Figure 4 reproduction: the JEPO profiler view — per-method-execution
// time and energy measured by the injected MSR reads — over the demo
// project, plus the result.txt dump JEPO writes into the project.
#include "bench_common.hpp"
#include "demo_project.hpp"

#include "jepo/profiler.hpp"
#include "jepo/views.hpp"
#include "jlang/parser.hpp"

int main(int argc, char** argv) {
  using namespace jepo;
  bench::Flags flags(argc, argv);
  bench::BenchReport report("bench_fig4_profiler", flags);
  bench::printHeader("Fig. 4 — JEPO profiler view (per method execution)");

  const jlang::Program program =
      jlang::Parser::parseProgram("EdgePipeline.mjava",
                                  bench::kDemoProjectSource);
  core::Profiler profiler;
  profiler.profile(program, /*mainClass=*/{}, /*maxSteps=*/50'000'000);

  // The view shows each execution; cap the echo at the first 25 records
  // (the demo runs 40 frames x several methods).
  std::vector<jvm::MethodRecord> head(
      profiler.records().begin(),
      profiler.records().begin() +
          std::min<std::size_t>(25, profiler.records().size()));
  std::fputs(core::renderProfilerView(head).c_str(), stdout);
  std::printf("... (%zu executions total)\n\n",
              profiler.records().size());

  bench::printHeader("Aggregated per-method totals (energy-hungry first)");
  TextTable totals({"Method", "Executions", "Total time", "Total package",
                    "Total core"},
                   {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                    Align::kRight});
  for (const auto& t : profiler.totals()) {
    totals.addRow({t.method, std::to_string(t.executions),
                   fixed(t.seconds * 1e3, 3) + " ms",
                   fixed(t.packageJoules * 1e3, 3) + " mJ",
                   fixed(t.coreJoules * 1e3, 3) + " mJ"});
    report.addRow({{"method", t.method},
                   {"executions", t.executions},
                   {"seconds", t.seconds},
                   {"packageJoules", t.packageJoules},
                   {"coreJoules", t.coreJoules}});
  }
  std::fputs(totals.render().c_str(), stdout);

  std::printf("\nresult.txt (first 5 lines):\n");
  const std::string resultFile = profiler.renderResultFile();
  std::size_t pos = 0;
  for (int i = 0; i < 5 && pos != std::string::npos; ++i) {
    const std::size_t next = resultFile.find('\n', pos);
    std::printf("%s\n", resultFile.substr(pos, next - pos).c_str());
    pos = next == std::string::npos ? next : next + 1;
  }
  std::printf("\nProgram output: %s", profiler.programOutput().c_str());
  return report.finish();
}
