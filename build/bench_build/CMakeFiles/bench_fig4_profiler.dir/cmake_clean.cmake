file(REMOVE_RECURSE
  "../bench/bench_fig4_profiler"
  "../bench/bench_fig4_profiler.pdb"
  "CMakeFiles/bench_fig4_profiler.dir/bench_fig4_profiler.cpp.o"
  "CMakeFiles/bench_fig4_profiler.dir/bench_fig4_profiler.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
