// ParallelRunner — the Table IV measurement matrix on a thread pool.
//
// The serial pipeline walks 10 classifiers × {baseline, optimized} ×
// config.runs measurements one after another; nothing in that matrix shares
// state, so it fans out over jepo::ThreadPool in three phases:
//
//   1. prep      — per-classifier Optimizer change count + dataset build
//                  (10 independent tasks)
//   2. measure   — ALL classifiers' measurement streams go through ONE
//                  stats::measureManyWithTukeyLoop call, so the initial
//                  batch is 10 × 2 × runs independent jobs and each Tukey
//                  round batches every stream's re-measurements together
//                  (good load balance even when one classifier dominates)
//   3. assemble  — fold protocol results into ClassifierResult rows, in
//                  ClassifierKind order
//
// Determinism guarantee: every measurement derives its RNG from
// deriveSeed(config.seed, classifier, style, ordinal) and writes a
// pre-assigned result slot; Tukey decisions run on the coordinating thread
// between batches and depend only on measured values. Results are therefore
// bit-identical to the serial path for ANY thread count and ANY scheduling
// order — which is what lets `--threads` be a pure performance knob.
#pragma once

#include <vector>

#include "experiments/weka_experiment.hpp"

namespace jepo::experiments {

class ParallelRunner {
 public:
  /// `config.parallel.threads`: 0 = one per core, N = exactly N workers.
  explicit ParallelRunner(const WekaExperimentConfig& config)
      : config_(config) {}

  /// Run all ten classifiers; rows in ClassifierKind order, bit-identical
  /// to runClassifierExperiment on each kind.
  std::vector<ClassifierResult> run();

 private:
  WekaExperimentConfig config_;
};

}  // namespace jepo::experiments
