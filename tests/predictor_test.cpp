// The per-method energy predictor (src/predict): exact recovery on
// synthetic linear data, deterministic held-out splits, feature
// extraction over known code shapes, and the paper's with-vs-without-
// dynamic-feature error ordering on a profiled corpus.
#include <gtest/gtest.h>

#include <cmath>

#include "jepo/profiler.hpp"
#include "jlang/parser.hpp"
#include "predict/predictor.hpp"
#include "predict/synth.hpp"
#include "support/error.hpp"

namespace jepo::predict {
namespace {

/// y = 2 + 3*a + 0.5*b, exactly.
std::vector<Sample> linearSamples(int n) {
  std::vector<Sample> out;
  for (int i = 0; i < n; ++i) {
    const double a = static_cast<double>(i);
    const double b = static_cast<double>((i * 7) % 5);
    Sample s;
    s.method = "M.m" + std::to_string(i);
    s.features = {1.0, a, b};
    s.packageJoules = 2.0 + 3.0 * a + 0.5 * b;
    out.push_back(std::move(s));
  }
  return out;
}

TEST(LinearModel, RecoversExactLinearRelation) {
  const LinearModel model = LinearModel::fit(linearSamples(12), 1e-12);
  ASSERT_EQ(model.weights().size(), 3u);
  EXPECT_NEAR(model.weights()[0], 2.0, 1e-6);
  EXPECT_NEAR(model.weights()[1], 3.0, 1e-6);
  EXPECT_NEAR(model.weights()[2], 0.5, 1e-6);
  for (const Sample& s : linearSamples(12)) {
    EXPECT_NEAR(model.predict(s.features), s.packageJoules, 1e-6);
  }
}

TEST(LinearModel, ValidatesInputs) {
  EXPECT_THROW(LinearModel::fit({}, 1e-9), PreconditionError);
  const LinearModel model = LinearModel::fit(linearSamples(5), 1e-9);
  EXPECT_THROW(model.predict({1.0}), PreconditionError);
}

/// Linear data plus a deterministic residual the features cannot express,
/// so held-out error is meaningfully nonzero and split-sensitive.
std::vector<Sample> noisySamples(int n) {
  std::vector<Sample> out = linearSamples(n);
  for (int i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(i)].packageJoules +=
        static_cast<double>((i * 13) % 7);
  }
  return out;
}

TEST(Holdout, SplitIsDeterministicInTheSeed) {
  const std::vector<Sample> samples = noisySamples(40);
  PredictorConfig cfg;
  cfg.seed = 123;
  const EvalResult a = evaluateHoldout(samples, cfg);
  const EvalResult b = evaluateHoldout(samples, cfg);
  EXPECT_EQ(a.trainMethods, b.trainMethods);
  EXPECT_EQ(a.testMethods, b.testMethods);
  EXPECT_EQ(a.meanAbsError, b.meanAbsError);
  EXPECT_EQ(a.weights, b.weights);

  cfg.seed = 124;
  const EvalResult c = evaluateHoldout(samples, cfg);
  // A different seed draws a different held-out set, so the irreducible
  // residual lands differently.
  EXPECT_NE(a.meanAbsError, c.meanAbsError);
}

TEST(Holdout, ExactDataEvaluatesExactly) {
  const EvalResult r = evaluateHoldout(linearSamples(30), PredictorConfig{});
  EXPECT_GT(r.testMethods, 0);
  EXPECT_GT(r.trainMethods, 0);
  EXPECT_NEAR(r.meanAbsError, 0.0, 1e-6);
}

TEST(Holdout, DegenerateSplitKeepsBothSidesPopulated) {
  PredictorConfig cfg;
  cfg.holdoutFraction = 0.0;  // coin never holds out -> fallback
  const EvalResult a = evaluateHoldout(linearSamples(4), cfg);
  EXPECT_EQ(a.testMethods, 1);
  EXPECT_EQ(a.trainMethods, 3);

  cfg.holdoutFraction = 1.0;  // coin always holds out -> fallback
  const EvalResult b = evaluateHoldout(linearSamples(4), cfg);
  EXPECT_EQ(b.testMethods, 1);
  EXPECT_EQ(b.trainMethods, 3);

  EXPECT_THROW(evaluateHoldout(linearSamples(1), cfg), PreconditionError);
}

TEST(Features, ExtractKnownShapes) {
  const char* src = R"(
class Shapes {
  int straight(int n) { return n * 2 + 1; }
  int looped(int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) { acc = acc + i; }
    return acc;
  }
  int nested(int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) {
      int j = 0;
      while (j < n) { acc = acc + j; j++; }
    }
    return acc;
  }
  int caller(int n) { return looped(n) + looped(n + 1) + straight(n); }
}
)";
  const jlang::Program program =
      jlang::Parser::parseProgram("shapes.mjava", src);
  const std::vector<MethodFeatures> features = extractFeatures(program);
  const auto find = [&](const std::string& name) {
    for (const auto& f : features) {
      if (f.method == name) return f;
    }
    ADD_FAILURE() << name << " not extracted";
    return MethodFeatures{};
  };
  EXPECT_EQ(find("Shapes.straight").loopDepth, 0.0);
  EXPECT_EQ(find("Shapes.looped").loopDepth, 1.0);
  EXPECT_EQ(find("Shapes.nested").loopDepth, 2.0);
  EXPECT_EQ(find("Shapes.caller").callCount, 3.0);
  EXPECT_EQ(find("Shapes.straight").callCount, 0.0);
  EXPECT_GT(find("Shapes.nested").bytecodeLen,
            find("Shapes.straight").bytecodeLen);
}

TEST(Join, MatchesByQualifiedNameAndSorts) {
  std::vector<MethodFeatures> features = {{"B.m", 10.0, 1.0, 0.0},
                                          {"A.m", 20.0, 2.0, 1.0}};
  std::vector<DynamicRecord> records = {{"A.m", 0.5, 3.0},
                                        {"B.m", 0.25, 1.5},
                                        {"C.gone", 1.0, 9.0}};
  const std::vector<Sample> with = joinSamples(features, records, true);
  ASSERT_EQ(with.size(), 2u);  // C.gone dropped
  EXPECT_EQ(with[0].method, "A.m");
  EXPECT_EQ(with[1].method, "B.m");
  ASSERT_EQ(with[0].features.size(), 5u);
  EXPECT_EQ(with[0].features[1], 0.5);   // seconds
  EXPECT_EQ(with[0].features[2], 20.0);  // bytecodeLen

  const std::vector<Sample> without = joinSamples(features, records, false);
  ASSERT_EQ(without[0].features.size(), 4u);
  EXPECT_EQ(without[0].features[1], 20.0);  // bytecodeLen moved up
}

TEST(Synth, CorpusIsDeterministicAndRunnable) {
  const std::vector<SynthProgram> a = synthesizeCorpus(3, 2020);
  const std::vector<SynthProgram> b = synthesizeCorpus(3, 2020);
  ASSERT_EQ(a.size(), 3u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].mainClass, b[i].mainClass);
    core::Profiler pa;
    pa.profile(a[i].program, a[i].mainClass);
    core::Profiler pb;
    pb.profile(b[i].program, b[i].mainClass);
    EXPECT_EQ(pa.programOutput(), pb.programOutput());
    EXPECT_FALSE(pa.records().empty());
  }
}

// The paper's claim, pinned: on a profiled corpus the dynamic
// execution-time feature strictly beats the static-only fit on held-out
// methods. Exact errors drift with corpus tweaks; the ORDERING is the
// reproduced result and must not.
TEST(Ablation, DynamicFeatureBeatsStaticOnlyOnProfiledCorpus) {
  std::vector<MethodFeatures> features;
  std::vector<DynamicRecord> records;
  for (const SynthProgram& sp : synthesizeCorpus(6, 2020)) {
    std::vector<MethodFeatures> f = extractFeatures(sp.program);
    features.insert(features.end(), f.begin(), f.end());
    core::Profiler profiler;
    profiler.setSeed(2020);
    profiler.profile(sp.program, sp.mainClass);
    for (const core::MethodTotals& t : profiler.totals()) {
      records.push_back({t.method, t.seconds, t.packageJoules});
    }
  }
  PredictorConfig cfg;
  const EvalResult withDynamic =
      evaluateHoldout(joinSamples(features, records, true), cfg);
  const EvalResult staticOnly =
      evaluateHoldout(joinSamples(features, records, false), cfg);
  EXPECT_LT(withDynamic.relativeError, staticOnly.relativeError);
  // Identical splits: the ablation changes features, not membership.
  EXPECT_EQ(withDynamic.testMethods, staticOnly.testMethods);
  EXPECT_EQ(withDynamic.trainMethods, staticOnly.trainMethods);
}

}  // namespace
}  // namespace jepo::predict
