# Empty dependencies file for jepo_energy.
# This may be replaced when dependencies are built.
