// Shared utilities for the bench binaries: a tiny --key=value flag parser
// and the paper-vs-measured table shape every reproduction bench prints.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "support/strings.hpp"
#include "support/table.hpp"

namespace jepo::bench {

/// Parses flags of the form --name=value; everything else is ignored.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (!startsWith(arg, "--")) continue;
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_.emplace_back(arg.substr(2), "true");
      } else {
        values_.emplace_back(arg.substr(2, eq - 2), arg.substr(eq + 1));
      }
    }
  }

  std::string get(const std::string& name, const std::string& def) const {
    for (const auto& [k, v] : values_) {
      if (k == name) return v;
    }
    return def;
  }

  long getInt(const std::string& name, long def) const {
    const std::string v = get(name, "");
    return v.empty() ? def : std::strtol(v.c_str(), nullptr, 10);
  }

  double getDouble(const std::string& name, double def) const {
    const std::string v = get(name, "");
    return v.empty() ? def : std::strtod(v.c_str(), nullptr);
  }

  bool getBool(const std::string& name, bool def = false) const {
    const std::string v = get(name, "");
    return v.empty() ? def : v == "true" || v == "1";
  }

 private:
  std::vector<std::pair<std::string, std::string>> values_;
};

inline void printHeader(const std::string& title) {
  std::printf("==================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==================================================\n");
}

}  // namespace jepo::bench
