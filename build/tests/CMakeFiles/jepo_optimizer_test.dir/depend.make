# Empty dependencies file for jepo_optimizer_test.
# This may be replaced when dependencies are built.
