// Evaluation harness: train/test accuracy and the stratified k-fold
// cross-validation protocol of Section VIII.
#pragma once

#include <functional>

#include "ml/classifier.hpp"

namespace jepo::ml {

/// Fraction of test rows classified correctly.
double accuracy(Classifier& classifier, const Instances& test);

/// Stratified k-fold cross-validation. The factory is called once per fold
/// (fresh classifier each time, as WEKA does); returns mean accuracy over
/// folds. Charges land on whatever machine the factory's runtime wraps.
double crossValidate(
    const std::function<std::unique_ptr<Classifier>()>& factory,
    const Instances& data, std::size_t folds, Rng& rng);

}  // namespace jepo::ml
