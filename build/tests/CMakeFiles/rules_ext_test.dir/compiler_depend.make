# Empty compiler generated dependencies file for rules_ext_test.
# This may be replaced when dependencies are built.
