#include "jvm/gc.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "obs/registry.hpp"

namespace jepo::jvm {

namespace {

/// Rough payload footprint of one object — enough for the bytes-reclaimed
/// counter to be meaningful, not an allocator-exact figure.
std::uint64_t payloadBytes(const HeapObject& o) {
  return sizeof(HeapObject) + o.text.capacity() + o.className.capacity() +
         (o.elems.capacity() + o.fields.capacity()) * sizeof(Value);
}

}  // namespace

Gc::Gc(Heap& heap, RootScanner scanRoots)
    : heap_(&heap), scanRoots_(std::move(scanRoots)) {
  tempValues_.reserve(64);
  tempVectors_.reserve(64);
  tempRefs_.reserve(16);
}

std::size_t Gc::limitFromEnv() {
  const char* env = std::getenv("JEPO_HEAP_LIMIT");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || (end != nullptr && *end != '\0')) return 0;
  return static_cast<std::size_t>(v);
}

void Gc::collect() {
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t n = heap_->size();

  // --- root scan: gather pointers to every slot that may hold a Ref.
  valueRoots_.clear();
  refRoots_.clear();
  RootWalker walker(*this);
  scanRoots_(walker);
  for (Value* v : tempValues_) walker.visit(*v);
  for (std::vector<Value>* vec : tempVectors_) {
    for (Value& v : *vec) walker.visit(v);
  }
  for (Ref* r : tempRefs_) walker.visit(*r);

  // --- mark: flood-fill from the roots through array elements, object
  // fields and boxed payloads.
  marks_.assign(n, 0);
  worklist_.clear();
  const auto markRef = [this, n](Ref r) {
    JEPO_REQUIRE(r < n, "root scan produced an out-of-heap reference");
    if (marks_[r] == 0) {
      marks_[r] = 1;
      worklist_.push_back(r);
    }
  };
  for (const Value* v : valueRoots_) markRef(v->ref);
  for (const Ref* r : refRoots_) markRef(*r);
  while (!worklist_.empty()) {
    const Ref r = worklist_.back();
    worklist_.pop_back();
    HeapObject& o = heap_->at(r);
    for (const Value& e : o.elems) {
      if (e.kind == ValKind::kRef) markRef(e.ref);
    }
    for (const Value& f : o.fields) {
      if (f.kind == ValKind::kRef) markRef(f.ref);
    }
    if (o.boxed.kind == ValKind::kRef) markRef(o.boxed.ref);
  }

  // --- forwarding table: sliding compaction keeps survivor order, so the
  // remap is monotone (forward_[r] <= r) and a bijection on survivors.
  forward_.assign(n, kInvalidRef);
  std::size_t live = 0;
  std::uint64_t deadBytes = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (marks_[i] != 0) {
      forward_[i] = static_cast<Ref>(live++);
    } else {
      deadBytes += payloadBytes(heap_->at(i));
    }
  }

  if (live != n) {
    // Rewrite refs inside surviving objects first (while still addressed
    // by their old Refs), then the roots. Root registrations may alias the
    // same slot (e.g. a rooted local that is also on a registered stack);
    // dedup so each slot is rewritten exactly once.
    for (std::size_t i = 0; i < n; ++i) {
      if (marks_[i] == 0) continue;
      HeapObject& o = heap_->at(i);
      for (Value& e : o.elems) {
        if (e.kind == ValKind::kRef) e.ref = forward_[e.ref];
      }
      for (Value& f : o.fields) {
        if (f.kind == ValKind::kRef) f.ref = forward_[f.ref];
      }
      if (o.boxed.kind == ValKind::kRef) o.boxed.ref = forward_[o.boxed.ref];
    }
    std::sort(valueRoots_.begin(), valueRoots_.end());
    valueRoots_.erase(std::unique(valueRoots_.begin(), valueRoots_.end()),
                      valueRoots_.end());
    std::sort(refRoots_.begin(), refRoots_.end());
    refRoots_.erase(std::unique(refRoots_.begin(), refRoots_.end()),
                    refRoots_.end());
    for (Value* v : valueRoots_) v->ref = forward_[v->ref];
    for (Ref* r : refRoots_) *r = forward_[*r];

    // Slide survivors left (old index >= new index, ascending order, so
    // no survivor is overwritten before it moves) and drop the tail.
    for (std::size_t i = 0; i < n; ++i) {
      if (marks_[i] != 0 && forward_[i] != i) {
        heap_->at(forward_[i]) = std::move(heap_->at(i));
      }
    }
    heap_->truncate(live);
  }

  ++collections_;
  objectsReclaimed_ += n - live;
  bytesReclaimed_ += deadBytes;

  // Re-arm: collecting again before the heap at least doubles past the
  // live set would thrash; max() keeps the configured floor. Deterministic
  // in allocation count, so bit-identity tests can rely on trigger points.
  threshold_ = std::max(limit_, live * 2);

  if (postCompact_) postCompact_();

  const std::uint64_t pauseNs = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  totalPauseNs_ += pauseNs;
  maxPauseNs_ = std::max(maxPauseNs_, pauseNs);

  static obs::Counter& gcs = obs::Registry::global().counter("gc.collections");
  static obs::Counter& reclaimedObjects =
      obs::Registry::global().counter("gc.objects.reclaimed");
  static obs::Counter& reclaimedBytes =
      obs::Registry::global().counter("gc.bytes.reclaimed");
  static obs::Histogram& pause =
      obs::Registry::global().histogram("gc.pause.ns");
  gcs.add(1);
  reclaimedObjects.add(n - live);
  reclaimedBytes.add(deadBytes);
  pause.record(pauseNs);
}

}  // namespace jepo::jvm
