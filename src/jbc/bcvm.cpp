#include "jbc/bcvm.hpp"

#include "jvm/ops.hpp"
#include "jvm/tier.hpp"

// Dispatch strategy. Computed goto ("labels as values", a GNU extension
// GCC and Clang both support) keeps one indirect branch per opcode handler,
// so the host branch predictor learns per-opcode successor patterns instead
// of sharing one mispredicting switch branch. -DJEPO_NO_COMPUTED_GOTO (or a
// different compiler) selects a portable switch loop over the exact same
// handler bodies; both paths are built in CI.
#if !defined(JEPO_NO_COMPUTED_GOTO) && (defined(__GNUC__) || defined(__clang__))
#define JEPO_COMPUTED_GOTO 1
#endif

namespace jepo::jbc {

using jvm::BuiltinLibrary;
using jvm::HeapObject;
using jvm::ObjKind;
using jvm::Ref;
using jvm::Thrown;
using jvm::ValKind;
using jvm::Value;

namespace {

/// Per-invocation hook dispatch under tiering (finishInvoke): hooks off,
/// hooks on (full instrumentation or a sampled-in entry), or counted-only
/// (unsampled entry — population counter, no hook calls).
enum : std::uint8_t { kHooksOff = 0, kHooksOn, kHooksCounted };

/// Exit accounting for an unsampled entry executed on the fused
/// trivial-call path: mirrors the framed ExitGuard, running on normal
/// return and on every unwind (Thrown and VM aborts alike — the framed
/// guard's destructor makes no distinction either).
struct TierCountGuard {
  jvm::TierGate* gate = nullptr;
  const jvm::MethodRef* ref = nullptr;
  ~TierCountGuard() {
    if (gate != nullptr) gate->exitUnsampled(*ref);
  }
};

/// Layout-offset field lookup for the dynamic (name-keyed) field opcodes —
/// the fallback shapes the compiler emits when a site could not be cached.
Value* fieldByName(HeapObject& ho, const std::string& fieldName) {
  if (ho.layout == nullptr) return nullptr;
  const int i = ho.layout->indexOfName(fieldName);
  if (i < 0) return nullptr;
  return &ho.fields[static_cast<std::size_t>(i)];
}

#if defined(__GNUC__) || defined(__clang__)
#define JEPO_FORCE_INLINE __attribute__((always_inline)) inline
#define JEPO_LAMBDA_INLINE __attribute__((always_inline))
#else
#define JEPO_FORCE_INLINE inline
#define JEPO_LAMBDA_INLINE
#endif

/// int×int binary fast path, bit-exact with applyBinary (ops.cpp): for two
/// kInt operands unboxIfNeeded is the identity and charges nothing, there
/// is no sub-int widening charge, the promoted kind is kInt, and the string
/// / reference-equality / boolean special cases never apply. Returns false
/// (charging nothing) for any other operand shape. Forced inline so the
/// dominant int path stays inside each dispatch handler.
JEPO_FORCE_INLINE bool fastIntBinary(jlang::BinOp op, const Value& a,
                                     const Value& b, BuiltinLibrary& lib,
                                     energy::SimMachine& machine,
                                     Value* out) {
  if (a.kind != ValKind::kInt || b.kind != ValKind::kInt) return false;
  const std::int64_t x = a.asInt();
  const std::int64_t y = b.asInt();
  bool cmp = false;
  std::int64_t r = 0;
  switch (op) {
    case jlang::BinOp::kLt: cmp = x < y; goto compared;
    case jlang::BinOp::kGt: cmp = x > y; goto compared;
    case jlang::BinOp::kLe: cmp = x <= y; goto compared;
    case jlang::BinOp::kGe: cmp = x >= y; goto compared;
    case jlang::BinOp::kEq: cmp = x == y; goto compared;
    case jlang::BinOp::kNe: cmp = x != y; goto compared;
    case jlang::BinOp::kAdd:
      machine.charge(energy::Op::kIntAlu);
      r = static_cast<std::int64_t>(static_cast<std::uint64_t>(x) +
                                    static_cast<std::uint64_t>(y));
      break;
    case jlang::BinOp::kSub:
      machine.charge(energy::Op::kIntAlu);
      r = static_cast<std::int64_t>(static_cast<std::uint64_t>(x) -
                                    static_cast<std::uint64_t>(y));
      break;
    case jlang::BinOp::kMul:
      machine.charge(energy::Op::kIntAlu);
      r = static_cast<std::int64_t>(static_cast<std::uint64_t>(x) *
                                    static_cast<std::uint64_t>(y));
      break;
    case jlang::BinOp::kDiv:
      machine.charge(energy::Op::kIntDiv);  // charged before the zero check,
      if (y == 0) lib.throwJava("ArithmeticException", "/ by zero");
      r = x / y;                            // exactly as arith() does
      break;
    case jlang::BinOp::kMod:
      machine.charge(energy::Op::kIntMod);
      if (y == 0) lib.throwJava("ArithmeticException", "% by zero");
      r = x % y;
      break;
    case jlang::BinOp::kBitAnd:
      machine.charge(energy::Op::kIntAlu);
      r = x & y;
      break;
    case jlang::BinOp::kBitOr:
      machine.charge(energy::Op::kIntAlu);
      r = x | y;
      break;
    case jlang::BinOp::kBitXor:
      machine.charge(energy::Op::kIntAlu);
      r = x ^ y;
      break;
    case jlang::BinOp::kShl:
      machine.charge(energy::Op::kIntAlu);
      r = static_cast<std::int64_t>(static_cast<std::uint64_t>(x) << (y & 31));
      break;
    case jlang::BinOp::kShr:
      machine.charge(energy::Op::kIntAlu);
      r = x >> (y & 31);
      break;
    default:
      return false;  // &&/|| never reach kBinary; keep applyBinary's error
  }
  // wrapToKind(r, kInt) inlined: sign-extended int32 truncation.
  *out = Value::ofInt(static_cast<std::int64_t>(static_cast<std::int32_t>(r)));
  return true;
compared:
  machine.charge(energy::Op::kIntAlu);
  *out = Value::ofBool(cmp);
  return true;
}

/// coerceToKind with its identity head (same kind, or a kRef target)
/// inlined at the call site — the overwhelmingly common already-typed case
/// skips the out-of-line call. Bit-exact: these are the first two lines of
/// jvm::coerceToKind, which charge nothing.
JEPO_FORCE_INLINE Value coerceInline(const Value& v, ValKind k,
                                     BuiltinLibrary& lib, int line) {
  if (v.kind == k || k == ValKind::kRef) return v;
  return jvm::coerceToKind(v, k, lib, line);
}

/// The kThisFieldAccumReturn body (`f1 = f1 <op> f2; return f1;`), shared
/// by the trivial-callee inline helpers. Replays the seed charge sequence
/// exactly; `self` stays valid across an allocating binary because heap
/// addresses are stable between safepoints.
JEPO_FORCE_INLINE Value fieldAccumReturnImpl(const Instr& in0,
                                             const Value& thisV,
                                             jvm::Heap& heap,
                                             jvm::BuiltinLibrary& builtins,
                                             energy::SimMachine& machine) {
  const std::int32_t aa = in0.a;
  const std::size_t o1 = static_cast<std::size_t>(aa & 0xFFF);
  machine.charge(energy::Op::kFieldAccess);
  HeapObject& self = heap.get(thisV.asRef());
  const Value a = self.fields[o1];
  machine.charge(energy::Op::kFieldAccess);
  const Value b = self.fields[static_cast<std::size_t>((aa >> 12) & 0xFFF)];
  Value r;
  if (!fastIntBinary(static_cast<jlang::BinOp>(in0.b & 0xFF), a, b, builtins,
                     machine, &r)) {
    r = jvm::applyBinary(static_cast<jlang::BinOp>(in0.b & 0xFF), a, b, heap,
                         builtins, machine, in0.line);
  }
  const std::int32_t castE = (in0.b >> 8) & 0xF;
  if (castE != 15) {
    r = coerceInline(r, static_cast<ValKind>(castE), builtins, in0.line);
  }
  machine.charge(energy::Op::kFieldAccess);
  Value& field = self.fields[o1];
  if (field.isNumeric() && r.isNumeric()) {
    r = coerceInline(r, field.kind, builtins, in0.line);
  }
  field = r;
  machine.charge(energy::Op::kFieldAccess);
  return field;
}

}  // namespace

BytecodeVm::BytecodeVm(const CompiledProgram& program,
                       energy::SimMachine& machine)
    : program_(&program),
      resolution_(program.resolution),
      machine_(&machine),
      builtins_(heap_, machine, out_, [this](const std::string& name) {
        return program_->findClass(name) != nullptr;
      }),
      gc_(heap_, [this](jvm::Gc::RootWalker& w) { scanGcRoots(w); }) {
  gc_.setLimit(jvm::Gc::limitFromEnv());
  gc_.setPostCompact([this] {
    // A recycled Ref must not resurrect a stale row-cache hit: remap the
    // cached row if it survived, otherwise invalidate the cache.
    if (lastRowArray_ != kNullRef) lastRowArray_ = gc_.remap(lastRowArray_);
  });
  JEPO_REQUIRE(resolution_ != nullptr,
               "CompiledProgram carries no resolution (use jbc::compile)");
  const jlang::Resolution& res = *resolution_;
  statics_.assign(static_cast<std::size_t>(res.staticCount), Value::null());
  classInitDone_.assign(res.classes.size(), 0);
  literalByName_.assign(program.names.size(), kNullRef);
  callCaches_.assign(static_cast<std::size_t>(res.numCallCaches),
                     CallCacheEntry{});
  fieldCaches_.assign(static_cast<std::size_t>(res.numFieldCaches),
                      FieldCacheEntry{});
  classById_.assign(res.classes.size(), nullptr);
  methodChunks_.resize(res.classes.size());
  staticDefaults_.resize(res.classes.size());
  objectTemplates_.resize(res.classes.size());
  codeById_.assign(program.chunkCount, nullptr);
  quickened_.resize(program.chunkCount);
  // Classify trivial callees once: a single fused accessor instruction, no
  // exception table, and every slot it reads is a parameter slot (so the
  // body never touches a default-initialized local).
  trivialKind_.assign(program.chunkCount, kNotTrivial);
  const auto classify = [this](const Chunk& ch) {
    if (!ch.handlers.empty() || ch.code.empty() ||
        ch.chunkId >= trivialKind_.size()) {
      return;
    }
    const Instr& in0 = ch.code[0];
    const auto nParams = static_cast<std::int32_t>(ch.paramKinds.size());
    std::uint8_t kind = kNotTrivial;
    switch (in0.op) {
      case Op::kLoadLoadBinaryReturn:
        if (in0.a < nParams && (in0.b & 0xFFFFF) < nParams) {
          kind = kTrivLoadLoadBinaryReturn;
        }
        break;
      case Op::kLoadReturn:
        if (in0.a < nParams) kind = kTrivLoadReturn;
        break;
      case Op::kThisFieldReturn:
        if (nParams >= 1) kind = kTrivThisFieldReturn;
        break;
      case Op::kThisFieldAccumReturn:
        if (nParams >= 1) kind = kTrivThisFieldAccumReturn;
        break;
      default:
        break;
    }
    trivialKind_[ch.chunkId] = kind;
  };
  for (const auto& [clsName, compiled] : program.classes) {
    (void)clsName;
    classify(compiled.clinit);
    classify(compiled.initFields);
    for (const auto& [methodName, m] : compiled.methods) {
      (void)methodName;
      classify(m);
    }
  }
  for (std::size_t id = 0; id < res.classes.size(); ++id) {
    const jlang::ResolvedClass& rc = res.classes[id];
    // Shadowed duplicate class names never execute (findClass returns the
    // first); leave their rows empty.
    if (res.classIdOf(rc.layout.className) != static_cast<std::int32_t>(id)) {
      continue;
    }
    const CompiledClass* cls = program.findClass(rc.layout.className);
    if (cls == nullptr) continue;
    classById_[id] = cls;
    auto& chunks = methodChunks_[id];
    chunks.reserve(rc.methods.size());
    for (const auto& rm : rc.methods) {
      const auto it = cls->methods.find(rm.decl->name);
      chunks.push_back(it == cls->methods.end() ? nullptr : &it->second);
    }
    for (const CompiledField& f : cls->fields) {
      if (f.isStatic) {
        const int idx = rc.staticIndexOf(f.name);
        if (idx >= 0) staticDefaults_[id].emplace_back(rc.staticSlots[idx],
                                                       f.kind);
      } else {
        objectTemplates_[id].push_back(jvm::Heap::defaultValue(f.kind));
      }
    }
  }
}

void BytecodeVm::throwStepLimit() const {
  throw VmError("bytecode step limit exceeded (" +
                std::to_string(maxSteps_) + ")");
}

void BytecodeVm::throwCancelled() const {
  throw CancelledError(cancel_->reason());
}

void BytecodeVm::chargeRowLoad(Ref array, std::int64_t index,
                               bool rowIsArray) {
  if (!rowIsArray) {
    charge(energy::Op::kArrayAccess);
    return;
  }
  if (array == lastRowArray_ && index == lastRowIndex_) {
    charge(energy::Op::kArrayAccess);
  } else {
    charge(energy::Op::kArrayRowLoad);
  }
  lastRowArray_ = array;
  lastRowIndex_ = index;
}

void BytecodeVm::ensureClassInit(const std::string& className) {
  const std::int32_t id = resolution_->classIdOf(className);
  if (id >= 0) ensureClassInitById(id);
}

void BytecodeVm::ensureClassInitById(std::int32_t classId) {
  const auto idx = static_cast<std::size_t>(classId);
  if (classInitDone_[idx] != 0) return;
  classInitDone_[idx] = 1;  // marked before <clinit>: recursion guard
  const CompiledClass* cls = classById_[idx];
  if (cls == nullptr) return;
  for (const auto& [slot, kind] : staticDefaults_[idx]) {
    statics_[static_cast<std::size_t>(slot)] = jvm::Heap::defaultValue(kind);
  }
  // Fusion never produces an empty chunk and kReturnVoid never fuses, so a
  // non-trivial <clinit> still has > 1 instructions post-fusion.
  if (cls->clinit.code.size() > 1) {
    invoke(*cls, cls->clinit, {});
  }
}

jvm::Value* BytecodeVm::findStaticByName(const std::string& className,
                                         const std::string& fieldName) {
  const std::int32_t id = resolution_->classIdOf(className);
  if (id < 0) return nullptr;
  const jlang::ResolvedClass& rc =
      resolution_->classes[static_cast<std::size_t>(id)];
  const int idx = rc.staticIndexOf(fieldName);
  if (idx < 0) return nullptr;
  return &statics_[static_cast<std::size_t>(rc.staticSlots[idx])];
}

jvm::Value BytecodeVm::allocArray(const std::vector<std::int64_t>& dims,
                                  std::size_t level, ValKind leafKind) {
  const bool innermost = level + 1 == dims.size();
  const ValKind ek = innermost ? leafKind : ValKind::kRef;
  const auto n = static_cast<std::size_t>(dims[level]);
  charge(energy::Op::kAllocObject);
  charge(energy::Op::kAllocArrayPerElem, n);
  const Ref r = heap_.allocArray(n, ek);
  if (!innermost) {
    for (std::size_t i = 0; i < n; ++i) {
      heap_.get(r).elems[i] = allocArray(dims, level + 1, leafKind);
    }
  }
  return Value::ofRef(r);
}

jvm::Value BytecodeVm::construct(const std::string& className,
                                 std::vector<Value> args, int line) {
  Value builtinResult;
  if (builtins_.construct(className, args, &builtinResult)) {
    return builtinResult;
  }
  const std::int32_t id = resolution_->classIdOf(className);
  if (id < 0 || classById_[static_cast<std::size_t>(id)] == nullptr) {
    throw VmError("unknown class " + className + " at line " +
                  std::to_string(line));
  }
  return constructById(id, std::move(args));
}

jvm::Value BytecodeVm::constructById(std::int32_t classId,
                                     std::vector<Value> args) {
  // args live across <clinit>, <initfields> and constructor safepoints.
  jvm::Gc::ScopedVector rootArgs(gc_, args);
  return constructByIdSpan(classId, args.data(), args.size());
}

jvm::Value BytecodeVm::constructByIdSpan(std::int32_t classId,
                                         const Value* args,
                                         std::size_t argc) {
  const auto idx = static_cast<std::size_t>(classId);
  const CompiledClass& cls = *classById_[idx];
  const jlang::ResolvedClass& rc = resolution_->classes[idx];
  charge(energy::Op::kAllocObject);
  // Span callers keep args on the caller's (rooted) operand stack; the
  // fresh object is only reachable through `r` until returned.
  ensureClassInitById(classId);
  Ref r = heap_.allocObject(cls.name, rc.layout);
  jvm::Gc::ScopedRef rootR(gc_, r);
  heap_.get(r).fields = objectTemplates_[idx];
  if (cls.initFields.code.size() > 1) {
    invokeRecvSpan(cls, cls.initFields, Value::ofRef(r), nullptr, 0);
  }
  const auto ctor = cls.methods.find(cls.name);
  if (ctor != cls.methods.end()) {
    invokeRecvSpan(cls, ctor->second, Value::ofRef(r), args, argc);
  } else {
    JEPO_REQUIRE(argc == 0,
                 "class " + cls.name + " has no constructor taking args");
  }
  return Value::ofRef(r);
}

BytecodeVm::Frame& BytecodeVm::acquireFrame(const Chunk& chunk) {
  if (frameDepth_ >= framePool_.size()) {
    framePool_.push_back(std::make_unique<Frame>());
  }
  Frame& f = *framePool_[frameDepth_];
  const auto nSlots = static_cast<std::size_t>(chunk.numSlots);
  // +2: one for the exception push on handler entry of a zero-depth chunk,
  // one safety margin over the dataflow bound.
  const auto nStack = static_cast<std::size_t>(chunk.maxStack) + 2;
  if (f.slots.size() < nSlots) f.slots.resize(nSlots);
  if (f.stack.size() < nStack) f.stack.resize(nStack);
  // Parameter slots are written by every caller before the frame goes
  // live (the argc REQUIREs run before acquire), so only the locals past
  // them need the default-null reset.
  const auto nParams = chunk.paramKinds.size();
  if (nParams < nSlots) {
    std::fill(f.slots.data() + nParams, f.slots.data() + nSlots, Value());
  }
  f.liveSlots = nSlots;
  f.top = 0;
  return f;
}

jvm::Value BytecodeVm::invoke(const CompiledClass& cls, const Chunk& chunk,
                              std::vector<Value> args) {
  if (frameDepth_ >= kMaxFrames) {
    throwJava("StackOverflowError", chunk.qualifiedName);
  }
  JEPO_REQUIRE(args.size() == chunk.paramKinds.size(),
               "wrong argument count for " + chunk.qualifiedName);
  Frame& frame = acquireFrame(chunk);
  Value* const slots = frame.slots.data();
  for (std::size_t i = 0; i < args.size(); ++i) {
    charge(energy::Op::kLocalAccess);
    slots[i] = coerceInline(args[i], chunk.paramKinds[i], builtins_, 0);
  }
  return finishInvoke(cls, chunk, frame);
}

jvm::Value BytecodeVm::invokeSpan(const CompiledClass& cls,
                                  const Chunk& chunk, const Value* args,
                                  std::size_t argc) {
  if (frameDepth_ >= kMaxFrames) {
    throwJava("StackOverflowError", chunk.qualifiedName);
  }
  JEPO_REQUIRE(argc == chunk.paramKinds.size(),
               "wrong argument count for " + chunk.qualifiedName);
  Frame& frame = acquireFrame(chunk);
  Value* const slots = frame.slots.data();
  for (std::size_t i = 0; i < argc; ++i) {
    charge(energy::Op::kLocalAccess);
    slots[i] = coerceInline(args[i], chunk.paramKinds[i], builtins_, 0);
  }
  return finishInvoke(cls, chunk, frame);
}

jvm::Value BytecodeVm::invokeRecvSpan(const CompiledClass& cls,
                                      const Chunk& chunk, const Value& recv,
                                      const Value* rest, std::size_t nRest) {
  if (frameDepth_ >= kMaxFrames) {
    throwJava("StackOverflowError", chunk.qualifiedName);
  }
  JEPO_REQUIRE(nRest + 1 == chunk.paramKinds.size(),
               "wrong argument count for " + chunk.qualifiedName);
  Frame& frame = acquireFrame(chunk);
  Value* const slots = frame.slots.data();
  charge(energy::Op::kLocalAccess);
  slots[0] = coerceInline(recv, chunk.paramKinds[0], builtins_, 0);
  for (std::size_t i = 0; i < nRest; ++i) {
    charge(energy::Op::kLocalAccess);
    slots[i + 1] = coerceInline(rest[i], chunk.paramKinds[i + 1],
                                builtins_, 0);
  }
  return finishInvoke(cls, chunk, frame);
}

jvm::Value BytecodeVm::finishInvoke(const CompiledClass& cls,
                                    const Chunk& chunk, Frame& frame) {
  // The frame becomes visible to the GC root scan only now, fully
  // initialized; no safepoint can run between acquireFrame and here.
  ++frameDepth_;
  const jvm::MethodRef ref{chunk.methodId, &chunk.qualifiedName};
  // Tier dispatch: a branch on the hoisted gate pointer (see setHooks).
  // No gate (full instrumentation) keeps the seed-exact path; an
  // unsampled entry pays the gate's counter increment and skips both
  // hook calls — no MSR reads, no record allocation.
  std::uint8_t hookMode = kHooksOff;
  if (hooks_ != nullptr) {
    hookMode = (tier_ == nullptr || tier_->enter(ref)) ? kHooksOn
                                                       : kHooksCounted;
  }
  if (hookMode == kHooksOn) hooks_->onEnter(ref);
  struct ExitGuard {
    BytecodeVm* self;
    const jvm::MethodRef* ref;
    std::uint8_t mode;
    ~ExitGuard() {
      if (mode == kHooksOn) {
        self->hooks_->onExit(*ref);
      } else if (mode == kHooksCounted) {
        self->tier_->exitUnsampled(*ref);
      }
      --self->frameDepth_;
    }
  } guard{this, &ref, hookMode};

  const Value result = run(cls, chunk, frame);
  charge(energy::Op::kReturn);
  return result;
}

// Trivial-callee inlining. The framed flow for an eligible call is: depth
// check, argc check, per-argument {charge(kLocalAccess); identity coerce},
// callee VM_TOP (steps += n, limit check, safepoint with the new frame's
// top = 0), the single fused body instruction, charge(kReturn). Both
// helpers replay exactly that sequence without acquiring a frame. The
// identity coercions are guaranteed by the kind precheck (every argument
// kind already equals its parameter kind, or the parameter is kRef — the
// exact first test of coerceToKind), which also means no throw can land
// between the argument charges, so they merge into one counted charge.
// The safepoint sees the same root object set as the framed flow: the
// arguments are still live on the caller's stack under frame.top (recorded
// at the call's own dispatch before sp was lowered — fused load-load call
// handlers re-record it after pushing their argument pair), and the callee
// frame it replaces held only copies of those values plus null locals. Argument
// values are re-read through the caller's rooted storage *after* the
// safepoint, so a compaction's remaps are observed just as callee-frame
// slots would have been.
bool BytecodeVm::inlineSpanCall(const Chunk& chunk, const Value* args,
                                std::size_t argc, Value* out) {
  if (chunk.chunkId >= trivialKind_.size()) return false;
  const jvm::MethodRef ref{chunk.methodId, &chunk.qualifiedName};
  // With hooks installed the call may stay fused only if a sampling gate
  // declines this entry — peek (no ordinal commit yet: a framed bailout
  // below must not double-count) and fall back to the framed path for
  // instrumented entries.
  if (hooks_ != nullptr && (tier_ == nullptr || tier_->peekAdmit(ref))) {
    return false;
  }
  const std::uint8_t triv = trivialKind_[chunk.chunkId];
  if (triv == kNotTrivial) return false;
  if (argc != chunk.paramKinds.size()) return false;
  for (std::size_t i = 0; i < argc; ++i) {
    const ValKind k = chunk.paramKinds[i];
    if (args[i].kind != k && k != ValKind::kRef) return false;
  }
  if (frameDepth_ >= kMaxFrames) {
    throwJava("StackOverflowError", chunk.qualifiedName);
  }
  // Point of no return: commit the unsampled entry to the gate, with exit
  // accounting on every unwind — the same paths the framed ExitGuard runs.
  TierCountGuard countGuard;
  if (hooks_ != nullptr) {
    tier_->enter(ref);
    countGuard.gate = tier_;
    countGuard.ref = &ref;
  }
  if (argc != 0) charge(energy::Op::kLocalAccess, argc);
  const Instr& in0 = chunk.code[0];
  steps_ += in0.n;
  if (steps_ > maxStepsEff_) throwStepLimit();
  if (gc_.limit() != 0) gc_.safepoint();
  Value result;
  switch (triv) {
    case kTrivLoadLoadBinaryReturn: {
      const std::int32_t bb = in0.b;
      charge(energy::Op::kLocalAccess, 2);
      const Value a = args[static_cast<std::size_t>(in0.a)];
      const Value b = args[static_cast<std::size_t>(bb & 0xFFFFF)];
      if (!fastIntBinary(static_cast<jlang::BinOp>((bb >> 20) & 0x1F), a, b,
                         builtins_, *machine_, &result)) {
        result = jvm::applyBinary(static_cast<jlang::BinOp>((bb >> 20) & 0x1F),
                                  a, b, heap_, builtins_, *machine_, in0.line);
      }
      break;
    }
    case kTrivLoadReturn:
      charge(energy::Op::kLocalAccess);
      result = args[static_cast<std::size_t>(in0.a)];
      break;
    case kTrivThisFieldAccumReturn:
      result = fieldAccumReturnImpl(in0, args[0], heap_, builtins_,
                                   *machine_);
      break;
    default:  // kTrivThisFieldReturn
      charge(energy::Op::kFieldAccess);
      result = heap_.get(args[0].asRef())
                   .fields[static_cast<std::size_t>(in0.a)];
      break;
  }
  charge(energy::Op::kReturn);
  *out = result;
  return true;
}

bool BytecodeVm::inlineRecvCall(const Chunk& chunk, const Value& recv,
                                const Value* rest, std::size_t nRest,
                                Value* out) {
  if (chunk.chunkId >= trivialKind_.size()) return false;
  const jvm::MethodRef ref{chunk.methodId, &chunk.qualifiedName};
  if (hooks_ != nullptr && (tier_ == nullptr || tier_->peekAdmit(ref))) {
    return false;
  }
  const std::uint8_t triv = trivialKind_[chunk.chunkId];
  if (triv == kNotTrivial) return false;
  if (nRest + 1 != chunk.paramKinds.size()) return false;
  if (recv.kind != chunk.paramKinds[0] &&
      chunk.paramKinds[0] != ValKind::kRef) {
    return false;
  }
  for (std::size_t i = 0; i < nRest; ++i) {
    const ValKind k = chunk.paramKinds[i + 1];
    if (rest[i].kind != k && k != ValKind::kRef) return false;
  }
  if (frameDepth_ >= kMaxFrames) {
    throwJava("StackOverflowError", chunk.qualifiedName);
  }
  TierCountGuard countGuard;
  if (hooks_ != nullptr) {
    tier_->enter(ref);
    countGuard.gate = tier_;
    countGuard.ref = &ref;
  }
  charge(energy::Op::kLocalAccess, nRest + 1);
  const Instr& in0 = chunk.code[0];
  steps_ += in0.n;
  if (steps_ > maxStepsEff_) throwStepLimit();
  if (gc_.limit() != 0) gc_.safepoint();
  // recv binds the caller's slot 0 and rest the caller's stack — both
  // rooted storage, so these reads observe any compaction remaps.
  const auto slotVal = [&](std::int32_t s) -> const Value& {
    return s == 0 ? recv : rest[static_cast<std::size_t>(s) - 1];
  };
  Value result;
  switch (triv) {
    case kTrivLoadLoadBinaryReturn: {
      const std::int32_t bb = in0.b;
      charge(energy::Op::kLocalAccess, 2);
      const Value a = slotVal(in0.a);
      const Value b = slotVal(bb & 0xFFFFF);
      if (!fastIntBinary(static_cast<jlang::BinOp>((bb >> 20) & 0x1F), a, b,
                         builtins_, *machine_, &result)) {
        result = jvm::applyBinary(static_cast<jlang::BinOp>((bb >> 20) & 0x1F),
                                  a, b, heap_, builtins_, *machine_, in0.line);
      }
      break;
    }
    case kTrivLoadReturn:
      charge(energy::Op::kLocalAccess);
      result = slotVal(in0.a);
      break;
    case kTrivThisFieldAccumReturn:
      result = fieldAccumReturnImpl(in0, recv, heap_, builtins_,
                                   *machine_);
      break;
    default:  // kTrivThisFieldReturn
      charge(energy::Op::kFieldAccess);
      result = heap_.get(recv.asRef())
                   .fields[static_cast<std::size_t>(in0.a)];
      break;
  }
  charge(energy::Op::kReturn);
  *out = result;
  return true;
}

Instr* BytecodeVm::quickenableCode(const Chunk& chunk) {
  const std::size_t id = chunk.chunkId;
  if (id >= quickened_.size() || chunk.code.empty()) return nullptr;
  std::vector<Instr>& copy = quickened_[id];
  if (copy.empty()) {
    copy.assign(chunk.code.begin(), chunk.code.end());
    codeById_[id] = copy.data();
  }
  return copy.data();
}

jvm::Value BytecodeVm::run(const CompiledClass& cls, const Chunk& chunk,
                           Frame& frame) {
  const auto& names = program_->names;
  const auto name = [&](std::int32_t idx) -> const std::string& {
    return names[static_cast<std::size_t>(idx)];
  };

  // Dispatch from the quickened copy when one exists; `codeBase`/`ip` are
  // re-pointed in place if this very run performs the first quickening.
  const Instr* codeBase =
      chunk.chunkId < codeById_.size() && codeById_[chunk.chunkId] != nullptr
          ? codeById_[chunk.chunkId]
          : chunk.code.data();
  const Instr* codeEnd = codeBase + chunk.code.size();
  const Instr* ip = codeBase;
  Value* const slots = frame.slots.data();
  Value* const stackBase = frame.stack.data();
  Value* sp = stackBase;

  const auto pop = [&]() -> Value {
    JEPO_ASSERT(sp > stackBase);
    return *--sp;
  };
  const auto popArgs = [&](std::int32_t argc) {
    JEPO_ASSERT(sp - stackBase >= argc);
    std::vector<Value> args(sp - argc, sp);
    sp -= argc;
    return args;
  };
  const auto binary = [&](jlang::BinOp op, const Value& a, const Value& b,
                          int line) JEPO_LAMBDA_INLINE -> Value {
    Value r;
    if (fastIntBinary(op, a, b, builtins_, *machine_, &r)) [[likely]] {
      return r;
    }
    return jvm::applyBinary(op, a, b, heap_, builtins_, *machine_, line);
  };
  // The seed kStore coercion rule; enc < 0 and the 4-bit kNoKindEnc (15)
  // both mean "no declared kind". Charges the kLocalAccess of the store.
  const auto storeToSlot = [&](std::int32_t slot, std::int32_t kindEnc,
                               Value v, int line) {
    charge(energy::Op::kLocalAccess);
    if (kindEnc >= 0 && kindEnc < 15 &&
        static_cast<ValKind>(kindEnc) != ValKind::kRef && v.isNumeric()) {
      v = coerceInline(v, static_cast<ValKind>(kindEnc), builtins_,
                            line);
    }
    slots[static_cast<std::size_t>(slot)] = v;
  };
  // Re-point the dispatch locals at the quickened copy after a rewrite.
  const auto switchTo = [&](Instr* mut) {
    if (mut != codeBase) {
      const std::size_t myPc = static_cast<std::size_t>(ip - codeBase);
      codeBase = mut;
      codeEnd = mut + chunk.code.size();
      ip = mut + myPc;
    }
  };
  // Shared bodies of the resolved call ops, also entered from their
  // load-load fused prefixes. Each replaces the argument span on the
  // caller stack with the call result.
  const auto callSelfResolved = [&](std::int32_t ordinal, std::int32_t argc,
                                    std::int32_t prependThis)
                                    JEPO_LAMBDA_INLINE {
    ensureClassInitById(cls.classId);
    charge(energy::Op::kCall);
    const Chunk& target = *methodChunks_[static_cast<std::size_t>(cls.classId)]
                                        [static_cast<std::size_t>(ordinal)];
    Value result;
    if (prependThis != 0) {
      if (!inlineRecvCall(target, slots[0], sp - argc,
                          static_cast<std::size_t>(argc), &result)) {
        result = invokeRecvSpan(cls, target, slots[0], sp - argc,
                                static_cast<std::size_t>(argc));
      }
    } else if (!inlineSpanCall(target, sp - argc,
                               static_cast<std::size_t>(argc), &result)) {
      result = invokeSpan(cls, target, sp - argc,
                          static_cast<std::size_t>(argc));
    }
    sp -= argc;
    *sp++ = result;
  };
  const auto callVirtualCached = [&](std::int32_t nameIdx, std::int32_t argc,
                                     std::int32_t cacheSlot, int line)
                                     JEPO_LAMBDA_INLINE {
    const Value receiver = sp[-(argc + 1)];
    if (receiver.isNull()) {
      throwJava("NullPointerException", "call '" + name(nameIdx) +
                                            "' on null at line " +
                                            std::to_string(line));
    }
    // Fast path: a program-class object dispatches through the monomorphic
    // cache. BuiltinLibrary::instanceCall is a no-op for such receivers
    // (it charges nothing and always declines), so skipping the probe is
    // observationally identical to the seed.
    if (receiver.isRef()) {
      HeapObject& obj = heap_.get(receiver.asRef());
      if (obj.kind == ObjKind::kObject && obj.layout != nullptr &&
          obj.layout->classId >= 0) {
        CallCacheEntry& cc = callCaches_[static_cast<std::size_t>(cacheSlot)];
        if (cc.classId != obj.layout->classId) {
          const std::int32_t id = obj.layout->classId;
          const jlang::ResolvedClass& rc =
              resolution_->classes[static_cast<std::size_t>(id)];
          const jlang::ResolvedMethod* rm = rc.findMethod(name(nameIdx));
          const int ordinal = rm != nullptr ? rc.methodOrdinal(rm->decl) : -1;
          const Chunk* target =
              ordinal >= 0 ? methodChunks_[static_cast<std::size_t>(id)]
                                          [static_cast<std::size_t>(ordinal)]
                           : nullptr;
          if (target == nullptr) {
            throw VmError("unknown method " + obj.className + "." +
                          name(nameIdx));
          }
          cc = {id, classById_[static_cast<std::size_t>(id)], target};
        }
        // receiver + args are contiguous on the caller stack — exactly
        // the callee's parameter span. No arg vector, no insert.
        charge(energy::Op::kCall);
        Value result;
        if (!inlineSpanCall(*cc.chunk, sp - argc - 1,
                            static_cast<std::size_t>(argc) + 1, &result)) {
          result = invokeSpan(*cc.cls, *cc.chunk, sp - argc - 1,
                              static_cast<std::size_t>(argc) + 1);
        }
        sp -= argc + 1;
        *sp++ = result;
        return;
      }
    }
    // Slow path: builtin receivers (strings, wrappers, exceptions,
    // StringBuilder) — the seed's dynamic dispatch, verbatim.
    std::vector<Value> args = popArgs(argc);
    (void)pop();  // the receiver, already captured above
    Value result;
    if (builtins_.instanceCall(receiver, name(nameIdx), args, &result)) {
      *sp++ = result;
      return;
    }
    const HeapObject& obj = heap_.get(receiver.asRef());
    JEPO_REQUIRE(obj.kind == ObjKind::kObject, "method call on non-object");
    const CompiledClass* targetCls = program_->findClass(obj.className);
    if (targetCls == nullptr) {
      throw VmError("method call on unknown class " + obj.className);
    }
    const auto it = targetCls->methods.find(name(nameIdx));
    if (it == targetCls->methods.end()) {
      throw VmError("unknown method " + obj.className + "." + name(nameIdx));
    }
    args.insert(args.begin(), receiver);
    charge(energy::Op::kCall);
    *sp++ = invoke(*targetCls, it->second, std::move(args));
  };

  // Hoisted per-dispatch state. setMaxSteps/setHeapLimit are configuration
  // calls made before execution, never from inside a run, so both are
  // loop-invariant; keeping them in locals lets the compiler hold them in
  // registers across the opaque charge()/helper calls in the handlers.
  // When the collector is unarmed (the limit-0 seed behaviour) no
  // collection can ever happen, so recording frame.top for the root scan
  // is dead work and the whole safepoint reduces to one predictable test.
  const std::uint64_t maxStepsHoisted = maxStepsEff_;
  const bool gcArmed = gc_.limit() != 0;
  const CancelToken* const cancelHoisted = cancel_;

// Per-dispatch prologue: record the operand-stack height for the GC root
// scan (this is the engine's only safepoint — no builtin, operator helper
// or allocation path can ever collect), account the fused run length, and
// enforce the step limit plus cooperative cancellation. Every fused
// superinstruction backedge (kCountedAccumLoop dispatches through VM_TOP
// per iteration) re-runs this prologue, so cancellation is never starved
// by the fast path; with no token installed the poll is one test of a
// register-held null pointer.
#define VM_TOP()                                                     \
  do {                                                               \
    if (ip >= codeEnd) return Value::null();                         \
    steps_ += ip->n;                                                 \
    if (steps_ > maxStepsHoisted) throwStepLimit();                  \
    if (cancelHoisted != nullptr && cancelHoisted->cancelled()) {    \
      throwCancelled();                                              \
    }                                                                \
    if (gcArmed) {                                                   \
      frame.top = static_cast<std::size_t>(sp - stackBase);          \
      gc_.safepoint();                                               \
    }                                                                \
  } while (0)

#ifdef JEPO_COMPUTED_GOTO
#define VM_CASE(op) L_##op:
#define VM_DISPATCH()                                                \
  do {                                                               \
    VM_TOP();                                                        \
    goto* kLabels[static_cast<std::size_t>(ip->op)];                 \
  } while (0)
#else
#define VM_CASE(op) case Op::op:
#define VM_DISPATCH() goto jepoDispatchTop
#endif
#define VM_NEXT()                                                    \
  do {                                                               \
    ++ip;                                                            \
    VM_DISPATCH();                                                   \
  } while (0)
#define VM_JUMP(target)                                              \
  do {                                                               \
    ip = codeBase + (target);                                        \
    VM_DISPATCH();                                                   \
  } while (0)

#ifdef JEPO_COMPUTED_GOTO
  // Must list every Op in exact enum order (dispatch indexes by opcode).
  static const void* const kLabels[] = {
      &&L_kConstInt, &&L_kConstLong, &&L_kConstFloat, &&L_kConstDouble,
      &&L_kConstStr, &&L_kConstChar, &&L_kConstBool, &&L_kConstNull,
      &&L_kLoad, &&L_kStore, &&L_kLoadThis,
      &&L_kGetField, &&L_kPutField, &&L_kGetThisField, &&L_kPutThisField,
      &&L_kGetStatic, &&L_kPutStatic,
      &&L_kArrayGet, &&L_kArraySet, &&L_kNewArray,
      &&L_kNewObject,
      &&L_kBinary, &&L_kNeg, &&L_kNot, &&L_kBitNot, &&L_kCast, &&L_kBox,
      &&L_kJump, &&L_kJumpIfFalse, &&L_kJumpIfTrue, &&L_kLoopTick,
      &&L_kTryTick,
      &&L_kCallStatic, &&L_kCallVirtual, &&L_kCallUnqualified, &&L_kPrint,
      &&L_kReturnValue, &&L_kReturnVoid, &&L_kPop, &&L_kDup, &&L_kThrow,
      &&L_kGetStaticSlot, &&L_kPutStaticSlot, &&L_kGetThisFieldSlot,
      &&L_kPutThisFieldSlot, &&L_kGetFieldCached, &&L_kPutFieldCached,
      &&L_kCallStaticResolved, &&L_kCallSelfResolved, &&L_kCallVirtualCached,
      &&L_kLoadLoad, &&L_kLoadReturn, &&L_kThisFieldReturn, &&L_kStorePop,
      &&L_kPutThisFieldSlotPop, &&L_kConstBinary, &&L_kLoadConstBinary,
      &&L_kLoadLoadBinary, &&L_kThisFieldConstBinary, &&L_kThisFieldBinary,
      &&L_kBinaryCast, &&L_kBinCastStorePop, &&L_kLoadLoadBinaryReturn,
      &&L_kLoadConstCmpJump, &&L_kLoadLoadCmpJump, &&L_kLoadConstBinStore,
      &&L_kIncDecLocalStmt, &&L_kLoadLoadConstBinary, &&L_kIncDecJump,
      &&L_kAccumConstStmt, &&L_kThisFieldAccumReturn, &&L_kLoadLoadCallSelf,
      &&L_kLoadLoadCallVirt, &&L_kAccumConstJump, &&L_kStorePopIncDecJump,
      &&L_kBinCastStoreIncDecJump, &&L_kCountedAccumLoop,
  };
  static_assert(sizeof(kLabels) / sizeof(kLabels[0]) ==
                    static_cast<std::size_t>(Op::kCountedAccumLoop) + 1,
                "label table must cover every opcode");
#endif

  for (;;) {
    try {
#ifdef JEPO_COMPUTED_GOTO
      VM_DISPATCH();
#else
    jepoDispatchTop:
      VM_TOP();
      switch (ip->op) {
#endif

      VM_CASE(kConstInt) {
        charge(energy::Op::kConstLoad);
        *sp++ = Value::ofInt(
            program_->intPool[static_cast<std::size_t>(ip->a)]);
        VM_NEXT();
      }
      VM_CASE(kConstLong) {
        charge(energy::Op::kConstLoad);
        *sp++ = Value::ofLong(
            program_->intPool[static_cast<std::size_t>(ip->a)]);
        VM_NEXT();
      }
      VM_CASE(kConstFloat) {
        charge(ip->b != 0 ? energy::Op::kConstLoadPlainDecimal
                          : energy::Op::kConstLoad);
        *sp++ = Value::ofFloat(
            program_->numPool[static_cast<std::size_t>(ip->a)]);
        VM_NEXT();
      }
      VM_CASE(kConstDouble) {
        charge(ip->b != 0 ? energy::Op::kConstLoadPlainDecimal
                          : energy::Op::kConstLoad);
        *sp++ = Value::ofDouble(
            program_->numPool[static_cast<std::size_t>(ip->a)]);
        VM_NEXT();
      }
      VM_CASE(kConstStr) {
        charge(energy::Op::kConstLoad);
        // The names pool is content-deduped at compile time, so a flat
        // vector indexed by name id replaces the seed's hash lookup.
        // Lazy allocation preserves the seed's heap-allocation order.
        Ref& interned = literalByName_[static_cast<std::size_t>(ip->a)];
        if (interned == kNullRef) interned = heap_.allocString(name(ip->a));
        *sp++ = Value::ofRef(interned);
        VM_NEXT();
      }
      VM_CASE(kConstChar) {
        charge(energy::Op::kConstLoad);
        *sp++ = Value::ofChar(ip->a);
        VM_NEXT();
      }
      VM_CASE(kConstBool) {
        charge(energy::Op::kConstLoad);
        *sp++ = Value::ofBool(ip->a != 0);
        VM_NEXT();
      }
      VM_CASE(kConstNull) {
        charge(energy::Op::kConstLoad);
        *sp++ = Value::null();
        VM_NEXT();
      }

      VM_CASE(kLoad) {
        charge(energy::Op::kLocalAccess);
        *sp++ = slots[static_cast<std::size_t>(ip->a)];
        VM_NEXT();
      }
      VM_CASE(kStore) {
        storeToSlot(ip->a, ip->b, pop(), ip->line);
        VM_NEXT();
      }
      VM_CASE(kLoadThis) {
        charge(energy::Op::kLocalAccess);
        *sp++ = slots[0];
        VM_NEXT();
      }

      VM_CASE(kGetField) {
        const Instr in = *ip;
        // Quicken: rewrite this site (in the VM-private copy) into the
        // cached form with a fresh cache slot, then run the dynamic
        // semantics one last time — observationally identical.
        if (Instr* mut = quickenableCode(chunk)) {
          Instr& site = mut[ip - codeBase];
          if (site.op == Op::kGetField) {
            fieldCaches_.push_back(FieldCacheEntry{});
            site.b = static_cast<std::int32_t>(fieldCaches_.size() - 1);
            site.op = Op::kGetFieldCached;
          }
          switchTo(mut);
        }
        const Value obj = pop();
        if (obj.isNull()) {
          throwJava("NullPointerException",
                    "field '" + name(in.a) + "' on null at line " +
                        std::to_string(in.line));
        }
        HeapObject& ho = heap_.get(obj.asRef());
        charge(energy::Op::kFieldAccess);
        if (ho.kind == ObjKind::kArray && name(in.a) == "length") {
          *sp++ = Value::ofInt(static_cast<std::int64_t>(ho.elems.size()));
          VM_NEXT();
        }
        const Value* field = ho.kind == ObjKind::kObject
                                 ? fieldByName(ho, name(in.a))
                                 : nullptr;
        if (field == nullptr) {
          throw VmError("unknown field '" + name(in.a) + "' at line " +
                        std::to_string(in.line));
        }
        *sp++ = *field;
        VM_NEXT();
      }
      VM_CASE(kPutField) {
        const Instr in = *ip;
        if (Instr* mut = quickenableCode(chunk)) {
          Instr& site = mut[ip - codeBase];
          if (site.op == Op::kPutField) {
            fieldCaches_.push_back(FieldCacheEntry{});
            site.b = static_cast<std::int32_t>(fieldCaches_.size() - 1);
            site.op = Op::kPutFieldCached;
          }
          switchTo(mut);
        }
        Value v = pop();
        const Value obj = pop();
        if (obj.isNull()) {
          throwJava("NullPointerException", "store to field of null");
        }
        HeapObject& ho = heap_.get(obj.asRef());
        Value* field = ho.kind == ObjKind::kObject
                           ? fieldByName(ho, name(in.a))
                           : nullptr;
        JEPO_REQUIRE(field != nullptr, "unknown field '" + name(in.a) + "'");
        charge(energy::Op::kFieldAccess);
        if (field->isNumeric() && v.isNumeric()) {
          v = coerceInline(v, field->kind, builtins_, in.line);
        }
        *field = v;
        VM_NEXT();
      }
      VM_CASE(kGetThisField) {
        charge(energy::Op::kFieldAccess);
        HeapObject& self = heap_.get(slots[0].asRef());
        const Value* field = fieldByName(self, name(ip->a));
        JEPO_REQUIRE(field != nullptr,
                     "unknown this-field '" + name(ip->a) + "'");
        *sp++ = *field;
        VM_NEXT();
      }
      VM_CASE(kPutThisField) {
        charge(energy::Op::kFieldAccess);
        Value v = pop();
        HeapObject& self = heap_.get(slots[0].asRef());
        Value* field = fieldByName(self, name(ip->a));
        JEPO_REQUIRE(field != nullptr,
                     "unknown this-field '" + name(ip->a) + "'");
        if (field->isNumeric() && v.isNumeric()) {
          v = coerceInline(v, field->kind, builtins_, ip->line);
        }
        *field = v;
        VM_NEXT();
      }
      VM_CASE(kGetStatic) {
        const std::string& key = name(ip->a);
        const auto dot = key.find('.');
        const std::string className = key.substr(0, dot);
        const std::string fieldName = key.substr(dot + 1);
        if (BuiltinLibrary::isBuiltinClassName(className)) {
          Value v;
          if (builtins_.staticField(className, fieldName, &v)) {
            *sp++ = v;
            VM_NEXT();
          }
        }
        ensureClassInit(className);
        const Value* slot = findStaticByName(className, fieldName);
        if (slot == nullptr) {
          throw VmError("unknown static field " + key + " at line " +
                        std::to_string(ip->line));
        }
        charge(energy::Op::kStaticAccess);
        *sp++ = *slot;
        VM_NEXT();
      }
      VM_CASE(kPutStatic) {
        const std::string& key = name(ip->a);
        const auto dot = key.find('.');
        ensureClassInit(key.substr(0, dot));
        Value* slot =
            findStaticByName(key.substr(0, dot), key.substr(dot + 1));
        if (slot == nullptr) {
          throw VmError("unknown static field " + key);
        }
        charge(energy::Op::kStaticAccess);
        Value v = pop();
        if (slot->isNumeric() && v.isNumeric()) {
          v = coerceInline(v, slot->kind, builtins_, ip->line);
        }
        *slot = v;
        VM_NEXT();
      }

      VM_CASE(kArrayGet) {
        const std::int64_t idx = pop().asInt();
        const Value arr = pop();
        if (arr.isNull()) {
          throwJava("NullPointerException", "array access on null at line " +
                                                std::to_string(ip->line));
        }
        HeapObject& ho = heap_.get(arr.asRef());
        JEPO_REQUIRE(ho.kind == ObjKind::kArray, "indexing a non-array");
        if (idx < 0 || static_cast<std::size_t>(idx) >= ho.elems.size()) {
          throwJava("ArrayIndexOutOfBoundsException",
                    "index " + std::to_string(idx) + " length " +
                        std::to_string(ho.elems.size()) + " at line " +
                        std::to_string(ip->line));
        }
        const Value v = ho.elems[static_cast<std::size_t>(idx)];
        const bool rowIsArray =
            v.isRef() && heap_.get(v.asRef()).kind == ObjKind::kArray;
        chargeRowLoad(arr.asRef(), idx, rowIsArray);
        *sp++ = v;
        VM_NEXT();
      }
      VM_CASE(kArraySet) {
        Value v = pop();
        const std::int64_t idx = pop().asInt();
        const Value arr = pop();
        if (arr.isNull()) {
          throwJava("NullPointerException", "store to null array");
        }
        HeapObject& ho = heap_.get(arr.asRef());
        JEPO_REQUIRE(ho.kind == ObjKind::kArray, "indexing a non-array");
        if (idx < 0 || static_cast<std::size_t>(idx) >= ho.elems.size()) {
          throwJava("ArrayIndexOutOfBoundsException",
                    "store index " + std::to_string(idx) + " length " +
                        std::to_string(ho.elems.size()));
        }
        charge(energy::Op::kArrayAccess);
        if (v.isNumeric() && ho.elemKind != ValKind::kRef &&
            ho.elemKind != ValKind::kNull) {
          v = coerceInline(v, ho.elemKind, builtins_, ip->line);
        }
        ho.elems[static_cast<std::size_t>(idx)] = v;
        VM_NEXT();
      }
      VM_CASE(kNewArray) {
        if (ip->a == 1) {
          // Single-dimension fast path: no dims vector. Same charge order
          // as allocArray on a one-level dims list.
          const std::int64_t d = pop().asInt();
          if (d < 0) {
            throwJava("NegativeArraySizeException", std::to_string(d));
          }
          charge(energy::Op::kAllocObject);
          charge(energy::Op::kAllocArrayPerElem,
                 static_cast<std::uint64_t>(d));
          *sp++ = Value::ofRef(heap_.allocArray(
              static_cast<std::size_t>(d), static_cast<ValKind>(ip->b)));
          VM_NEXT();
        }
        std::vector<std::int64_t> dims(static_cast<std::size_t>(ip->a));
        for (int i = ip->a - 1; i >= 0; --i) {
          dims[static_cast<std::size_t>(i)] = pop().asInt();
        }
        for (std::int64_t d : dims) {
          if (d < 0) {
            throwJava("NegativeArraySizeException", std::to_string(d));
          }
        }
        *sp++ = allocArray(dims, 0, static_cast<ValKind>(ip->b));
        VM_NEXT();
      }

      VM_CASE(kNewObject) {
        const std::int32_t argc = ip->b;
        // c > 0: the resolver bound the class and ruled out the builtin
        // constructor probe (builtin names always take the dynamic path).
        if (ip->c > 0) {
          const Value result =
              constructByIdSpan(ip->c - 1, sp - argc,
                                static_cast<std::size_t>(argc));
          sp -= argc;
          *sp++ = result;
          VM_NEXT();
        }
        std::vector<Value> args = popArgs(argc);
        *sp++ = construct(name(ip->a), std::move(args), ip->line);
        VM_NEXT();
      }

      VM_CASE(kBinary) {
        const Value b = pop();
        const Value a = sp[-1];
        sp[-1] = binary(static_cast<jlang::BinOp>(ip->a), a, b, ip->line);
        VM_NEXT();
      }
      VM_CASE(kNeg) {
        sp[-1] = jvm::applyUnaryNeg(sp[-1], builtins_, *machine_);
        VM_NEXT();
      }
      VM_CASE(kNot) {
        sp[-1] = jvm::applyUnaryNot(sp[-1], *machine_);
        VM_NEXT();
      }
      VM_CASE(kBitNot) {
        sp[-1] = jvm::applyUnaryBitNot(sp[-1], builtins_, *machine_);
        VM_NEXT();
      }
      VM_CASE(kCast) {
        const auto k = static_cast<ValKind>(ip->a);
        if (ip->b == 0) {
          // Explicit source-level cast: charge like the tree engine.
          switch (k) {
            case ValKind::kLong: charge(energy::Op::kLongAlu); break;
            case ValKind::kFloat: charge(energy::Op::kFloatAlu); break;
            case ValKind::kDouble: charge(energy::Op::kDoubleAlu); break;
            case ValKind::kByte:
            case ValKind::kShort:
              charge(energy::Op::kByteShortAlu);
              break;
            default: charge(energy::Op::kIntAlu); break;
          }
        }
        sp[-1] = coerceInline(sp[-1], k, builtins_, ip->line);
        VM_NEXT();
      }
      VM_CASE(kBox) {
        const Value v = sp[-1];
        sp[-1] = v.isNumeric() ? builtins_.box(name(ip->a), v) : v;
        VM_NEXT();
      }

      VM_CASE(kJump) {
        VM_JUMP(ip->a);
      }
      VM_CASE(kJumpIfFalse) {
        charge(ip->b != 0 ? energy::Op::kTernary : energy::Op::kBranch);
        if (!pop().asBool()) VM_JUMP(ip->a);
        VM_NEXT();
      }
      VM_CASE(kJumpIfTrue) {
        charge(energy::Op::kBranch);
        if (pop().asBool()) VM_JUMP(ip->a);
        VM_NEXT();
      }
      VM_CASE(kLoopTick) {
        charge(energy::Op::kLoopIter);
        VM_NEXT();
      }
      VM_CASE(kTryTick) {
        charge(energy::Op::kTryEnter);
        VM_NEXT();
      }

      VM_CASE(kCallStatic) {
        const Instr in = *ip;
        // Quicken when the callee is a resolvable program method; builtin
        // classes and unresolvable names stay on the dynamic path forever.
        if (!BuiltinLibrary::isBuiltinClassName(name(in.a))) {
          const std::int32_t id = resolution_->classIdOf(name(in.a));
          if (id >= 0 && classById_[static_cast<std::size_t>(id)] != nullptr) {
            const jlang::ResolvedClass& rc =
                resolution_->classes[static_cast<std::size_t>(id)];
            const jlang::ResolvedMethod* rm = rc.findMethod(name(in.b));
            const int ordinal = rm != nullptr ? rc.methodOrdinal(rm->decl)
                                              : -1;
            if (ordinal >= 0 &&
                methodChunks_[static_cast<std::size_t>(id)]
                             [static_cast<std::size_t>(ordinal)] != nullptr) {
              if (Instr* mut = quickenableCode(chunk)) {
                Instr& site = mut[ip - codeBase];
                if (site.op == Op::kCallStatic) {
                  site.a = id;
                  site.b = ordinal;
                  site.c = in.c;
                  site.op = Op::kCallStaticResolved;
                }
                switchTo(mut);
              }
            }
          }
        }
        // Dynamic semantics, run (at most) one last time — the seed body.
        const std::string& className = name(in.a);
        const std::string& methodName = name(in.b);
        std::vector<Value> args = popArgs(in.c);
        if (BuiltinLibrary::isBuiltinClassName(className)) {
          Value result;
          if (builtins_.staticCall(className, methodName, args, &result)) {
            *sp++ = result;
            VM_NEXT();
          }
          throw VmError("unknown method " + className + "." + methodName);
        }
        const CompiledClass* target = program_->findClass(className);
        if (target == nullptr) {
          throw VmError("unknown class " + className);
        }
        const auto it = target->methods.find(methodName);
        if (it == target->methods.end()) {
          throw VmError("unknown method " + className + "." + methodName);
        }
        // Popped args are off the rooted stack; <clinit> can collect.
        jvm::Gc::ScopedVector rootArgs(gc_, args);
        ensureClassInit(className);
        charge(energy::Op::kCall);
        *sp++ = invoke(*target, it->second, std::move(args));
        VM_NEXT();
      }
      VM_CASE(kCallStaticResolved) {
        const std::int32_t argc = ip->c;
        // args stay on the caller stack, rooted under frame.top, across
        // both the <clinit> safepoints and the callee's coercion copies.
        ensureClassInitById(ip->a);
        charge(energy::Op::kCall);
        const auto classIdx = static_cast<std::size_t>(ip->a);
        const Chunk& target =
            *methodChunks_[classIdx][static_cast<std::size_t>(ip->b)];
        Value result;
        if (!inlineSpanCall(target, sp - argc, static_cast<std::size_t>(argc),
                            &result)) {
          result = invokeSpan(*classById_[classIdx], target, sp - argc,
                              static_cast<std::size_t>(argc));
        }
        sp -= argc;
        *sp++ = result;
        VM_NEXT();
      }
      VM_CASE(kCallSelfResolved) {
        callSelfResolved(ip->a, ip->b, ip->c);
        VM_NEXT();
      }
      VM_CASE(kLoadLoadCallSelf) {
        const std::int32_t bb = ip->b;
        // Two loads with no possible throw between them: one merged charge.
        charge(energy::Op::kLocalAccess, 2);
        sp[0] = slots[static_cast<std::size_t>((bb >> 10) & 0x3FF)];
        sp[1] = slots[static_cast<std::size_t>((bb >> 20) & 0x3FF)];
        sp += 2;
        // VM_TOP recorded frame.top before these pushes; re-record it so
        // the argument span is rooted across the call's interior
        // safepoints (<clinit>, inline-callee), as the unfused call's own
        // dispatch would have.
        if (gcArmed) frame.top = static_cast<std::size_t>(sp - stackBase);
        callSelfResolved(ip->a, bb & 0x3FF, ip->c);
        VM_NEXT();
      }
      VM_CASE(kCallUnqualified) {
        std::vector<Value> args = popArgs(ip->b);
        const auto it = cls.methods.find(name(ip->a));
        if (it == cls.methods.end()) {
          throw VmError("unknown method " + name(ip->a) + " at line " +
                        std::to_string(ip->line));
        }
        if (!it->second.isStatic) {
          JEPO_REQUIRE(!chunk.isStatic,
                       "instance method called from static context");
          args.insert(args.begin(), slots[0]);
        }
        jvm::Gc::ScopedVector rootArgs(gc_, args);
        ensureClassInit(cls.name);
        charge(energy::Op::kCall);
        *sp++ = invoke(cls, it->second, std::move(args));
        VM_NEXT();
      }
      VM_CASE(kCallVirtual) {
        const Instr in = *ip;
        if (Instr* mut = quickenableCode(chunk)) {
          Instr& site = mut[ip - codeBase];
          if (site.op == Op::kCallVirtual) {
            callCaches_.push_back(CallCacheEntry{});
            site.c = static_cast<std::int32_t>(callCaches_.size() - 1);
            site.op = Op::kCallVirtualCached;
          }
          switchTo(mut);
        }
        std::vector<Value> args = popArgs(in.b);
        const Value receiver = pop();
        if (receiver.isNull()) {
          throwJava("NullPointerException",
                    "call '" + name(in.a) + "' on null at line " +
                        std::to_string(in.line));
        }
        Value result;
        if (builtins_.instanceCall(receiver, name(in.a), args, &result)) {
          *sp++ = result;
          VM_NEXT();
        }
        const HeapObject& obj = heap_.get(receiver.asRef());
        JEPO_REQUIRE(obj.kind == ObjKind::kObject,
                     "method call on non-object");
        const CompiledClass* targetCls = program_->findClass(obj.className);
        if (targetCls == nullptr) {
          throw VmError("method call on unknown class " + obj.className);
        }
        const auto it = targetCls->methods.find(name(in.a));
        if (it == targetCls->methods.end()) {
          throw VmError("unknown method " + obj.className + "." +
                        name(in.a));
        }
        args.insert(args.begin(), receiver);
        charge(energy::Op::kCall);
        *sp++ = invoke(*targetCls, it->second, std::move(args));
        VM_NEXT();
      }
      VM_CASE(kCallVirtualCached) {
        callVirtualCached(ip->a, ip->b, ip->c, ip->line);
        VM_NEXT();
      }
      VM_CASE(kLoadLoadCallVirt) {
        const std::int32_t bb = ip->b;
        // Two loads with no possible throw between them: one merged charge.
        charge(energy::Op::kLocalAccess, 2);
        sp[0] = slots[static_cast<std::size_t>((bb >> 10) & 0x3FF)];
        sp[1] = slots[static_cast<std::size_t>((bb >> 20) & 0x3FF)];
        sp += 2;
        // Root the pushed span before the call's interior safepoints; see
        // kLoadLoadCallSelf.
        if (gcArmed) frame.top = static_cast<std::size_t>(sp - stackBase);
        callVirtualCached(ip->a, bb & 0x3FF, ip->c, ip->line);
        VM_NEXT();
      }
      VM_CASE(kPrint) {
        if (ip->b != 0) {
          const Value v = pop();
          builtins_.print(&v, ip->a != 0);
        } else {
          builtins_.print(nullptr, ip->a != 0);
        }
        *sp++ = Value::null();  // expression result, popped next
        VM_NEXT();
      }

      VM_CASE(kReturnValue) {
        return pop();
      }
      VM_CASE(kReturnVoid) {
        return Value::null();
      }
      VM_CASE(kPop) {
        (void)pop();
        VM_NEXT();
      }
      VM_CASE(kDup) {
        JEPO_ASSERT(sp > stackBase);
        sp[0] = sp[-1];
        ++sp;
        VM_NEXT();
      }
      VM_CASE(kThrow) {
        const Value v = pop();
        if (v.isNull()) throwJava("NullPointerException", "throw null");
        charge(energy::Op::kThrow);
        throw Thrown{v};
      }

      VM_CASE(kGetStaticSlot) {
        ensureClassInitById(ip->b);
        if (ip->a < 0) {
          throw VmError("unknown static field " + name(ip->c) + " at line " +
                        std::to_string(ip->line));
        }
        charge(energy::Op::kStaticAccess);
        *sp++ = statics_[static_cast<std::size_t>(ip->a)];
        VM_NEXT();
      }
      VM_CASE(kPutStaticSlot) {
        ensureClassInitById(ip->b);
        if (ip->a < 0) {
          throw VmError("unknown static field " + name(ip->c));
        }
        charge(energy::Op::kStaticAccess);
        Value& slot = statics_[static_cast<std::size_t>(ip->a)];
        Value v = pop();
        if (slot.isNumeric() && v.isNumeric()) {
          v = coerceInline(v, slot.kind, builtins_, ip->line);
        }
        slot = v;
        VM_NEXT();
      }
      VM_CASE(kGetThisFieldSlot) {
        charge(energy::Op::kFieldAccess);
        HeapObject& self = heap_.get(slots[0].asRef());
        *sp++ = self.fields[static_cast<std::size_t>(ip->a)];
        VM_NEXT();
      }
      VM_CASE(kPutThisFieldSlot) {
        charge(energy::Op::kFieldAccess);
        Value v = pop();
        HeapObject& self = heap_.get(slots[0].asRef());
        Value& field = self.fields[static_cast<std::size_t>(ip->a)];
        if (field.isNumeric() && v.isNumeric()) {
          v = coerceInline(v, field.kind, builtins_, ip->line);
        }
        field = v;
        VM_NEXT();
      }
      VM_CASE(kGetFieldCached) {
        const Value obj = pop();
        if (obj.isNull()) {
          throwJava("NullPointerException",
                    "field '" + name(ip->a) + "' on null at line " +
                        std::to_string(ip->line));
        }
        HeapObject& ho = heap_.get(obj.asRef());
        charge(energy::Op::kFieldAccess);
        if (ho.kind == ObjKind::kArray && name(ip->a) == "length") {
          *sp++ = Value::ofInt(static_cast<std::int64_t>(ho.elems.size()));
          VM_NEXT();
        }
        if (ho.kind != ObjKind::kObject || ho.layout == nullptr) {
          throw VmError("unknown field '" + name(ip->a) + "' at line " +
                        std::to_string(ip->line));
        }
        FieldCacheEntry& fc = fieldCaches_[static_cast<std::size_t>(ip->b)];
        if (fc.layout != ho.layout) {
          const int offset = ho.layout->indexOfName(name(ip->a));
          if (offset < 0) {
            throw VmError("unknown field '" + name(ip->a) + "' at line " +
                          std::to_string(ip->line));
          }
          fc = {ho.layout, offset};
        }
        *sp++ = ho.fields[static_cast<std::size_t>(fc.offset)];
        VM_NEXT();
      }
      VM_CASE(kPutFieldCached) {
        Value v = pop();
        const Value obj = pop();
        if (obj.isNull()) {
          throwJava("NullPointerException", "store to field of null");
        }
        HeapObject& ho = heap_.get(obj.asRef());
        JEPO_REQUIRE(ho.kind == ObjKind::kObject && ho.layout != nullptr,
                     "unknown field '" + name(ip->a) + "'");
        FieldCacheEntry& fc = fieldCaches_[static_cast<std::size_t>(ip->b)];
        if (fc.layout != ho.layout) {
          const int offset = ho.layout->indexOfName(name(ip->a));
          JEPO_REQUIRE(offset >= 0, "unknown field '" + name(ip->a) + "'");
          fc = {ho.layout, offset};
        }
        Value& field = ho.fields[static_cast<std::size_t>(fc.offset)];
        charge(energy::Op::kFieldAccess);
        if (field.isNumeric() && v.isNumeric()) {
          v = coerceInline(v, field.kind, builtins_, ip->line);
        }
        field = v;
        VM_NEXT();
      }

      // --- Superinstructions. Each replays the exact charge()/error
      // sequence of the run it replaced (documented in code.hpp); the
      // fused step count was already accounted by VM_TOP via Instr::n.

      VM_CASE(kLoadLoad) {
        charge(energy::Op::kLocalAccess, 2);
        sp[0] = slots[static_cast<std::size_t>(ip->a)];
        sp[1] = slots[static_cast<std::size_t>(ip->b)];
        sp += 2;
        VM_NEXT();
      }
      VM_CASE(kLoadReturn) {
        charge(energy::Op::kLocalAccess);
        return slots[static_cast<std::size_t>(ip->a)];
      }
      VM_CASE(kThisFieldReturn) {
        charge(energy::Op::kFieldAccess);
        return heap_.get(slots[0].asRef())
            .fields[static_cast<std::size_t>(ip->a)];
      }
      VM_CASE(kStorePop) {
        storeToSlot(ip->a, ip->b, pop(), ip->line);
        VM_NEXT();
      }
      VM_CASE(kPutThisFieldSlotPop) {
        charge(energy::Op::kFieldAccess);
        Value v = pop();
        HeapObject& self = heap_.get(slots[0].asRef());
        Value& field = self.fields[static_cast<std::size_t>(ip->a)];
        if (field.isNumeric() && v.isNumeric()) {
          v = coerceInline(v, field.kind, builtins_, ip->line);
        }
        field = v;
        VM_NEXT();
      }
      VM_CASE(kConstBinary) {
        charge(energy::Op::kConstLoad);
        const Value b = Value::ofInt(
            program_->intPool[static_cast<std::size_t>(ip->a)]);
        const Value a = sp[-1];
        sp[-1] = binary(static_cast<jlang::BinOp>(ip->b), a, b, ip->line);
        VM_NEXT();
      }
      VM_CASE(kLoadConstBinary) {
        const std::int32_t bb = ip->b;
        charge(energy::Op::kLocalAccess);
        const Value a = slots[static_cast<std::size_t>(bb & 0xFFFFF)];
        charge(energy::Op::kConstLoad);
        const Value b = Value::ofInt(
            program_->intPool[static_cast<std::size_t>(ip->a)]);
        *sp++ = binary(static_cast<jlang::BinOp>((bb >> 20) & 0x1F), a, b,
                       ip->line);
        VM_NEXT();
      }
      VM_CASE(kLoadLoadBinary) {
        const std::int32_t bb = ip->b;
        charge(energy::Op::kLocalAccess, 2);
        const Value a = slots[static_cast<std::size_t>(ip->a)];
        const Value b = slots[static_cast<std::size_t>(bb & 0xFFFFF)];
        *sp++ = binary(static_cast<jlang::BinOp>((bb >> 20) & 0x1F), a, b,
                       ip->line);
        VM_NEXT();
      }
      VM_CASE(kThisFieldConstBinary) {
        const std::int32_t bb = ip->b;
        charge(energy::Op::kFieldAccess);
        const Value a = heap_.get(slots[0].asRef())
                            .fields[static_cast<std::size_t>(bb & 0xFFFFF)];
        charge(energy::Op::kConstLoad);
        const Value b = Value::ofInt(
            program_->intPool[static_cast<std::size_t>(ip->a)]);
        *sp++ = binary(static_cast<jlang::BinOp>((bb >> 20) & 0x1F), a, b,
                       ip->line);
        VM_NEXT();
      }
      VM_CASE(kThisFieldBinary) {
        charge(energy::Op::kFieldAccess);
        const Value b = heap_.get(slots[0].asRef())
                            .fields[static_cast<std::size_t>(ip->a)];
        const Value a = sp[-1];
        sp[-1] = binary(static_cast<jlang::BinOp>(ip->b), a, b, ip->line);
        VM_NEXT();
      }
      VM_CASE(kBinaryCast) {
        const Value b = pop();
        const Value a = sp[-1];
        // The fused kCast is the implicit (b=1) form: coerce, no charge.
        sp[-1] = coerceInline(
            binary(static_cast<jlang::BinOp>(ip->a), a, b, ip->line),
            static_cast<ValKind>(ip->b), builtins_, ip->line);
        VM_NEXT();
      }
      VM_CASE(kBinCastStorePop) {
        const std::int32_t bb = ip->b;
        const Value b = pop();
        const Value a = pop();
        Value r = binary(static_cast<jlang::BinOp>(bb & 0xFF), a, b,
                         ip->line);
        r = coerceInline(r, static_cast<ValKind>((bb >> 8) & 0xFF),
                              builtins_, ip->line);
        storeToSlot(ip->a, (bb >> 16) & 0xFF, r, ip->line);
        VM_NEXT();
      }
      VM_CASE(kLoadLoadBinaryReturn) {
        const std::int32_t bb = ip->b;
        charge(energy::Op::kLocalAccess, 2);
        const Value a = slots[static_cast<std::size_t>(ip->a)];
        const Value b = slots[static_cast<std::size_t>(bb & 0xFFFFF)];
        return binary(static_cast<jlang::BinOp>((bb >> 20) & 0x1F), a, b,
                      ip->line);
      }
      VM_CASE(kLoadConstCmpJump) {
        const std::int32_t bb = ip->b;
        charge(energy::Op::kLocalAccess);
        const Value a = slots[static_cast<std::size_t>(bb & 0xFFFFF)];
        charge(energy::Op::kConstLoad);
        const std::int64_t yc =
            program_->intPool[static_cast<std::size_t>(ip->c)];
        bool cond;
        if (a.kind == ValKind::kInt) {
          Value r;
          fastIntBinary(static_cast<jlang::BinOp>((bb >> 20) & 0x1F), a,
                        Value::ofInt(yc), builtins_, *machine_, &r);
          cond = r.asBool();
        } else {
          cond = jvm::applyBinary(static_cast<jlang::BinOp>((bb >> 20) & 0x1F),
                                  a, Value::ofInt(yc), heap_, builtins_,
                                  *machine_, ip->line)
                     .asBool();
        }
        charge(energy::Op::kBranch);
        if (!cond) VM_JUMP(ip->a);
        // The kLoopTick is interior to the fused run and executes only on
        // fall-through; the taken branch exits the run (its target is a
        // barrier), exactly as the unfused sequence behaves. Its step is
        // therefore excluded from ip->n and accounted here, limit-checked
        // before its charge as its own dispatch would have been.
        if (((bb >> 26) & 1) != 0) {
          ++steps_;
          if (steps_ > maxStepsHoisted) throwStepLimit();
          charge(energy::Op::kLoopIter);
        }
        VM_NEXT();
      }
      VM_CASE(kLoadLoadCmpJump) {
        const std::int32_t bb = ip->b;
        charge(energy::Op::kLocalAccess, 2);
        const Value a = slots[static_cast<std::size_t>(bb & 0x3FF)];
        const Value b = slots[static_cast<std::size_t>((bb >> 10) & 0x3FF)];
        bool cond;
        if (a.kind == ValKind::kInt && b.kind == ValKind::kInt) {
          Value r;
          fastIntBinary(static_cast<jlang::BinOp>((bb >> 20) & 0x1F), a, b,
                        builtins_, *machine_, &r);
          cond = r.asBool();
        } else {
          cond = jvm::applyBinary(static_cast<jlang::BinOp>((bb >> 20) & 0x1F),
                                  a, b, heap_, builtins_, *machine_, ip->line)
                     .asBool();
        }
        charge(energy::Op::kBranch);
        if (!cond) VM_JUMP(ip->a);
        // Fall-through-only tick step + charge; see kLoadConstCmpJump.
        if (((bb >> 26) & 1) != 0) {
          ++steps_;
          if (steps_ > maxStepsHoisted) throwStepLimit();
          charge(energy::Op::kLoopIter);
        }
        VM_NEXT();
      }
      VM_CASE(kLoadConstBinStore) {
        const std::int32_t bb = ip->b;
        charge(energy::Op::kLocalAccess);
        const Value a = slots[static_cast<std::size_t>(bb & 0x3FF)];
        charge(energy::Op::kConstLoad);
        const Value b = Value::ofInt(
            program_->intPool[static_cast<std::size_t>(ip->a)]);
        Value r = binary(static_cast<jlang::BinOp>((bb >> 20) & 0x1F), a, b,
                         ip->line);
        if (ip->c >= 0) {
          r = coerceInline(r, static_cast<ValKind>(ip->c), builtins_,
                                ip->line);
        }
        storeToSlot((bb >> 10) & 0x3FF, (bb >> 25) & 0xF, r, ip->line);
        VM_NEXT();
      }
      VM_CASE(kIncDecLocalStmt) {
        const std::int32_t bb = ip->b;
        const std::int32_t slot = bb & 0xFFFFF;
        charge(energy::Op::kLocalAccess);
        const Value old = slots[static_cast<std::size_t>(slot)];
        charge(energy::Op::kConstLoad);
        const Value step = Value::ofInt(
            program_->intPool[static_cast<std::size_t>(ip->a)]);
        Value r = binary(static_cast<jlang::BinOp>((bb >> 20) & 0x1F), old,
                         step, ip->line);
        if (ip->c >= 0) {
          r = coerceInline(r, static_cast<ValKind>(ip->c), builtins_,
                                ip->line);
        }
        storeToSlot(slot, (bb >> 25) & 0xF, r, ip->line);
        VM_NEXT();
      }
      VM_CASE(kLoadLoadConstBinary) {
        const std::int32_t bb = ip->b;
        // Two loads with no possible throw between them: one merged charge.
        charge(energy::Op::kLocalAccess, 2);
        const Value a = slots[static_cast<std::size_t>(bb & 0x3FF)];
        const Value b = slots[static_cast<std::size_t>((bb >> 10) & 0x3FF)];
        charge(energy::Op::kConstLoad);
        const Value k = Value::ofInt(
            program_->intPool[static_cast<std::size_t>(ip->a)]);
        sp[0] = a;
        sp[1] = binary(static_cast<jlang::BinOp>((bb >> 20) & 0x1F), b, k,
                       ip->line);
        sp += 2;
        VM_NEXT();
      }
      VM_CASE(kIncDecJump) {
        const std::int32_t bb = ip->b;
        const std::int32_t slot = bb & 0xFFFF;
        charge(energy::Op::kLocalAccess);
        const Value old = slots[static_cast<std::size_t>(slot)];
        charge(energy::Op::kConstLoad);
        const Value step = Value::ofInt(
            program_->intPool[static_cast<std::size_t>(ip->a)]);
        Value r = binary(static_cast<jlang::BinOp>((bb >> 16) & 0x1F), old,
                         step, ip->line);
        const std::int32_t castE = (bb >> 25) & 0xF;
        if (castE != 15) {
          r = coerceInline(r, static_cast<ValKind>(castE), builtins_,
                                ip->line);
        }
        storeToSlot(slot, (bb >> 21) & 0xF, r, ip->line);
        VM_JUMP(ip->c);
      }
      VM_CASE(kAccumConstStmt) {
        const std::int32_t bb = ip->b;
        const std::int32_t s1 = bb & 0x3FF;
        // Two loads with no possible throw between them: one merged charge.
        charge(energy::Op::kLocalAccess, 2);
        const Value a = slots[static_cast<std::size_t>(s1)];
        const Value b = slots[static_cast<std::size_t>((bb >> 10) & 0x3FF)];
        charge(energy::Op::kConstLoad);
        const Value k = Value::ofInt(
            program_->intPool[static_cast<std::size_t>(ip->a)]);
        const Value t = binary(static_cast<jlang::BinOp>((bb >> 20) & 0x1F),
                               b, k, ip->line);
        Value r = binary(static_cast<jlang::BinOp>((bb >> 25) & 0x1F), a, t,
                         ip->line);
        const std::int32_t castE = (ip->c >> 4) & 0xF;
        if (castE != 15) {
          r = coerceInline(r, static_cast<ValKind>(castE), builtins_,
                           ip->line);
        }
        storeToSlot(s1, ip->c & 0xF, r, ip->line);
        VM_NEXT();
      }
      VM_CASE(kThisFieldAccumReturn) {
        const std::int32_t aa = ip->a;
        const std::size_t o1 = static_cast<std::size_t>(aa & 0xFFF);
        charge(energy::Op::kFieldAccess);
        HeapObject& self = heap_.get(slots[0].asRef());
        const Value a = self.fields[o1];
        charge(energy::Op::kFieldAccess);
        const Value b =
            self.fields[static_cast<std::size_t>((aa >> 12) & 0xFFF)];
        Value r = binary(static_cast<jlang::BinOp>(ip->b & 0xFF), a, b,
                         ip->line);
        const std::int32_t castE = (ip->b >> 8) & 0xF;
        if (castE != 15) {
          r = coerceInline(r, static_cast<ValKind>(castE), builtins_,
                           ip->line);
        }
        // The seed kPutThisFieldSlot store rule, then the re-read that the
        // trailing kGetThisFieldSlot performed. `self` stays valid across
        // an allocating binary: heap addresses are stable between
        // safepoints.
        charge(energy::Op::kFieldAccess);
        Value& field = self.fields[o1];
        if (field.isNumeric() && r.isNumeric()) {
          r = coerceInline(r, field.kind, builtins_, ip->line);
        }
        field = r;
        charge(energy::Op::kFieldAccess);
        return field;
      }
      // Loop-tail pairs (matchPair): each replays its two constituents'
      // charge sequences back to back, then takes the latch's jump.
      VM_CASE(kAccumConstJump) {
        const std::uint32_t aa = static_cast<std::uint32_t>(ip->a);
        const std::int32_t bb = ip->b;
        const std::uint32_t cc = static_cast<std::uint32_t>(ip->c);
        const std::int32_t s1 = bb & 0xFF;
        const std::int32_t s2 = (bb >> 8) & 0xFF;
        charge(energy::Op::kLocalAccess, 2);
        const Value a = slots[static_cast<std::size_t>(s1)];
        const Value b = slots[static_cast<std::size_t>(s2)];
        charge(energy::Op::kConstLoad);
        const Value k = Value::ofInt(program_->intPool[aa & 0xFFFF]);
        const Value t = binary(static_cast<jlang::BinOp>((bb >> 16) & 0x1F),
                               b, k, ip->line);
        Value r = binary(static_cast<jlang::BinOp>((bb >> 21) & 0x1F), a, t,
                         ip->line);
        const std::uint32_t castE = (cc >> 20) & 0xF;
        if (castE != 15) {
          r = coerceInline(r, static_cast<ValKind>(castE), builtins_,
                           ip->line);
        }
        storeToSlot(s1, static_cast<std::int32_t>((cc >> 16) & 0xF), r,
                    ip->line);
        charge(energy::Op::kLocalAccess);
        const Value old = slots[static_cast<std::size_t>(s2)];
        charge(energy::Op::kConstLoad);
        const Value step = Value::ofInt(program_->intPool[(aa >> 16) & 0xFFFF]);
        Value r2 = binary(static_cast<jlang::BinOp>((bb >> 26) & 0x1F), old,
                          step, ip->line);
        const std::uint32_t castL = cc >> 28;
        if (castL != 15) {
          r2 = coerceInline(r2, static_cast<ValKind>(castL), builtins_,
                            ip->line);
        }
        storeToSlot(s2, static_cast<std::int32_t>((cc >> 24) & 0xF), r2,
                    ip->line);
        VM_JUMP(static_cast<std::int32_t>(cc & 0xFFFF));
      }
      VM_CASE(kStorePopIncDecJump) {
        const std::uint32_t aa = static_cast<std::uint32_t>(ip->a);
        const std::int32_t bb = ip->b;
        const std::int32_t cc = ip->c;
        storeToSlot(bb & 0x3FF, cc & 0xF, pop(), ip->line);
        const std::int32_t slotL = (bb >> 10) & 0x3FF;
        charge(energy::Op::kLocalAccess);
        const Value old = slots[static_cast<std::size_t>(slotL)];
        charge(energy::Op::kConstLoad);
        const Value step = Value::ofInt(program_->intPool[aa & 0xFFFF]);
        Value r = binary(static_cast<jlang::BinOp>((bb >> 20) & 0x1F), old,
                         step, ip->line);
        const std::int32_t castL = (cc >> 8) & 0xF;
        if (castL != 15) {
          r = coerceInline(r, static_cast<ValKind>(castL), builtins_,
                           ip->line);
        }
        storeToSlot(slotL, (cc >> 4) & 0xF, r, ip->line);
        VM_JUMP(static_cast<std::int32_t>(aa >> 16));
      }
      VM_CASE(kBinCastStoreIncDecJump) {
        const std::uint32_t aa = static_cast<std::uint32_t>(ip->a);
        const std::int32_t bb = ip->b;
        const std::int32_t cc = ip->c;
        const Value vb = pop();
        const Value va = pop();
        Value r = binary(static_cast<jlang::BinOp>((bb >> 16) & 0x1F), va, vb,
                         ip->line);
        r = coerceInline(r, static_cast<ValKind>((cc >> 4) & 0xF), builtins_,
                         ip->line);
        storeToSlot(bb & 0xFF, cc & 0xF, r, ip->line);
        const std::int32_t slotL = (bb >> 8) & 0xFF;
        charge(energy::Op::kLocalAccess);
        const Value old = slots[static_cast<std::size_t>(slotL)];
        charge(energy::Op::kConstLoad);
        const Value step = Value::ofInt(program_->intPool[aa & 0xFFFF]);
        Value r2 = binary(static_cast<jlang::BinOp>((bb >> 21) & 0x1F), old,
                          step, ip->line);
        const std::int32_t castL = (cc >> 12) & 0xF;
        if (castL != 15) {
          r2 = coerceInline(r2, static_cast<ValKind>(castL), builtins_,
                            ip->line);
        }
        storeToSlot(slotL, (cc >> 8) & 0xF, r2, ip->line);
        VM_JUMP(static_cast<std::int32_t>(aa >> 16));
      }
      VM_CASE(kCountedAccumLoop) {
        const std::uint32_t aa = static_cast<std::uint32_t>(ip->a);
        const std::int32_t bb = ip->b;
        const std::uint32_t cc = static_cast<std::uint32_t>(ip->c);
        const std::int32_t s1 = bb & 0xFF;
        const std::int32_t s2 = (bb >> 8) & 0xFF;
        // The kLoadConstCmpJump part (covered by ip->n at VM_TOP).
        charge(energy::Op::kLocalAccess);
        const Value iv = slots[static_cast<std::size_t>(s2)];
        charge(energy::Op::kConstLoad);
        const std::int64_t yc = program_->intPool[aa & 0xFFFF];
        bool cond;
        if (iv.kind == ValKind::kInt) {
          Value rc;
          fastIntBinary(static_cast<jlang::BinOp>((cc >> 10) & 0x1F), iv,
                        Value::ofInt(yc), builtins_, *machine_, &rc);
          cond = rc.asBool();
        } else {
          cond = jvm::applyBinary(static_cast<jlang::BinOp>((cc >> 10) & 0x1F),
                                  iv, Value::ofInt(yc), heap_, builtins_,
                                  *machine_, ip->line)
                     .asBool();
        }
        charge(energy::Op::kBranch);
        if (!cond) VM_NEXT();  // the implicit exit: fall through the loop
        // Taken-path-only tick step + charge; see kLoadConstCmpJump.
        if (((cc >> 15) & 1) != 0) {
          ++steps_;
          if (steps_ > maxStepsHoisted) throwStepLimit();
          charge(energy::Op::kLoopIter);
        }
        // The kAccumConstJump part: account its seed run length before
        // executing it, exactly as its own dispatch would have.
        const std::uint32_t castK1 = (cc >> 20) & 0xF;
        const std::uint32_t castKL = cc >> 28;
        steps_ += 15 + (castK1 != 15 ? 1 : 0) + (castKL != 15 ? 1 : 0);
        if (steps_ > maxStepsHoisted) throwStepLimit();
        charge(energy::Op::kLocalAccess, 2);
        const Value a = slots[static_cast<std::size_t>(s1)];
        const Value b = slots[static_cast<std::size_t>(s2)];
        charge(energy::Op::kConstLoad);
        const Value k = Value::ofInt(program_->intPool[aa >> 16]);
        const Value t = binary(static_cast<jlang::BinOp>((bb >> 16) & 0x1F),
                               b, k, ip->line);
        Value r = binary(static_cast<jlang::BinOp>((bb >> 21) & 0x1F), a, t,
                         ip->line);
        if (castK1 != 15) {
          r = coerceInline(r, static_cast<ValKind>(castK1), builtins_,
                           ip->line);
        }
        storeToSlot(s1, static_cast<std::int32_t>((cc >> 16) & 0xF), r,
                    ip->line);
        charge(energy::Op::kLocalAccess);
        const Value old = slots[static_cast<std::size_t>(s2)];
        charge(energy::Op::kConstLoad);
        const Value step = Value::ofInt(program_->intPool[cc & 0x3FF]);
        Value r2 = binary(static_cast<jlang::BinOp>((bb >> 26) & 0x1F), old,
                          step, ip->line);
        if (castKL != 15) {
          r2 = coerceInline(r2, static_cast<ValKind>(castKL), builtins_,
                            ip->line);
        }
        storeToSlot(s2, static_cast<std::int32_t>((cc >> 24) & 0xF), r2,
                    ip->line);
        VM_DISPATCH();  // the implicit backedge: re-dispatch this very op
      }

#ifndef JEPO_COMPUTED_GOTO
      }
      JEPO_ASSERT(false);  // every opcode's case transfers control
#endif
    } catch (const Thrown& thrown) {
      // Exception table search, in declaration order. `ip` still addresses
      // the throwing instruction (handlers never advance it before a
      // potential throw), so the fused pc maps into the remapped ranges
      // exactly as every interior pc of its run would have.
      const auto pc = static_cast<std::size_t>(ip - codeBase);
      const std::string& thrownClass =
          heap_.get(thrown.exception.asRef()).className;
      const ExceptionEntry* match = nullptr;
      for (const auto& h : chunk.handlers) {
        if (pc < static_cast<std::size_t>(h.start) ||
            pc >= static_cast<std::size_t>(h.end)) {
          continue;
        }
        if (h.classNameIdx < 0) {  // catch-all (finally)
          match = &h;
          break;
        }
        const std::string& handlerClass =
            names[static_cast<std::size_t>(h.classNameIdx)];
        if (handlerClass == thrownClass || handlerClass == "Exception" ||
            (handlerClass == "RuntimeException" &&
             BuiltinLibrary::looksLikeExceptionClass(thrownClass))) {
          match = &h;
          break;
        }
      }
      if (match == nullptr) throw;
      if (match->classNameIdx >= 0) charge(energy::Op::kCatch);
      sp = stackBase;
      if (match->slot >= 0) {
        slots[static_cast<std::size_t>(match->slot)] = thrown.exception;
      } else {
        *sp++ = thrown.exception;
      }
      ip = codeBase + match->handler;
    }
  }

#undef VM_TOP
#undef VM_CASE
#undef VM_DISPATCH
#undef VM_NEXT
#undef VM_JUMP
}

jvm::Value BytecodeVm::runMain(std::string_view mainClass) {
  const CompiledClass* target = nullptr;
  std::vector<const CompiledClass*> mains;
  for (const auto& [n, cls] : program_->classes) {
    if (cls.hasMain) mains.push_back(&cls);
  }
  if (mainClass.empty()) {
    if (mains.empty()) throw VmError("no class declares static void main");
    if (mains.size() > 1) throw VmError("multiple main classes");
    target = mains.front();
  } else {
    for (const auto* c : mains) {
      if (c->name == mainClass) target = c;
    }
    if (target == nullptr) {
      throw VmError("no main method in class " + std::string(mainClass));
    }
  }
  ensureClassInit(target->name);
  const Ref argsArr = heap_.allocArray(0, ValKind::kRef);
  return invoke(*target, target->methods.at("main"),
                {Value::ofRef(argsArr)});
}

jvm::Value BytecodeVm::callStatic(std::string_view className,
                                  std::string_view methodName,
                                  std::vector<Value> args) {
  const CompiledClass* cls = program_->findClass(std::string(className));
  JEPO_REQUIRE(cls != nullptr, "unknown class " + std::string(className));
  const auto it = cls->methods.find(std::string(methodName));
  JEPO_REQUIRE(it != cls->methods.end(),
               "unknown method " + std::string(methodName));
  JEPO_REQUIRE(it->second.isStatic, "method is not static");
  jvm::Gc::ScopedVector rootArgs(gc_, args);  // live across <clinit>
  ensureClassInit(cls->name);
  return invoke(*cls, it->second, std::move(args));
}

void BytecodeVm::scanGcRoots(jvm::Gc::RootWalker& w) {
  for (Value& v : statics_) w.visit(v);
  // Interned literals are roots: re-executing a literal load must keep
  // returning the same Ref (the walker skips unfilled kNullRef entries).
  for (Ref& r : literalByName_) w.visit(r);
  // Every active frame's locals and live operand-stack prefix. `top` was
  // recorded at the frame's most recent dispatch safepoint; during a
  // nested call it additionally covers the argument span the callee is
  // consuming — still precise values, remapped in place by compaction.
  for (std::size_t i = 0; i < frameDepth_ && i < framePool_.size(); ++i) {
    Frame& f = *framePool_[i];
    for (std::size_t s = 0; s < f.liveSlots; ++s) w.visit(f.slots[s]);
    for (std::size_t s = 0; s < f.top; ++s) w.visit(f.stack[s]);
  }
}

}  // namespace jepo::jbc
