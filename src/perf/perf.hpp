// PerfRunner — the `perf stat` analog.
//
// The paper measures each classifier run with the Linux perf tool (RAPL
// energy-pkg / energy-cores events plus wall time). PerfRunner wraps a
// workload the same way: it runs it on a fresh SimMachine, reads the energy
// MSRs through the RaplReader before and after (the same wraparound-correct
// path perf uses), and applies a deterministic measurement-noise model —
// run-to-run jitter plus occasional interference spikes — which is exactly
// the noise Section VIII's Tukey re-measurement loop exists to remove.
//
// Robustness: when a fault plan is attached (setFaultPlan), every statAt()
// call wraps its machine's MSR device in a fault::FaultyMsrDevice whose
// seed is derived from (plan seed, ordinal, attempt) — so the fault
// schedule, like the noise stream, is a pure function of the measurement's
// identity and never of thread interleaving. The measurement itself is
// hardened: transient read errors are absorbed by the reader's bounded
// retry, permanently absent core/dram domains degrade to a package-only
// stat, and stale/backwards/jump intervals surface as
// PerfStat::quality == kInvalid instead of garbage joules.
//
// Concurrency: stat() is safe to call from many threads at once. Each call
// builds its own SimMachine (and its own fault device) and derives a
// private noise RNG from the runner's seed and a per-call ordinal, so calls
// share nothing mutable beyond one atomic counter. For bit-exact results
// independent of thread interleaving, pass the ordinal explicitly via
// statAt() — the parallel experiment runner does — since the implicit
// counter hands out ordinals in whatever order calls happen to arrive.
#pragma once

#include <atomic>
#include <functional>
#include <optional>

#include "energy/machine.hpp"
#include "fault/fault.hpp"
#include "rapl/quality.hpp"
#include "support/rng.hpp"

namespace jepo::perf {

struct PerfStat {
  double seconds = 0.0;
  double packageJoules = 0.0;
  double coreJoules = 0.0;
  double dramJoules = 0.0;

  /// Trust tag for the whole stat: the worst quality across the package,
  /// core and dram interval measurements (see rapl::MeasurementQuality).
  /// kInvalid means the energy columns are zeroed and the stat should be
  /// re-measured or its row flagged — never averaged into a result.
  rapl::MeasurementQuality quality = rapl::MeasurementQuality::kOk;
  /// Transient read errors absorbed across all counter arms and reads.
  int readRetries = 0;
  /// Core/dram registers were permanently absent; packageJoules is still
  /// trustworthy but the per-domain split is not (their columns read 0).
  bool packageOnly = false;

  /// Row layout used with stats::measureWithTukeyLoop:
  /// {package J, core J, seconds} — the paper's three metrics.
  std::vector<double> asRow() const {
    return {packageJoules, coreJoules, seconds};
  }
};

class PerfRunner {
 public:
  struct NoiseModel {
    double relSigma;    // multiplicative Gaussian jitter per metric
    double spikeProb;   // chance a run hits interference
    double spikeScale;  // spike multiplier (always an overshoot)
  };

  /// The default noise model: 1% jitter, 8% interference spikes of +35%.
  static constexpr NoiseModel kDefaultNoise{0.01, 0.08, 1.35};

  explicit PerfRunner(NoiseModel noise = kDefaultNoise,
                      std::uint64_t seed = 7);

  /// Copying forks the ordinal counter at its current value (the atomic
  /// member suppresses the default copy).
  PerfRunner(const PerfRunner& other)
      : noise_(other.noise_),
        seed_(other.seed_),
        faults_(other.faults_),
        nextOrdinal_(other.nextOrdinal_.load()) {}

  /// Disable noise entirely (exact simulated readings).
  static PerfRunner exact() { return PerfRunner(NoiseModel{0.0, 0.0, 1.0}); }

  /// Attach (or clear) a fault plan. An inactive or absent spec leaves the
  /// clean measurement path untouched — no decorator is built, so the
  /// no-fault overhead stays within the bench_fault_overhead gate.
  void setFaultPlan(std::optional<fault::FaultSpec> spec) {
    faults_ = std::move(spec);
  }
  const std::optional<fault::FaultSpec>& faultPlan() const noexcept {
    return faults_;
  }

  /// Run the workload on a fresh machine built by `makeMachine` (defaults
  /// to the calibrated model) and return the measured interval. The noise
  /// stream for this call is the next unused ordinal.
  PerfStat stat(const std::function<void(energy::SimMachine&)>& workload);

  PerfStat stat(const std::function<void(energy::SimMachine&)>& workload,
                const energy::CostModel& model);

  /// As stat(), but with a caller-chosen noise ordinal: the measurement is
  /// a pure function of (runner seed, ordinal, workload), which is what
  /// deterministic parallel fan-out needs.
  PerfStat statAt(std::uint64_t ordinal,
                  const std::function<void(energy::SimMachine&)>& workload,
                  const energy::CostModel& model) const;

  /// As statAt(), with an explicit re-measurement attempt index. The fault
  /// stream is derived from (plan seed, ordinal, attempt) so a measurement
  /// retried after a kInvalid interval sees fresh faults, deterministically.
  /// The *noise* stream depends on the ordinal alone — a retried
  /// measurement re-measures the same quantity.
  PerfStat statAt(std::uint64_t ordinal, int attempt,
                  const std::function<void(energy::SimMachine&)>& workload,
                  const energy::CostModel& model) const;

 private:
  NoiseModel noise_;
  std::uint64_t seed_;
  std::optional<fault::FaultSpec> faults_;
  std::atomic<std::uint64_t> nextOrdinal_{0};
};

}  // namespace jepo::perf
