#include "support/thread_pool.hpp"

#include <algorithm>

#include "obs/span.hpp"

namespace jepo {

ThreadPool::ThreadPool(std::size_t threads, std::size_t maxQueue)
    : maxQueue_(maxQueue) {
  obs::Registry& reg = obs::Registry::global();
  tasks_ = &reg.counter("pool.tasks");
  backpressure_ = &reg.counter("pool.backpressure.waits");
  queueDepth_ = &reg.gauge("pool.queue.depth");
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  spaceCv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      queueDepth_->set(static_cast<std::int64_t>(queue_.size()));
    }
    spaceCv_.notify_one();
    tasks_->add();
    obs::Span span("pool.task");
    task();
  }
}

void parallelFor(ThreadPool& pool, std::size_t n,
                 const std::function<void(std::size_t)>& body) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.submit([&body, i] { body(i); }));
  }
  // Drain every future before rethrowing: tasks capture `body` by
  // reference, so returning (even by exception) while tasks are still
  // queued would leave them invoking a dangling std::function.
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace jepo
