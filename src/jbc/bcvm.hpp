// The bytecode stack machine. Shares the Heap/Value/BuiltinLibrary/ops
// substrate with the tree interpreter, honours the same MethodHooks
// interface (so the Instrumenter plugs into either engine), and charges the
// same cost model — at the granularity of compiled instructions.
#pragma once

#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "energy/machine.hpp"
#include "jbc/code.hpp"
#include "jvm/builtins.hpp"
#include "jvm/heap.hpp"
#include "jvm/interpreter.hpp"  // MethodHooks, Thrown

namespace jepo::jbc {

class BytecodeVm {
 public:
  BytecodeVm(const CompiledProgram& program, energy::SimMachine& machine);
  BytecodeVm(CompiledProgram&&, energy::SimMachine&) = delete;

  void setHooks(jvm::MethodHooks* hooks) { hooks_ = hooks; }
  void setMaxSteps(std::uint64_t maxSteps) { maxSteps_ = maxSteps; }

  /// Run `static void main` (the unique one, or the named class's).
  jvm::Value runMain(std::string_view mainClass = {});

  jvm::Value callStatic(std::string_view className,
                        std::string_view methodName,
                        std::vector<jvm::Value> args);

  const std::string& output() const noexcept { return out_; }
  jvm::Heap& heap() noexcept { return heap_; }

 private:
  jvm::Value invoke(const CompiledClass& cls, const Chunk& chunk,
                    std::vector<jvm::Value> args);
  jvm::Value run(const CompiledClass& cls, const Chunk& chunk,
                 std::vector<jvm::Value>& slots);

  void ensureClassInit(const std::string& className);
  jvm::Value construct(const std::string& className,
                       std::vector<jvm::Value> args, int line);
  jvm::Value allocArray(const std::vector<std::int64_t>& dims,
                        std::size_t level, jvm::ValKind leafKind);

  void chargeRowLoad(jvm::Ref array, std::int64_t index, bool rowIsArray);
  void step();
  void charge(energy::Op op, std::uint64_t n = 1) { machine_->charge(op, n); }
  [[noreturn]] void throwJava(const std::string& cls,
                              const std::string& msg) {
    builtins_.throwJava(cls, msg);
  }

  const CompiledProgram* program_;
  energy::SimMachine* machine_;
  jvm::Heap heap_;
  std::string out_;
  jvm::BuiltinLibrary builtins_;
  jvm::MethodHooks* hooks_ = nullptr;

  std::unordered_map<std::string, jvm::Value> statics_;
  std::unordered_set<std::string> initializedClasses_;
  std::unordered_map<std::string, jvm::Ref> stringPool_;

  std::uint64_t steps_ = 0;
  std::uint64_t maxSteps_ = 0;
  std::size_t frameDepth_ = 0;

  jvm::Ref lastRowArray_ = 0xFFFFFFFF;
  std::int64_t lastRowIndex_ = -1;

  static constexpr std::size_t kMaxFrames = 512;
};

}  // namespace jepo::jbc
