# Empty compiler generated dependencies file for classifier_report.
# This may be replaced when dependencies are built.
