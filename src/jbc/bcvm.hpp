// The bytecode stack machine. Shares the Heap/Value/BuiltinLibrary/ops
// substrate with the tree interpreter, honours the same MethodHooks
// interface (so the Instrumenter plugs into either engine), and charges the
// same cost model — at the granularity of compiled instructions.
//
// The inner loop is direct-threaded (computed goto) on GCC/Clang with a
// portable switch fallback (-DJEPO_NO_COMPUTED_GOTO), executes the
// compiler's superinstructions (code.hpp), and quickens the dynamic
// fallback ops (kCallStatic / kCallVirtual / name-keyed field access) into
// their resolved/cached forms on first execution — in a VM-private copy of
// the chunk, keyed by Chunk::chunkId, so concurrent VMs sharing one
// CompiledProgram never race. Every rewrite preserves the charge sequence,
// error strings and step accounting of the seed interpreter exactly.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "energy/machine.hpp"
#include "jbc/code.hpp"
#include "jlang/resolve.hpp"
#include "jvm/builtins.hpp"
#include "jvm/gc.hpp"
#include "jvm/heap.hpp"
#include "jvm/interpreter.hpp"  // MethodHooks, Thrown
#include "support/cancel.hpp"

namespace jepo::jbc {

class BytecodeVm {
 public:
  BytecodeVm(const CompiledProgram& program, energy::SimMachine& machine);
  BytecodeVm(CompiledProgram&&, energy::SimMachine&) = delete;

  /// Install (or clear, with nullptr) method hooks. Not owned. The tier
  /// gate is hoisted here so per-call tier checks branch on a pointer,
  /// never through a virtual call (see jvm/tier.hpp).
  void setHooks(jvm::MethodHooks* hooks) {
    hooks_ = hooks;
    tier_ = hooks != nullptr ? hooks->tierGate() : nullptr;
  }
  void setMaxSteps(std::uint64_t maxSteps) {
    maxSteps_ = maxSteps;
    maxStepsEff_ = maxSteps == 0 ? ~std::uint64_t{0} : maxSteps;
  }

  /// Install (or clear, with nullptr) a cooperative cancel token, polled at
  /// the VM_TOP dispatch prologue — the engine's existing per-dispatch
  /// safepoint, which fused superinstructions (including kCountedAccumLoop's
  /// implicit backedge) re-enter every iteration, so the fast path cannot
  /// starve cancellation. A fired token throws CancelledError out of run().
  /// Host-time-only: never-fired tokens leave observables bit-identical.
  void setCancelToken(const CancelToken* token) { cancel_ = token; }

  /// Run `static void main` (the unique one, or the named class's).
  jvm::Value runMain(std::string_view mainClass = {});

  jvm::Value callStatic(std::string_view className,
                        std::string_view methodName,
                        std::vector<jvm::Value> args);

  const std::string& output() const noexcept { return out_; }
  jvm::Heap& heap() noexcept { return heap_; }

  /// Heap-object limit that arms the mark-compact collector (0 = never
  /// collect, the seed behaviour). Defaults to env JEPO_HEAP_LIMIT.
  void setHeapLimit(std::size_t objects) { gc_.setLimit(objects); }
  jvm::Gc& gc() noexcept { return gc_; }

 private:
  /// Monomorphic inline cache at one kCallVirtualCached site.
  struct CallCacheEntry {
    std::int32_t classId = -1;
    const CompiledClass* cls = nullptr;
    const Chunk* chunk = nullptr;
  };
  /// Monomorphic inline cache at one kGet/PutFieldCached site.
  struct FieldCacheEntry {
    const jlang::ClassLayout* layout = nullptr;
    std::int32_t offset = -1;
  };

  /// One pooled frame (locals + operand stack), indexed by call depth.
  /// Frames are heap-allocated so their addresses stay stable while the
  /// pool grows; the vectors are sized once per chunk shape and then
  /// reused allocation-free. `top` is the stack height recorded at the
  /// owning run()'s most recent dispatch — collections happen only at that
  /// safepoint, so [0, top) is exactly the live-operand root span (during
  /// a nested call it is stale-high by the argument span, which holds
  /// copies of callee-live values — still precise marking).
  struct Frame {
    std::vector<jvm::Value> slots;
    std::vector<jvm::Value> stack;
    std::size_t liveSlots = 0;
    std::size_t top = 0;
  };

  // Cold call paths keep the seed's vector form; the hot resolved/cached
  // ops pass caller-stack spans instead (no allocation, args stay rooted
  // through the caller frame).
  jvm::Value invoke(const CompiledClass& cls, const Chunk& chunk,
                    std::vector<jvm::Value> args);
  jvm::Value invokeSpan(const CompiledClass& cls, const Chunk& chunk,
                        const jvm::Value* args, std::size_t argc);
  jvm::Value invokeRecvSpan(const CompiledClass& cls, const Chunk& chunk,
                            const jvm::Value& recv, const jvm::Value* rest,
                            std::size_t nRest);
  /// Shared tail of every invoke flavour: frame bookkeeping, hooks, run,
  /// and the kReturn charge.
  jvm::Value finishInvoke(const CompiledClass& cls, const Chunk& chunk,
                          Frame& frame);
  Frame& acquireFrame(const Chunk& chunk);
  jvm::Value run(const CompiledClass& cls, const Chunk& chunk, Frame& frame);

  /// The VM-private mutable copy of a chunk's code, created on first
  /// quickening (nullptr when the chunk can't be keyed). Updates
  /// codeById_ so subsequent runs execute the quickened copy.
  Instr* quickenableCode(const Chunk& chunk);

  /// Trivial-callee inlining: a resolved call whose target body is a single
  /// fused accessor instruction ([kLoadLoadBinaryReturn], [kLoadReturn] or
  /// [kThisFieldReturn], no exception table) executes without frame setup.
  /// Used only when hooks are off and every argument kind already matches
  /// the parameter kind, so charges, step accounting, safepoint placement
  /// and throw behaviour replicate the framed call exactly. Returns false
  /// (doing nothing) when the call must take the framed path.
  bool inlineSpanCall(const Chunk& chunk, const jvm::Value* args,
                      std::size_t argc, jvm::Value* out);
  bool inlineRecvCall(const Chunk& chunk, const jvm::Value& recv,
                      const jvm::Value* rest, std::size_t nRest,
                      jvm::Value* out);

  // Class initialization: by resolved id (hot) or by name (entry points
  // and dynamic fallbacks — a no-op for names naming no program class).
  void ensureClassInit(const std::string& className);
  void ensureClassInitById(std::int32_t classId);
  /// Flat static lookup after class init; nullptr when unknown.
  jvm::Value* findStaticByName(const std::string& className,
                               const std::string& fieldName);
  jvm::Value construct(const std::string& className,
                       std::vector<jvm::Value> args, int line);
  /// Resolved construction: builtin probe already ruled out.
  jvm::Value constructById(std::int32_t classId,
                           std::vector<jvm::Value> args);
  jvm::Value constructByIdSpan(std::int32_t classId, const jvm::Value* args,
                               std::size_t argc);
  jvm::Value allocArray(const std::vector<std::int64_t>& dims,
                        std::size_t level, jvm::ValKind leafKind);

  void chargeRowLoad(jvm::Ref array, std::int64_t index, bool rowIsArray);
  void charge(energy::Op op, std::uint64_t n = 1) { machine_->charge(op, n); }
  [[noreturn]] void throwStepLimit() const;
  [[noreturn]] void throwCancelled() const;
  [[noreturn]] void throwJava(const std::string& cls,
                              const std::string& msg) {
    builtins_.throwJava(cls, msg);
  }

  const CompiledProgram* program_;
  std::shared_ptr<const jlang::Resolution> resolution_;
  energy::SimMachine* machine_;
  jvm::Heap heap_;
  std::string out_;
  jvm::BuiltinLibrary builtins_;
  jvm::MethodHooks* hooks_ = nullptr;
  jvm::TierGate* tier_ = nullptr;  // hoisted from hooks_->tierGate()

  // Flat execution state, indexed by resolver-assigned ids. All VM-owned:
  // concurrent VMs over one CompiledProgram share no mutable state.
  std::vector<jvm::Value> statics_;          // global static slots
  std::vector<char> classInitDone_;          // by classId
  std::vector<jvm::Ref> literalByName_;      // by names index (lazy)
  std::vector<const CompiledClass*> classById_;        // by classId
  std::vector<std::vector<const Chunk*>> methodChunks_;  // by (classId, ordinal)
  // Per-class static defaults as (global slot, kind), declaration order.
  std::vector<std::vector<std::pair<std::int32_t, jvm::ValKind>>>
      staticDefaults_;
  std::vector<std::vector<jvm::Value>> objectTemplates_;  // default fields
  std::vector<CallCacheEntry> callCaches_;   // by Instr::c cache slot
  std::vector<FieldCacheEntry> fieldCaches_; // by Instr::b cache slot

  // Quickening state, by Chunk::chunkId: the active code pointer each
  // run() dispatches from (shared immutable code until the first rewrite),
  // and the VM-private copies that replace it.
  std::vector<const Instr*> codeById_;
  std::vector<std::vector<Instr>> quickened_;

  /// By chunkId: which trivial-callee shape the chunk is (kNotTrivial when
  /// the body is anything more than a single fused accessor instruction).
  enum : std::uint8_t {
    kNotTrivial = 0,
    kTrivLoadLoadBinaryReturn,
    kTrivLoadReturn,
    kTrivThisFieldReturn,
    kTrivThisFieldAccumReturn,
  };
  std::vector<std::uint8_t> trivialKind_;

  std::vector<std::unique_ptr<Frame>> framePool_;  // by call depth

  std::uint64_t steps_ = 0;
  std::uint64_t maxSteps_ = 0;
  std::uint64_t maxStepsEff_ = ~std::uint64_t{0};
  const CancelToken* cancel_ = nullptr;
  std::size_t frameDepth_ = 0;

  jvm::Ref lastRowArray_ = 0xFFFFFFFF;
  std::int64_t lastRowIndex_ = -1;

  // Precise roots: statics, interned literals, and every active frame's
  // slots[0, liveSlots) + stack[0, top). Collects only at the
  // dispatch-loop safepoint, where top is freshly recorded.
  void scanGcRoots(jvm::Gc::RootWalker& w);
  jvm::Gc gc_;

  static constexpr jvm::Ref kNullRef = 0xFFFFFFFF;
  static constexpr std::size_t kMaxFrames = 512;
};

}  // namespace jepo::jbc
