# Empty dependencies file for jepo_jbc.
# This may be replaced when dependencies are built.
