// The bytecode stack machine. Shares the Heap/Value/BuiltinLibrary/ops
// substrate with the tree interpreter, honours the same MethodHooks
// interface (so the Instrumenter plugs into either engine), and charges the
// same cost model — at the granularity of compiled instructions.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "energy/machine.hpp"
#include "jbc/code.hpp"
#include "jlang/resolve.hpp"
#include "jvm/builtins.hpp"
#include "jvm/gc.hpp"
#include "jvm/heap.hpp"
#include "jvm/interpreter.hpp"  // MethodHooks, Thrown

namespace jepo::jbc {

class BytecodeVm {
 public:
  BytecodeVm(const CompiledProgram& program, energy::SimMachine& machine);
  BytecodeVm(CompiledProgram&&, energy::SimMachine&) = delete;

  void setHooks(jvm::MethodHooks* hooks) { hooks_ = hooks; }
  void setMaxSteps(std::uint64_t maxSteps) { maxSteps_ = maxSteps; }

  /// Run `static void main` (the unique one, or the named class's).
  jvm::Value runMain(std::string_view mainClass = {});

  jvm::Value callStatic(std::string_view className,
                        std::string_view methodName,
                        std::vector<jvm::Value> args);

  const std::string& output() const noexcept { return out_; }
  jvm::Heap& heap() noexcept { return heap_; }

  /// Heap-object limit that arms the mark-compact collector (0 = never
  /// collect, the seed behaviour). Defaults to env JEPO_HEAP_LIMIT.
  void setHeapLimit(std::size_t objects) { gc_.setLimit(objects); }
  jvm::Gc& gc() noexcept { return gc_; }

 private:
  /// Monomorphic inline cache at one kCallVirtualCached site.
  struct CallCacheEntry {
    std::int32_t classId = -1;
    const CompiledClass* cls = nullptr;
    const Chunk* chunk = nullptr;
  };
  /// Monomorphic inline cache at one kGet/PutFieldCached site.
  struct FieldCacheEntry {
    const jlang::ClassLayout* layout = nullptr;
    std::int32_t offset = -1;
  };

  jvm::Value invoke(const CompiledClass& cls, const Chunk& chunk,
                    std::vector<jvm::Value> args);
  jvm::Value run(const CompiledClass& cls, const Chunk& chunk,
                 std::vector<jvm::Value>& slots);

  // Class initialization: by resolved id (hot) or by name (entry points
  // and dynamic fallbacks — a no-op for names naming no program class).
  void ensureClassInit(const std::string& className);
  void ensureClassInitById(std::int32_t classId);
  /// Flat static lookup after class init; nullptr when unknown.
  jvm::Value* findStaticByName(const std::string& className,
                               const std::string& fieldName);
  jvm::Value construct(const std::string& className,
                       std::vector<jvm::Value> args, int line);
  /// Resolved construction: builtin probe already ruled out.
  jvm::Value constructById(std::int32_t classId,
                           std::vector<jvm::Value> args);
  jvm::Value allocArray(const std::vector<std::int64_t>& dims,
                        std::size_t level, jvm::ValKind leafKind);

  void chargeRowLoad(jvm::Ref array, std::int64_t index, bool rowIsArray);
  void step();
  void charge(energy::Op op, std::uint64_t n = 1) { machine_->charge(op, n); }
  [[noreturn]] void throwJava(const std::string& cls,
                              const std::string& msg) {
    builtins_.throwJava(cls, msg);
  }

  const CompiledProgram* program_;
  std::shared_ptr<const jlang::Resolution> resolution_;
  energy::SimMachine* machine_;
  jvm::Heap heap_;
  std::string out_;
  jvm::BuiltinLibrary builtins_;
  jvm::MethodHooks* hooks_ = nullptr;

  // Flat execution state, indexed by resolver-assigned ids. All VM-owned:
  // concurrent VMs over one CompiledProgram share no mutable state.
  std::vector<jvm::Value> statics_;          // global static slots
  std::vector<char> classInitDone_;          // by classId
  std::vector<jvm::Ref> literalByName_;      // by names index (lazy)
  std::vector<const CompiledClass*> classById_;        // by classId
  std::vector<std::vector<const Chunk*>> methodChunks_;  // by (classId, ordinal)
  // Per-class static defaults as (global slot, kind), declaration order.
  std::vector<std::vector<std::pair<std::int32_t, jvm::ValKind>>>
      staticDefaults_;
  std::vector<std::vector<jvm::Value>> objectTemplates_;  // default fields
  std::vector<CallCacheEntry> callCaches_;   // by Instr::c cache slot
  std::vector<FieldCacheEntry> fieldCaches_; // by Instr::b cache slot

  std::uint64_t steps_ = 0;
  std::uint64_t maxSteps_ = 0;
  std::size_t frameDepth_ = 0;

  jvm::Ref lastRowArray_ = 0xFFFFFFFF;
  std::int64_t lastRowIndex_ = -1;

  // Precise roots: statics, interned literals, and every active frame's
  // slots + operand stack (each run() registers its two vectors through
  // Gc::ScopedVector). Collects only at the dispatch-loop safepoint.
  void scanGcRoots(jvm::Gc::RootWalker& w);
  jvm::Gc gc_;

  static constexpr jvm::Ref kNullRef = 0xFFFFFFFF;
  static constexpr std::size_t kMaxFrames = 512;
};

}  // namespace jepo::jbc
