// Minimal strict JSON parser — the read half of json_writer.hpp.
//
// The jepod daemon speaks newline-delimited JSON over a Unix socket, so
// (unlike the benches, which only ever *emit* JSON) it must parse
// arbitrary bytes a client sends. The parser is strict RFC-8259 subset:
// no comments, no trailing commas, no NaN/Infinity literals, UTF-8 passed
// through verbatim, and \uXXXX escapes (including surrogate pairs) decoded
// to UTF-8 — a client's encoder may escape non-ASCII either way. Malformed
// input throws Error with a byte offset so the daemon can turn it into a
// typed "bad-json" response instead of dying.
//
// Numbers keep both views: every number parses as double, and integers
// that fit int64/uint64 are additionally exposed exactly (heap limits and
// seeds must not round-trip through floating point).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace jepo::json {

class Value;

/// Object members in source order (the protocol never needs map lookup
/// speed; order-preserving keeps rendering/debugging deterministic).
using Member = std::pair<std::string, Value>;

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;

  Kind kind() const noexcept { return kind_; }
  bool isNull() const noexcept { return kind_ == Kind::kNull; }
  bool isBool() const noexcept { return kind_ == Kind::kBool; }
  bool isNumber() const noexcept { return kind_ == Kind::kNumber; }
  bool isString() const noexcept { return kind_ == Kind::kString; }
  bool isArray() const noexcept { return kind_ == Kind::kArray; }
  bool isObject() const noexcept { return kind_ == Kind::kObject; }

  /// Typed accessors; JEPO_REQUIRE trips on kind mismatch, so protocol
  /// code validates kinds first (or uses the lenient helpers below).
  bool asBool() const;
  double asDouble() const;
  /// The exact integer value. Throws Error when the number was not
  /// written as an integer that fits the target type.
  std::int64_t asInt64() const;
  std::uint64_t asUint64() const;
  const std::string& asString() const;
  const std::vector<Value>& asArray() const;
  const std::vector<Member>& asObject() const;

  /// Member lookup (first match); nullptr when absent or not an object.
  const Value* find(std::string_view key) const noexcept;

  // --- lenient helpers for optional protocol fields -----------------------
  std::string stringOr(std::string_view key, std::string def) const;
  std::uint64_t uint64Or(std::string_view key, std::uint64_t def) const;
  double doubleOr(std::string_view key, double def) const;
  bool boolOr(std::string_view key, bool def) const;

  // Construction (used by the parser; handy in tests).
  static Value makeNull() { return Value(); }
  static Value makeBool(bool b);
  static Value makeNumber(double d, bool exactInt, std::int64_t i,
                          bool exactUint, std::uint64_t u);
  static Value makeString(std::string s);
  static Value makeArray(std::vector<Value> items);
  static Value makeObject(std::vector<Member> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  bool exactInt_ = false;       // number_ was an integer literal in int64
  std::int64_t int_ = 0;
  bool exactUint_ = false;      // ... and/or in uint64 range
  std::uint64_t uint_ = 0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<Member> object_;
};

/// Parse one complete JSON document; trailing non-whitespace is an error.
/// Throws Error("json: <what> at byte <offset>") on malformed input.
Value parseJson(std::string_view text);

}  // namespace jepo::json
