#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "obs/trace_writer.hpp"

namespace jepo::obs {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { resetForTest(); }
  void TearDown() override { resetForTest(); }
};

TEST_F(ObsTest, CounterAccumulatesExactTotalsAcrossThreads) {
  Counter& c = Registry::global().counter("test.hammer");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 50'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) c.add();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

TEST_F(ObsTest, CounterAddRespectsDelta) {
  Counter& c = Registry::global().counter("test.delta");
  c.add(3);
  c.add(0);
  c.add(39);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, RegistryReturnsSameInstrumentForSameName) {
  Counter& a = Registry::global().counter("test.same");
  Counter& b = Registry::global().counter("test.same");
  EXPECT_EQ(&a, &b);
  a.add();
  EXPECT_EQ(b.value(), 1u);
}

TEST_F(ObsTest, GaugeTracksValueAndPeak) {
  Gauge& g = Registry::global().gauge("test.gauge");
  g.set(5);
  g.set(17);
  g.set(2);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.peak(), 17);
  g.add(-10);
  EXPECT_EQ(g.value(), -8);
  EXPECT_EQ(g.peak(), 17);
}

TEST_F(ObsTest, HistogramBucketsByBitWidth) {
  Histogram& h = Registry::global().histogram("test.hist");
  h.record(0);   // bucket 0
  h.record(1);   // bucket 1
  h.record(7);   // bucket 3
  h.record(8);   // bucket 4
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 16u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
}

TEST_F(ObsTest, SnapshotIsSortedByName) {
  Registry::global().counter("test.b").add(2);
  Registry::global().counter("test.a").add(1);
  Registry::global().counter("test.c").add(3);
  const auto snap = Registry::global().snapshot();
  ASSERT_GE(snap.counters.size(), 3u);
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);
  }
}

TEST_F(ObsTest, SpansAreNoOpsWhileDisabled) {
  ASSERT_FALSE(enabled());
  {
    Span outer("outer");
    Span inner("inner");
  }
  EXPECT_TRUE(TraceCollector::events().empty());
  EXPECT_EQ(TraceCollector::dropped(), 0u);
}

TEST_F(ObsTest, SpansRecordNestingDepthAndContainment) {
  setEnabled(true);
  {
    Span outer("outer");
    {
      Span inner("inner");
    }
  }
  const auto events = TraceCollector::events();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start: outer began first, inner nests inside it.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_LE(events[0].startUs, events[1].startUs);
  EXPECT_GE(events[0].startUs + events[0].durUs,
            events[1].startUs + events[1].durUs);
}

TEST_F(ObsTest, EndSpanWithoutBeginIsIgnored) {
  setEnabled(true);
  endSpan();  // nothing open — must not crash or record
  EXPECT_TRUE(TraceCollector::events().empty());
}

TEST_F(ObsTest, SpanCapturesEnabledAtConstruction) {
  setEnabled(true);
  {
    Span span("toggled");
    setEnabled(false);  // toggle mid-scope: the end must still balance
  }
  setEnabled(true);
  const auto events = TraceCollector::events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "toggled");
}

TEST_F(ObsTest, RingBufferTruncatesOldestAndCountsDropped) {
  const std::size_t originalCapacity = TraceCollector::capacityPerThread();
  TraceCollector::setCapacityPerThread(4);
  setEnabled(true);
  for (int i = 0; i < 10; ++i) {
    Span span("span" + std::to_string(i));
  }
  const auto events = TraceCollector::events();
  EXPECT_EQ(events.size(), 4u);
  EXPECT_EQ(TraceCollector::dropped(), 6u);
  // The survivors are the most recent spans, in chronological order.
  ASSERT_EQ(events.front().name, "span6");
  ASSERT_EQ(events.back().name, "span9");
  TraceCollector::setCapacityPerThread(originalCapacity);
}

TEST_F(ObsTest, SpansFromMultipleThreadsCarryDistinctTids) {
  setEnabled(true);
  std::thread other([] { Span span("other-thread"); });
  other.join();
  {
    Span span("main-thread");
  }
  const auto events = TraceCollector::events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST_F(ObsTest, TraceWriterEmitsWellFormedChromeTrace) {
  setEnabled(true);
  Registry::global().counter("test.counter").add(7);
  Registry::global().gauge("test.gauge").set(3);
  {
    Span span("exported \"span\"\n");  // name needing JSON escaping
  }
  const std::string doc = TraceWriter::render(
      TraceCollector::events(), Registry::global().snapshot(),
      TraceCollector::dropped());
  // Structural checks without a JSON parser: balanced braces/brackets and
  // the required Chrome trace keys.
  long braces = 0;
  long brackets = 0;
  bool inString = false;
  for (std::size_t i = 0; i < doc.size(); ++i) {
    const char ch = doc[i];
    if (inString) {
      if (ch == '\\') {
        ++i;
      } else if (ch == '"') {
        inString = false;
      }
      continue;
    }
    if (ch == '"') inString = true;
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(inString);
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"exported \\\"span\\\"\\n\""), std::string::npos);
  EXPECT_NE(doc.find("\"test.counter\":7"), std::string::npos);
  EXPECT_EQ(doc.find('\n'), std::string::npos);  // single-line artifact
}

TEST_F(ObsTest, WriteTraceIfRequestedHonorsArmedPath) {
  EXPECT_FALSE(writeTraceIfRequested());  // nothing armed
  const std::string path =
      ::testing::TempDir() + "/jepo_obs_test_trace.json";
  setTracePath(path);
  EXPECT_TRUE(enabled());  // arming a path turns recording on
  {
    Span span("to-file");
  }
  EXPECT_TRUE(writeTraceIfRequested());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[16] = {};
  const std::size_t n = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  ASSERT_GT(n, 0u);
  EXPECT_EQ(buf[0], '{');
  std::remove(path.c_str());
}

TEST_F(ObsTest, ResetForTestClearsEverything) {
  setEnabled(true);
  Registry::global().counter("test.reset").add(5);
  {
    Span span("cleared");
  }
  resetForTest();
  EXPECT_FALSE(enabled());
  EXPECT_TRUE(tracePath().empty());
  EXPECT_TRUE(TraceCollector::events().empty());
  EXPECT_EQ(Registry::global().counter("test.reset").value(), 0u);
}

TEST_F(ObsTest, ConcurrentSpansAndCountersDoNotInterfere) {
  setEnabled(true);
  Counter& c = Registry::global().counter("test.mixed");
  constexpr int kThreads = 4;
  constexpr int kIters = 2'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kIters; ++i) {
        Span span("work");
        c.add();
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(TraceCollector::events().size() + TraceCollector::dropped(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace jepo::obs
