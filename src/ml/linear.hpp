// Linear-model classifiers over the sparse one-hot encoding:
//  - Logistic: multinomial ridge logistic regression (Le Cessie & van
//    Houwelingen's ridge estimator), fit by batch gradient descent.
//  - SGD: stochastic gradient descent with hinge loss (linear SVM), WEKA's
//    SGD default.
#pragma once

#include "ml/classifier.hpp"
#include "ml/encoding.hpp"
#include "support/rng.hpp"

namespace jepo::ml {

struct LogisticOptions {
  double ridge = 1e-8;   // WEKA default ridge
  int iterations = 60;
  double learningRate = 0.5;
};

template <typename Real>
class Logistic final : public Classifier {
 public:
  Logistic(MlRuntime& runtime, LogisticOptions options)
      : rt_(&runtime), options_(options) {}

  void train(const Instances& data) override;
  int predict(const std::vector<double>& row) const override;
  std::string name() const override { return "Logistic"; }

 private:
  MlRuntime* rt_;
  LogisticOptions options_;
  SparseEncoder encoder_;
  std::size_t numClasses_ = 0;
  std::vector<std::vector<Real>> weights_;  // per class
};

struct SgdOptions {
  double learningRate = 0.01;  // WEKA default
  double lambda = 1e-4;        // L2 regularization
  int epochs = 20;
};

template <typename Real>
class Sgd final : public Classifier {
 public:
  Sgd(MlRuntime& runtime, SgdOptions options, Rng rng)
      : rt_(&runtime), options_(options), rng_(rng) {}

  void train(const Instances& data) override;
  int predict(const std::vector<double>& row) const override;
  std::string name() const override { return "SGD"; }

 private:
  MlRuntime* rt_;
  SgdOptions options_;
  Rng rng_;
  SparseEncoder encoder_;
  std::size_t numClasses_ = 0;
  std::vector<std::vector<Real>> weights_;  // one-vs-rest hinge
};

extern template class Logistic<float>;
extern template class Logistic<double>;
extern template class Sgd<float>;
extern template class Sgd<double>;

}  // namespace jepo::ml
