file(REMOVE_RECURSE
  "libjepo_metrics.a"
)
