file(REMOVE_RECURSE
  "libjepo_jlang.a"
)
