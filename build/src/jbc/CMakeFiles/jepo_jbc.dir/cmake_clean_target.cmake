file(REMOVE_RECURSE
  "libjepo_jbc.a"
)
