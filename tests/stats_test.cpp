#include <gtest/gtest.h>

#include <algorithm>

#include "stats/protocol.hpp"
#include "stats/stats.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace jepo::stats {
namespace {

TEST(Stats, MeanStddevMedian) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(median({5, 1, 3}), 3.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 1e-3);
  EXPECT_THROW(mean({}), PreconditionError);
  EXPECT_THROW(stddev({1.0}), PreconditionError);
}

TEST(Stats, QuartilesType7) {
  const Quartiles q = quartiles({1, 2, 3, 4, 5, 6, 7, 8});
  EXPECT_NEAR(q.q1, 2.75, 1e-9);
  EXPECT_NEAR(q.q2, 4.5, 1e-9);
  EXPECT_NEAR(q.q3, 6.25, 1e-9);
}

TEST(Stats, TukeyFencesAndOutliers) {
  // Tight cluster + one wild value.
  const std::vector<double> xs = {10, 11, 10.5, 9.8, 10.2, 10.7, 9.9, 50};
  const Fences f = tukeyFences(xs);
  EXPECT_FALSE(f.contains(50));
  EXPECT_TRUE(f.contains(10.5));
  const auto outliers = tukeyOutliers(xs);
  ASSERT_EQ(outliers.size(), 1u);
  EXPECT_EQ(outliers[0], 7u);
}

TEST(Stats, NoOutliersInUniformData) {
  EXPECT_TRUE(tukeyOutliers({1, 2, 3, 4, 5, 6, 7, 8}).empty());
}

TEST(Protocol, CleanMeasurementsPassThrough) {
  int calls = 0;
  const auto result = measureWithTukeyLoop(10, [&] {
    ++calls;
    return std::vector<double>{10.0 + 0.01 * calls, 5.0};
  });
  EXPECT_EQ(calls, 10);
  EXPECT_EQ(result.remeasured, 0);
  EXPECT_TRUE(result.converged);
  ASSERT_EQ(result.means.size(), 2u);
  EXPECT_NEAR(result.means[0], 10.055, 1e-9);
  EXPECT_NEAR(result.means[1], 5.0, 1e-12);
}

TEST(Protocol, PlantedOutliersAreReplaced) {
  // Runs 3 and 7 spike; re-measurements return clean values.
  int calls = 0;
  const auto result = measureWithTukeyLoop(10, [&] {
    ++calls;
    const bool spike = calls == 3 || calls == 7;
    return std::vector<double>{spike ? 100.0 : 10.0 + 0.001 * calls};
  });
  EXPECT_TRUE(result.converged);
  EXPECT_GE(result.remeasured, 2);
  EXPECT_LT(result.means[0], 11.0);  // spikes removed from the mean
  for (const auto& row : result.runs) EXPECT_LT(row[0], 50.0);
}

TEST(Protocol, OutlierInAnyMetricTriggersRowRemeasure) {
  int calls = 0;
  const auto result = measureWithTukeyLoop(8, [&] {
    ++calls;
    // Second metric spikes on the first call only.
    return std::vector<double>{10.0 + 0.001 * calls,
                               calls == 1 ? 99.0 : 5.0 + 0.001 * calls};
  });
  EXPECT_TRUE(result.converged);
  EXPECT_GE(result.remeasured, 1);
  EXPECT_LT(result.means[1], 6.0);
}

TEST(Protocol, NonConvergingDistributionHitsTheCap) {
  // Each measurement is an order of magnitude beyond the last, so the
  // freshest value is always above the Tukey fence: the loop can never
  // converge and must stop at the cap.
  double v = 10.0;
  const auto result = measureWithTukeyLoop(
      10,
      [&] {
        v *= 10.0;
        return std::vector<double>{v};
      },
      /*maxRounds=*/5);
  EXPECT_FALSE(result.converged);
}

TEST(Protocol, ValidatesInputs) {
  EXPECT_THROW(
      measureWithTukeyLoop(0, [] { return std::vector<double>{1.0}; }),
      PreconditionError);
  EXPECT_THROW(measureWithTukeyLoop(10, [] { return std::vector<double>{}; }),
               PreconditionError);
}

TEST(Protocol, FewerThanFourRunsSkipsTukeyAndReportsPlainMean) {
  // Quartiles need 4 points; below that (CI smoke runs with --runs=1) the
  // protocol is a plain mean: no re-measurement even of a wild outlier.
  int calls = 0;
  const auto result = measureWithTukeyLoop(2, [&] {
    ++calls;
    return std::vector<double>{calls == 1 ? 1000.0 : 10.0};
  });
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(result.remeasured, 0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.means[0], 505.0, 1e-12);
}

// A measurement that is a pure function of (stream, ordinal) — the contract
// the parallel experiment runner relies on. Stream 0 spikes on ordinals 2
// and 6; stream 1 spikes on ordinal 0; re-measurements are clean.
std::vector<IndexedMeasure> twoSpikyStreams() {
  return {
      [](int ordinal) {
        const bool spike = ordinal == 2 || ordinal == 6;
        return std::vector<double>{spike ? 100.0 : 10.0 + 0.001 * ordinal,
                                   5.0};
      },
      [](int ordinal) {
        return std::vector<double>{ordinal == 0 ? 77.0 : 20.0 + 0.002 * ordinal,
                                   3.0};
      },
  };
}

TEST(Protocol, ManyStreamsScrubEachStreamIndependently) {
  const auto results =
      measureManyWithTukeyLoop(twoSpikyStreams(), 10, serialExecutor());
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.converged);
    ASSERT_EQ(r.runs.size(), 10u);
  }
  EXPECT_GE(results[0].remeasured, 2);
  EXPECT_GE(results[1].remeasured, 1);
  EXPECT_LT(results[0].means[0], 11.0);
  EXPECT_LT(results[1].means[0], 21.0);
  // The constant second metric is untouched (inclusive fences: a constant
  // column never reads as an outlier).
  EXPECT_DOUBLE_EQ(results[0].means[1], 5.0);
  EXPECT_DOUBLE_EQ(results[1].means[1], 3.0);
}

TEST(Protocol, ManyStreamsMatchSingleStreamLoop) {
  // Each stream, run through the batched multi-stream loop, must land on
  // exactly the result of the classic single-stream loop: within a stream
  // ordinals are consumed in the same 0,1,2,... order either way.
  const auto many =
      measureManyWithTukeyLoop(twoSpikyStreams(), 10, serialExecutor());
  for (std::size_t s = 0; s < 2; ++s) {
    int counter = 0;
    const auto stream = twoSpikyStreams()[s];
    const auto single =
        measureWithTukeyLoop(10, [&] { return stream(counter++); });
    EXPECT_EQ(many[s].remeasured, single.remeasured);
    ASSERT_EQ(many[s].runs, single.runs);
    EXPECT_EQ(many[s].means, single.means);
  }
}

TEST(Protocol, ExecutorSchedulingCannotChangeResults) {
  // Determinism contract: results depend only on (stream, ordinal), never
  // on the order the executor happens to run a batch in.
  const auto serial =
      measureManyWithTukeyLoop(twoSpikyStreams(), 10, serialExecutor());
  const BatchExecutor reversed =
      [](const std::vector<std::function<void()>>& jobs) {
        for (auto it = jobs.rbegin(); it != jobs.rend(); ++it) (*it)();
      };
  const auto backwards =
      measureManyWithTukeyLoop(twoSpikyStreams(), 10, reversed);
  ASSERT_EQ(serial.size(), backwards.size());
  for (std::size_t s = 0; s < serial.size(); ++s) {
    EXPECT_EQ(serial[s].runs, backwards[s].runs);
    EXPECT_EQ(serial[s].means, backwards[s].means);
    EXPECT_EQ(serial[s].remeasured, backwards[s].remeasured);
  }
}

TEST(Protocol, ThreadPoolExecutorMatchesSerial) {
  const auto serial =
      measureManyWithTukeyLoop(twoSpikyStreams(), 10, serialExecutor());
  ThreadPool pool(4);
  const BatchExecutor pooled =
      [&pool](const std::vector<std::function<void()>>& jobs) {
        parallelFor(pool, jobs.size(),
                    [&jobs](std::size_t i) { jobs[i](); });
      };
  const auto parallel = measureManyWithTukeyLoop(twoSpikyStreams(), 10, pooled);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t s = 0; s < serial.size(); ++s) {
    EXPECT_EQ(serial[s].runs, parallel[s].runs);
    EXPECT_EQ(serial[s].means, parallel[s].means);
  }
}

TEST(Protocol, ManyStreamsValidateInputs) {
  const std::vector<IndexedMeasure> one = {
      [](int) { return std::vector<double>{1.0}; }};
  EXPECT_THROW(measureManyWithTukeyLoop(one, 0, serialExecutor()),
               PreconditionError);
  // A single run is legal (smoke mode): the mean of that one measurement.
  const auto smoke = measureManyWithTukeyLoop(one, 1, serialExecutor());
  ASSERT_EQ(smoke.size(), 1u);
  EXPECT_EQ(smoke[0].runs.size(), 1u);
  EXPECT_DOUBLE_EQ(smoke[0].means[0], 1.0);
  // No streams is a no-op, not an error.
  EXPECT_TRUE(measureManyWithTukeyLoop({}, 10, serialExecutor()).empty());
}

TEST(Protocol, MeanMatchesSectionEightSemantics) {
  // After convergence the reported value is the plain mean of the final
  // runs — no trimming beyond the re-measurement.
  const auto result = measureWithTukeyLoop(4, [] {
    static int i = 0;
    const double vals[] = {10, 12, 11, 13};
    return std::vector<double>{vals[i++ % 4]};
  });
  EXPECT_NEAR(result.means[0], 11.5, 1e-12);
}

}  // namespace
}  // namespace jepo::stats
