// weka_airlines — the Section VIII workload as a library consumer: train
// all ten classifiers on the airlines data with stratified 10-fold CV and
// print an accuracy/energy/time leaderboard measured through the perf
// runner. This is what the paper's authors ran before and after applying
// JEPO; here both styles are reported side by side.
//
// Flags: --instances=<n> (default 1500)
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "data/airlines.hpp"
#include "ml/evaluation.hpp"
#include "perf/perf.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace jepo;
  std::size_t instances = 1500;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--instances=", 12) == 0) {
      instances = std::strtoul(argv[i] + 12, nullptr, 10);
    }
  }

  data::AirlinesConfig cfg;
  cfg.instances = instances * 2;
  const ml::Instances pool = data::generateAirlines(cfg);
  Rng rng(3);
  const ml::Instances data = pool.subsample(instances, rng);
  std::printf("airlines sample: %zu instances, majority class %.1f%%\n\n",
              data.numInstances(), data.majorityClassFraction() * 100.0);

  TextTable table({"Classifier", "Accuracy", "Baseline J", "Optimized J",
                   "Saved", "CV time (sim)"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight});

  for (int k = 0; k < ml::kClassifierKindCount; ++k) {
    const auto kind = static_cast<ml::ClassifierKind>(k);
    double accuracy = 0.0;
    double seconds = 0.0;
    auto evaluate = [&](ml::CodeStyle style) {
      perf::PerfRunner runner = perf::PerfRunner::exact();
      const perf::PerfStat stat =
          runner.stat([&](energy::SimMachine& machine) {
            ml::MlRuntime rt(machine, style,
                             ml::StyleExposure::forClassifier(k));
            Rng cvRng(5);
            accuracy = ml::crossValidate(
                [&] {
                  return ml::makeClassifier(kind, ml::Precision::kDouble,
                                            rt, 21);
                },
                data, 10, cvRng);
          });
      seconds = stat.seconds;
      return stat.packageJoules;
    };
    const double baseJ = evaluate(ml::CodeStyle::javaBaseline());
    const double optJ = evaluate(ml::CodeStyle::jepoOptimized());
    table.addRow({std::string(ml::classifierName(kind)),
                  fixed(accuracy * 100.0, 1) + "%", fixed(baseJ, 4),
                  fixed(optJ, 4), fixed((1.0 - optJ / baseJ) * 100.0, 2) + "%",
                  fixed(seconds, 3) + " s"});
    std::fflush(stdout);
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
