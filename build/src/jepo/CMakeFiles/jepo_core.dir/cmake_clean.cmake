file(REMOVE_RECURSE
  "CMakeFiles/jepo_core.dir/engine.cpp.o"
  "CMakeFiles/jepo_core.dir/engine.cpp.o.d"
  "CMakeFiles/jepo_core.dir/optimizer.cpp.o"
  "CMakeFiles/jepo_core.dir/optimizer.cpp.o.d"
  "CMakeFiles/jepo_core.dir/profiler.cpp.o"
  "CMakeFiles/jepo_core.dir/profiler.cpp.o.d"
  "CMakeFiles/jepo_core.dir/rules_ext.cpp.o"
  "CMakeFiles/jepo_core.dir/rules_ext.cpp.o.d"
  "CMakeFiles/jepo_core.dir/suggestion.cpp.o"
  "CMakeFiles/jepo_core.dir/suggestion.cpp.o.d"
  "CMakeFiles/jepo_core.dir/views.cpp.o"
  "CMakeFiles/jepo_core.dir/views.cpp.o.d"
  "CMakeFiles/jepo_core.dir/walk.cpp.o"
  "CMakeFiles/jepo_core.dir/walk.cpp.o.d"
  "libjepo_core.a"
  "libjepo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jepo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
