#include "jepod/daemon.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>

#include "fault/fault.hpp"
#include "jepo/engine.hpp"
#include "jepo/optimizer.hpp"
#include "jepo/profiler.hpp"
#include "jepo/views.hpp"
#include "jlang/parser.hpp"
#include "jlang/printer.hpp"
#include "jlang/resolve.hpp"
#include "support/json_reader.hpp"

namespace jepo::jepod {

namespace {

/// Tenant names come off the wire; clamp them to a bounded, registry-safe
/// alphabet so a hostile client cannot mint unbounded or unprintable
/// instrument names.
std::string sanitizeTenant(const std::string& tenant) {
  std::string out;
  const std::size_t n = std::min<std::size_t>(tenant.size(), 48);
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const char c = tenant[i];
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    out += ok ? c : '_';
  }
  return out.empty() ? "default" : out;
}

/// Best-effort id recovery for error responses: the request failed
/// validation, but if it was at least JSON we can still echo its id so
/// the client can correlate the reject.
std::string recoverId(const std::string& line) {
  try {
    return json::parseJson(line).stringOr("id", "");
  } catch (const Error&) {
    return "";
  }
}

}  // namespace

Daemon::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

Daemon::Daemon(DaemonConfig cfg)
    : cfg_(std::move(cfg)), cache_(cfg_.cacheBytes) {
  obs::Registry& reg = obs::Registry::global();
  admitted_ = &reg.counter("jepod.jobs.admitted");
  completed_ = &reg.counter("jepod.jobs.completed");
  rejectedFull_ = &reg.counter("jepod.jobs.rejected.queuefull");
  rejectedDraining_ = &reg.counter("jepod.jobs.rejected.draining");
  badRequests_ = &reg.counter("jepod.requests.bad");
  connections_ = &reg.counter("jepod.connections");
  cancelDeadline_ = &reg.counter("jepod.cancel.deadline");
  cancelDisconnect_ = &reg.counter("jepod.cancel.disconnect");
  idleReaped_ = &reg.counter("jepod.connections.idleReaped");
  inflight_ = &reg.gauge("jepod.jobs.inflight");
  latencyUs_ = &reg.histogram("jepod.job.latencyUs");
  cancelLatencyUs_ = &reg.histogram("jepod.cancel.latencyUs");
}

Daemon::~Daemon() {
  try {
    stop();
  } catch (...) {
    // Destructor teardown must not throw.
  }
}

void Daemon::start() {
  JEPO_REQUIRE(!started_, "Daemon::start called twice");
  JEPO_REQUIRE(!cfg_.socketPath.empty(), "DaemonConfig.socketPath is empty");

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  JEPO_REQUIRE(cfg_.socketPath.size() < sizeof(addr.sun_path),
               "socket path too long for AF_UNIX");
  std::memcpy(addr.sun_path, cfg_.socketPath.c_str(),
              cfg_.socketPath.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw Error("jepod: socket(): " + std::string(std::strerror(errno)));
  }
  // A stale socket file from a dead daemon would make bind fail forever;
  // replace it. (A *live* daemon would still be reachable through its own
  // open fd — single-daemon-per-path is the operator's contract.)
  ::unlink(cfg_.socketPath.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw Error("jepod: bind(" + cfg_.socketPath + "): " + err);
  }
  if (::listen(fd, 128) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    ::unlink(cfg_.socketPath.c_str());
    throw Error("jepod: listen(): " + err);
  }
  listenFd_.store(fd, std::memory_order_relaxed);

  pool_ = std::make_unique<ThreadPool>(cfg_.threads, /*maxQueue=*/0);
  started_ = true;
  watchdogThread_ = std::thread([this] { watchdogLoop(); });
  acceptThread_ = std::thread([this] { acceptLoop(); });
}

void Daemon::requestDrain() {
  {
    std::lock_guard lock(admissionMu_);
    if (draining_.load(std::memory_order_relaxed)) return;
    draining_.store(true, std::memory_order_relaxed);
  }
  idleCv_.notify_all();
  const int fd = listenFd_.load(std::memory_order_relaxed);
  if (fd >= 0) {
    // Unblocks accept() (returns EINVAL on Linux); the fd itself is
    // closed in waitDrained after the accept thread has exited.
    ::shutdown(fd, SHUT_RDWR);
  }
}

void Daemon::waitDrained() {
  std::lock_guard stopLock(stopMu_);
  if (!started_ || drained_) return;

  // 1. Block until a drain has been requested (the jepod binary parks
  //    here until SignalDrain fires) AND every admitted job has completed
  //    and written its response.
  {
    std::unique_lock lock(admissionMu_);
    idleCv_.wait(lock, [this] {
      return draining_.load(std::memory_order_relaxed) && pending_ == 0;
    });
  }
  // 2. No new connections (accept already unblocked by requestDrain).
  if (acceptThread_.joinable()) acceptThread_.join();
  const int listenFd = listenFd_.exchange(-1, std::memory_order_relaxed);
  if (listenFd >= 0) ::close(listenFd);
  // 3. Unblock readers still waiting on idle clients; join them. Their
  //    pending work is only "shutting-down" rejects, which have all been
  //    written inline before this point or will fail harmlessly.
  std::vector<std::shared_ptr<Connection>> conns;
  std::vector<std::thread> threads;
  {
    std::lock_guard lock(connsMu_);
    conns.swap(conns_);
    for (auto& [key, thread] : connThreads_) threads.push_back(std::move(thread));
    connThreads_.clear();
    for (auto& thread : doneThreads_) threads.push_back(std::move(thread));
    doneThreads_.clear();
  }
  for (const auto& c : conns) ::shutdown(c->fd, SHUT_RDWR);
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
  conns.clear();
  // 4. Stop the watchdog: every admitted job has completed, so there is
  //    nothing left to cancel.
  {
    std::lock_guard lock(jobsMu_);
    watchdogStop_ = true;
  }
  watchdogCv_.notify_all();
  if (watchdogThread_.joinable()) watchdogThread_.join();
  // 5. The pool is idle (pending_ == 0); destroy it and remove the socket.
  pool_.reset();
  ::unlink(cfg_.socketPath.c_str());
  drained_ = true;
}

void Daemon::stop() {
  if (!started_) return;
  requestDrain();
  waitDrained();
}

void Daemon::acceptLoop() {
  for (;;) {
    const int fd = ::accept4(listenFd_.load(std::memory_order_relaxed),
                             nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EINVAL after shutdown(), or a fatal accept error
    }
    if (draining_.load(std::memory_order_relaxed)) {
      ::close(fd);
      continue;
    }
    connections_->add();
    // The stream seam: raw fd I/O, or seeded chaos when a transport fault
    // plan is active. The accept ordinal keys this connection's fault
    // schedule, so a soak replays identically run to run.
    std::unique_ptr<fault::ByteStream> stream =
        std::make_unique<fault::FdStream>(fd);
    if (cfg_.transportFaults.active()) {
      stream = std::make_unique<fault::FaultyStream>(
          std::move(stream),
          fault::TransportFaultPlan(cfg_.transportFaults, acceptOrdinal_));
    }
    ++acceptOrdinal_;
    auto conn = std::make_shared<Connection>(fd, std::move(stream));
    std::vector<std::thread> finished;
    {
      std::lock_guard lock(connsMu_);
      finished.swap(doneThreads_);
      conns_.push_back(conn);
      const Connection* key = conn.get();
      // Constructed under connsMu_: the new thread's reapConnection blocks
      // on this mutex, so its handle is registered before it can look.
      connThreads_.emplace(
          key, std::thread([this, conn = std::move(conn)]() mutable {
            connectionLoop(std::move(conn));
          }));
    }
    // Join outside the lock; these threads have already run their cleanup.
    for (auto& t : finished) t.join();
  }
}

void Daemon::connectionLoop(std::shared_ptr<Connection> conn) {
  readLoop(conn);
  // The submitter is gone: nobody will read the responses, so stop
  // burning workers on its in-flight jobs.
  cancelJobsForConnection(conn.get());
  reapConnection(conn.get());
  // `conn` drops here; once in-flight jobs release their captured refs the
  // Connection destructor closes the fd.
}

void Daemon::reapConnection(const Connection* conn) {
  std::lock_guard lock(connsMu_);
  for (auto it = conns_.begin(); it != conns_.end(); ++it) {
    if (it->get() == conn) {
      conns_.erase(it);
      break;
    }
  }
  const auto it = connThreads_.find(conn);
  if (it != connThreads_.end()) {
    // Can't join ourselves; park the handle for acceptLoop/waitDrained.
    doneThreads_.push_back(std::move(it->second));
    connThreads_.erase(it);
  }
}

std::size_t Daemon::openConnectionCount() const {
  std::lock_guard lock(connsMu_);
  return conns_.size();
}

void Daemon::readLoop(const std::shared_ptr<Connection>& conn) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    // Drain complete lines before reading more.
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) handleLine(line, conn);
    }
    if (start > 0) buffer.erase(0, start);

    if (buffer.size() > cfg_.maxLineBytes) {
      badRequests_->add();
      writeLine(conn, renderErrorResponse(
                          "", ErrorCode::kBadRequest,
                          "request line exceeds " +
                              std::to_string(cfg_.maxLineBytes) + " bytes"));
      return;
    }
    if (cfg_.idleTimeoutMs > 0) {
      // Idle reaping: wait for readability so a half-open peer (or a
      // slow-loris trickling a partial line) can be cut loose. A client
      // with jobs in flight is *waiting*, not idle — never reap it.
      bool readable = false;
      while (!readable) {
        pollfd pfd{};
        pfd.fd = conn->fd;
        pfd.events = POLLIN;
        const int pr = ::poll(&pfd, 1, cfg_.idleTimeoutMs);
        if (pr > 0) {
          readable = true;
        } else if (pr < 0) {
          if (errno == EINTR) continue;
          return;
        } else if (conn->inflight.load(std::memory_order_acquire) == 0) {
          idleReaped_->add();
          return;
        }
      }
    }
    const long n = conn->stream->read(chunk, sizeof chunk);
    if (n <= 0) return;  // EOF, client reset, or drain shutdown
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

void Daemon::handleLine(const std::string& line,
                        const std::shared_ptr<Connection>& conn) {
  JobRequest req;
  try {
    req = parseRequest(line);
  } catch (const ProtocolError& e) {
    badRequests_->add();
    writeLine(conn, renderErrorResponse(recoverId(line), e.code(), e.what()));
    return;
  }

  tenantCounter(req.tenant, "requests").add();

  // Admission: the draining check and the queue-bound check share one
  // critical section with pending_ bookkeeping, so a drain observed by
  // waitDrained() can never race a late admission, and a queue-full
  // decision is an exact function of admitted-but-uncompleted jobs. Only
  // the decision happens under the lock — the reject is written after
  // release, because writeLine blocks in send() when a client stops
  // reading, and a stalled client must wedge its own connection only,
  // never every worker and reader parked on admissionMu_.
  enum class Verdict { kAdmit, kDraining, kQueueFull };
  Verdict verdict = Verdict::kAdmit;
  std::size_t pendingSeen = 0;
  {
    std::lock_guard lock(admissionMu_);
    if (draining_.load(std::memory_order_relaxed)) {
      verdict = Verdict::kDraining;
    } else if (cfg_.maxQueue > 0 && pending_ >= cfg_.maxQueue) {
      verdict = Verdict::kQueueFull;
      pendingSeen = pending_;
    } else {
      ++pending_;
      inflight_->set(static_cast<std::int64_t>(pending_));
    }
  }
  if (verdict == Verdict::kDraining) {
    rejectedDraining_->add();
    tenantCounter(req.tenant, "rejected").add();
    writeLine(conn,
              renderErrorResponse(req.id, ErrorCode::kShuttingDown,
                                  "daemon is draining; resubmit elsewhere",
                                  cfg_.retryAfterMs));
    return;
  }
  if (verdict == Verdict::kQueueFull) {
    rejectedFull_->add();
    tenantCounter(req.tenant, "rejected").add();
    writeLine(conn,
              renderErrorResponse(
                  req.id, ErrorCode::kQueueFull,
                  "job queue is full (" + std::to_string(pendingSeen) + "/" +
                      std::to_string(cfg_.maxQueue) + " jobs in flight)",
                  cfg_.retryAfterMs));
    return;
  }
  admitted_->add();

  const auto admittedAt = std::chrono::steady_clock::now();
  // Register the job for cancellation before it can run: the deadline is
  // measured from admission (queue time counts — a queued job whose
  // deadline lapses is cancelled by its very first poll), and a client
  // disconnect must find every job it submitted.
  auto ctx = std::make_shared<JobContext>();
  ctx->conn = conn.get();
  if (req.deadlineMs > 0) {
    ctx->hasDeadline = true;
    ctx->deadline = admittedAt + std::chrono::milliseconds(req.deadlineMs);
  }
  conn->inflight.fetch_add(1, std::memory_order_acq_rel);
  {
    std::lock_guard lock(jobsMu_);
    liveJobs_.push_back(ctx);
  }
  if (ctx->hasDeadline) watchdogCv_.notify_all();

  pool_->submit([this, req = std::move(req), conn, ctx, admittedAt]() mutable {
    const std::string response = runJob(req, ctx.get());
    writeLine(conn, response);
    finishJobContext(ctx);
    conn->inflight.fetch_sub(1, std::memory_order_acq_rel);
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - admittedAt)
                        .count();
    latencyUs_->record(static_cast<std::uint64_t>(us));
    tenantLatency(req.tenant).record(static_cast<std::uint64_t>(us));
    completed_->add();
    finishJob();
  });
}

void Daemon::watchdogLoop() {
  std::unique_lock lock(jobsMu_);
  for (;;) {
    if (watchdogStop_) return;
    auto next = std::chrono::steady_clock::time_point::max();
    for (const auto& job : liveJobs_) {
      if (job->hasDeadline && !job->token.cancelled() &&
          job->deadline < next) {
        next = job->deadline;
      }
    }
    if (next == std::chrono::steady_clock::time_point::max()) {
      watchdogCv_.wait(lock);
    } else {
      watchdogCv_.wait_until(lock, next);
    }
    if (watchdogStop_) return;
    const auto now = std::chrono::steady_clock::now();
    for (const auto& job : liveJobs_) {
      if (job->hasDeadline && !job->token.cancelled() &&
          job->deadline <= now) {
        // cancelledAt is published by the token's release store; the job
        // thread reads it only after observing the token fired.
        job->cancelledAt = now;
        job->token.cancel(CancelReason::kDeadline);
        cancelDeadline_->add();
      }
    }
  }
}

void Daemon::cancelJobsForConnection(const Connection* conn) {
  std::lock_guard lock(jobsMu_);
  const auto now = std::chrono::steady_clock::now();
  for (const auto& job : liveJobs_) {
    if (job->conn == conn && !job->token.cancelled()) {
      job->cancelledAt = now;
      job->token.cancel(CancelReason::kDisconnect);
      cancelDisconnect_->add();
    }
  }
}

void Daemon::finishJobContext(const std::shared_ptr<JobContext>& ctx) {
  std::lock_guard lock(jobsMu_);
  for (auto it = liveJobs_.begin(); it != liveJobs_.end(); ++it) {
    if (it->get() == ctx.get()) {
      liveJobs_.erase(it);
      return;
    }
  }
}

void Daemon::finishJob() {
  std::lock_guard lock(admissionMu_);
  --pending_;
  inflight_->set(static_cast<std::int64_t>(pending_));
  if (pending_ == 0) idleCv_.notify_all();
}

std::shared_ptr<const CachedProgram> Daemon::compileCached(
    const JobRequest& req, bool* cached) {
  const std::uint64_t hash = sourceHash(req.source);
  if (auto hit = cache_.get(hash, req.source)) {
    *cached = true;
    return hit;
  }
  *cached = false;
  auto entry = std::make_shared<CachedProgram>();
  try {
    entry->program = jlang::Parser::parseProgram("<jepod>", req.source);
  } catch (const Error& e) {
    throw ProtocolError(ErrorCode::kParseError, e.what());
  }
  entry->source = req.source;
  entry->hash = hash;
  entry->bytes = req.source.size();
  // Compile-once: resolve here so cache hits skip parse AND resolution.
  jlang::ensureResolved(entry->program);
  return cache_.put(std::move(entry));
}

std::string Daemon::runJob(const JobRequest& req, JobContext* ctx) {
  bool cached = false;
  try {
    const auto compiled = compileCached(req, &cached);
    const jlang::Program& program = compiled->program;

    if (req.command == "suggest") {
      core::SuggestionEngine engine;
      return renderSuggestResponse(
          req, cached,
          core::renderOptimizerView(engine.analyzeProgram(program)));
    }
    if (req.command == "optimize") {
      const core::OptimizeResult result = core::Optimizer().optimize(program);
      std::vector<OptimizeChange> changes;
      changes.reserve(result.changes.size());
      for (const auto& c : result.changes) {
        changes.push_back({c.className, c.line, c.description});
      }
      std::string source;
      for (const auto& unit : result.program.units) {
        source += jlang::printUnit(unit);
      }
      return renderOptimizeResponse(req, cached, changes, source);
    }

    // profile — per-job isolation: fresh Profiler/SimMachine/Interpreter,
    // explicit heap limit (the daemon's environment must never leak into
    // a tenant's result), fault/RNG streams derived from the job seed.
    core::Profiler profiler;
    profiler.setHeapLimit(static_cast<std::size_t>(req.heapLimit));
    profiler.setSeed(req.seed);
    if (ctx != nullptr) profiler.setCancelToken(&ctx->token);
    if (!req.faultPlan.empty()) {
      try {
        profiler.setFaultSpec(fault::parseFaultPlan(req.faultPlan));
      } catch (const Error& e) {
        throw ProtocolError(ErrorCode::kBadRequest,
                            std::string("faultPlan: ") + e.what());
      }
    }
    jvm::TierSpec tierSpec;
    if (!req.tier.empty()) {
      try {
        tierSpec = jvm::parseTierSpec(req.tier);
      } catch (const Error& e) {
        // parseRequest validates the spec at the trust boundary; this
        // guards programmatic JobRequest construction (tests, embedding).
        throw ProtocolError(ErrorCode::kBadRequest,
                            std::string("tier: ") + e.what());
      }
      profiler.setTier(tierSpec);
    }
    // Which tier each tenant's profile jobs actually run — the capacity-
    // planning signal for tiered sampling (global + per-tenant).
    obs::Registry::global()
        .counter(std::string("jepod.tier.") + jvm::tierName(tierSpec.tier))
        .add();
    tenantCounter(req.tenant,
                  (std::string("tier.") + jvm::tierName(tierSpec.tier))
                      .c_str())
        .add();
    profiler.profile(program, req.mainClass, req.maxSteps);
    ProfileResult result;
    result.stdoutText = profiler.programOutput();
    result.records = profiler.records();
    return renderProfileResponse(req, cached, result);
  } catch (const ProtocolError& e) {
    tenantCounter(req.tenant, "errors").add();
    return renderErrorResponse(req.id, e.code(), e.what());
  } catch (const CancelledError& e) {
    // The watchdog or the reader armed this job's token mid-run (or
    // before it started). Record how long the cancel took to land —
    // poll-to-unwind latency, the number that proves the fused fast path
    // doesn't starve cancellation — and answer with the typed code. The
    // messages depend only on the request, never on timing, so responses
    // stay byte-stable.
    tenantCounter(req.tenant, "cancelled").add();
    if (ctx != nullptr) {
      const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - ctx->cancelledAt)
                          .count();
      cancelLatencyUs_->record(static_cast<std::uint64_t>(us < 0 ? 0 : us));
    }
    if (e.reason() == CancelReason::kDeadline) {
      return renderErrorResponse(
          req.id, ErrorCode::kDeadlineExceeded,
          "deadline exceeded (deadlineMs=" + std::to_string(req.deadlineMs) +
              ")");
    }
    return renderErrorResponse(req.id, ErrorCode::kCancelled,
                               "job cancelled: client disconnected");
  } catch (const Error& e) {
    // VM aborts (step limit, runtime error) and main-class ambiguity.
    tenantCounter(req.tenant, "errors").add();
    return renderErrorResponse(req.id, ErrorCode::kRuntimeError, e.what());
  } catch (const std::exception& e) {
    tenantCounter(req.tenant, "errors").add();
    return renderErrorResponse(req.id, ErrorCode::kInternal, e.what());
  }
}

void Daemon::writeLine(const std::shared_ptr<Connection>& conn,
                       const std::string& line) {
  std::lock_guard lock(conn->writeMu);
  std::string framed = line;
  framed += '\n';
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const long n =
        conn->stream->write(framed.data() + sent, framed.size() - sent);
    if (n <= 0) return;  // client went away; its loss
    sent += static_cast<std::size_t>(n);
  }
}

obs::Counter& Daemon::tenantCounter(const std::string& tenant,
                                    const char* what) {
  return obs::Registry::global().counter("jepod.tenant." +
                                         sanitizeTenant(tenant) + "." + what);
}

obs::Histogram& Daemon::tenantLatency(const std::string& tenant) {
  return obs::Registry::global().histogram(
      "jepod.tenant." + sanitizeTenant(tenant) + ".latencyUs");
}

// ---------------------------------------------------------------------------
// SignalDrain

namespace {
// The write end of the self-pipe, visible to the async handler. -1 when no
// SignalDrain is live.
std::atomic<int> gSignalPipeFd{-1};

void drainSignalHandler(int) {
  const int fd = gSignalPipeFd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 'x';
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

struct sigaction gPrevTerm;
struct sigaction gPrevInt;
}  // namespace

SignalDrain::SignalDrain(Daemon& daemon) : daemon_(&daemon) {
  JEPO_REQUIRE(::pipe(pipeFds_) == 0, "SignalDrain: pipe() failed");
  gSignalPipeFd.store(pipeFds_[1], std::memory_order_relaxed);

  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = drainSignalHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGTERM, &sa, &gPrevTerm);
  ::sigaction(SIGINT, &sa, &gPrevInt);

  watcher_ = std::thread([this] {
    char byte;
    for (;;) {
      const ssize_t n = ::read(pipeFds_[0], &byte, 1);
      if (n > 0) {
        triggered_.store(true, std::memory_order_relaxed);
        daemon_->requestDrain();
        continue;  // keep draining further signals until teardown
      }
      if (n == 0) return;  // write end closed: destructor
      if (errno != EINTR) return;
    }
  });
}

SignalDrain::~SignalDrain() {
  ::sigaction(SIGTERM, &gPrevTerm, nullptr);
  ::sigaction(SIGINT, &gPrevInt, nullptr);
  gSignalPipeFd.store(-1, std::memory_order_relaxed);
  ::close(pipeFds_[1]);  // watcher's read() returns 0
  if (watcher_.joinable()) watcher_.join();
  ::close(pipeFds_[0]);
}

}  // namespace jepo::jepod
