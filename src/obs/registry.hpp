// Lock-sharded registry of named counters, gauges and histograms.
//
// Design contract: *lookup* (counter("pool.tasks")) takes one shard mutex
// and is meant to happen once per call site — hot paths resolve the
// instrument up front (constructor, function-local static) and then touch
// only its atomics. Instruments live behind stable unique_ptrs and are
// never deleted, so a cached reference stays valid for the process
// lifetime; reset() zeroes values in place.
//
// Everything here is zero-dependency (support/error.hpp only) so any layer
// — including jepo_support's ThreadPool — can link jepo_obs without cycles.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace jepo::obs {

/// Monotonically increasing event count (tasks executed, VM steps, ...).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written level plus its high-water mark (queue depth, heap size).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
    raisePeak(v);
  }
  void add(std::int64_t delta) noexcept {
    const std::int64_t v =
        value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    raisePeak(v);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  std::int64_t peak() const noexcept {
    return peak_.load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    value_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  void raisePeak(std::int64_t v) noexcept {
    std::int64_t cur = peak_.load(std::memory_order_relaxed);
    while (v > cur && !peak_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> peak_{0};
};

/// Power-of-two-bucketed distribution of unsigned samples (durations in
/// microseconds, batch sizes). Bucket b counts samples with bit_width b,
/// i.e. [2^(b-1), 2^b); bucket 0 counts zeros.
class Histogram {
 public:
  static constexpr int kBuckets = 65;  // bit_width of uint64_t spans 0..64

  void record(std::uint64_t v) noexcept {
    buckets_[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket(int b) const noexcept {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

class Registry {
 public:
  /// The process-wide registry every instrumented subsystem reports into.
  static Registry& global();

  /// Find-or-create by name. References stay valid forever.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  struct HistogramRow {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    /// Bucket counts up to the highest non-empty bucket (trailing zeros
    /// trimmed so reports stay compact).
    std::vector<std::uint64_t> buckets;
  };

  struct GaugeRow {
    std::string name;
    std::int64_t value = 0;
    std::int64_t peak = 0;
  };

  /// Point-in-time copy of every instrument, each section sorted by name
  /// (deterministic report ordering regardless of registration order).
  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<GaugeRow> gauges;
    std::vector<HistogramRow> histograms;
  };
  Snapshot snapshot() const;

  /// Zero every instrument in place; cached references stay valid.
  void reset();

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, std::unique_ptr<Counter>> counters;
    std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges;
    std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms;
  };

  Shard& shardFor(const std::string& name);

  static constexpr std::size_t kShardCount = 16;
  std::array<Shard, kShardCount> shards_;
};

}  // namespace jepo::obs
