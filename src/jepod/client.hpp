// Blocking client for the jepod socket protocol.
//
// One connection, synchronous request/response — the shape every consumer
// here needs (jepod_client CLI, bench_jepod's simulated clients, the test
// suite). The raw-line seam exists so tests can send deliberately
// malformed bytes and assert on the typed error that comes back.
//
// Resilience: reads are bounded by a timeout (a daemon dying mid-response
// surfaces as a typed TransportError, never an indefinite hang), and
// submit() can retry — bounded attempts, exponential backoff with seeded
// jitter, honoring the server's retryAfterMs hint, reconnecting after a
// reset. Retrying is safe because jobs are deterministic and idempotent:
// re-running a job yields the bit-identical response. The sleeper is
// injectable so the backoff schedule is unit-testable without wall time.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "fault/transport.hpp"
#include "jepod/protocol.hpp"

namespace jepo::jepod {

/// A transport-level failure: connect refused, send failed, the peer
/// closed before a full response line, or a read timed out. Distinct from
/// protocol-level errors (which arrive as typed Response objects) so
/// callers — and submit()'s own retry loop — can tell "the daemon said no"
/// from "the wire broke".
class TransportError : public Error {
 public:
  using Error::Error;
};

/// Bounded-retry knobs for Client::submit. Attempt k (0-based) sleeps
/// min(baseBackoffMs * 2^k, maxBackoffMs) plus seeded jitter in
/// [0, base/2], raised to the server's retryAfterMs hint when one came
/// back. maxRetries = 0 (the default) preserves single-shot behaviour.
struct RetryPolicy {
  int maxRetries = 0;
  int baseBackoffMs = 10;
  int maxBackoffMs = 2000;
  std::uint64_t jitterSeed = 0;
};

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connect to a daemon's socket. Throws TransportError when nothing
  /// listens. The path is remembered so retries can reconnect.
  void connect(const std::string& socketPath);
  bool connected() const noexcept { return fd_ >= 0; }
  void close();

  /// Retry policy for submit(). Applies to transport failures (reset,
  /// timeout — the connection is re-established first) and to queue-full
  /// rejects (same connection, after the backoff).
  void setRetryPolicy(const RetryPolicy& policy) { retry_ = policy; }
  const RetryPolicy& retryPolicy() const noexcept { return retry_; }

  /// Replace the backoff sleeper (default: std::this_thread::sleep_for).
  /// Tests install a recorder to pin the schedule without wall time.
  void setSleeper(std::function<void(int)> sleeper);

  /// Bound every blocking read; <= 0 disables (not recommended — that is
  /// the hang-forever mode this knob exists to kill). Default 30000.
  void setReadTimeoutMs(int ms) { readTimeoutMs_ = ms; }

  /// Inject seeded transport faults on this client's side of the wire
  /// (chaos testing). Takes effect at the next connect(); each (re)connect
  /// keys its fault schedule by the connect ordinal, so a retrying client
  /// under chaos replays deterministically.
  void setTransportFaults(const fault::TransportFaultSpec& spec) {
    transportFaults_ = spec;
  }

  /// Retry sleeps taken by submit() so far (both flavours).
  std::uint64_t retries() const noexcept { return retries_; }
  /// Reconnects performed by submit()'s retry loop so far.
  std::uint64_t reconnects() const noexcept { return reconnects_; }

  /// The deterministic backoff schedule, exposed so tests can pin it:
  /// delay before retry `attempt` (0-based), given the server hint
  /// (`retryAfterMs` < 0 = none).
  static int backoffDelayMs(const RetryPolicy& policy, int attempt,
                            int retryAfterMs);

  /// Send one request, block for one response line, decode it. Applies
  /// the retry policy; rethrows the final TransportError when attempts
  /// run out.
  Response submit(const JobRequest& req);

  /// Send raw bytes + '\n', return the raw response line (for protocol
  /// edge-case tests). Single-shot: no retries. Throws TransportError on
  /// EOF or timeout before a full line arrives.
  std::string roundTrip(const std::string& rawLine);

  /// Block for the next response line without sending anything — for
  /// pipelined requests, whose responses arrive in completion order.
  std::string awaitLine() { return readLine(); }

 private:
  std::string readLine();
  Response submitOnce(const JobRequest& req);

  int fd_ = -1;
  std::unique_ptr<fault::ByteStream> stream_;
  std::string buffer_;  // bytes past the last consumed line
  std::string socketPath_;
  RetryPolicy retry_;
  std::function<void(int)> sleeper_;
  int readTimeoutMs_ = 30000;
  fault::TransportFaultSpec transportFaults_;
  std::uint64_t connectOrdinal_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t reconnects_ = 0;
};

}  // namespace jepo::jepod
