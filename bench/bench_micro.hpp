// Shared main for the google-benchmark micro suites. Gives them the same
// command-line contract as the reproduction benches — --json=<path> emits
// the common BenchReport schema, --trace arms the Chrome trace, unknown
// flags are rejected — while passing every --benchmark_* argument through
// to the library untouched.
#pragma once

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace jepo::bench {

/// ConsoleReporter that mirrors each per-iteration run into the report as
/// {name, iterations, realSecondsPerIter, cpuSecondsPerIter}.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(BenchReport* report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      report_->addRow(
          {{"name", run.benchmark_name()},
           {"iterations", static_cast<long long>(run.iterations)},
           {"realSecondsPerIter", run.real_accumulated_time / iters},
           {"cpuSecondsPerIter", run.cpu_accumulated_time / iters}});
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

 private:
  BenchReport* report_;
};

/// The micro suites' main body. --runs is accepted (CI invokes every bench
/// uniformly with --runs=1) but iteration counts stay gbench's decision.
inline int microMain(const std::string& benchName, int argc, char** argv) {
  std::vector<char*> gbenchArgs = {argv[0]};
  std::vector<char*> jepoArgs = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_", 12) == 0) {
      gbenchArgs.push_back(argv[i]);
    } else {
      jepoArgs.push_back(argv[i]);
    }
  }
  Flags flags(static_cast<int>(jepoArgs.size()), jepoArgs.data());
  BenchReport report(benchName, flags);

  int gbenchArgc = static_cast<int>(gbenchArgs.size());
  benchmark::Initialize(&gbenchArgc, gbenchArgs.data());
  if (benchmark::ReportUnrecognizedArguments(gbenchArgc,
                                             gbenchArgs.data())) {
    return 1;
  }
  CapturingReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return report.finish();
}

}  // namespace jepo::bench
