// Cross-module property tests: invariants that tie the subsystems together
// rather than exercising one class.
#include <gtest/gtest.h>

#include "corpus/corpus.hpp"
#include "energy/machine.hpp"
#include "jepo/engine.hpp"
#include "jepo/optimizer.hpp"
#include "jlang/parser.hpp"
#include "jlang/printer.hpp"
#include "jvm/instrumenter.hpp"
#include "jvm/interpreter.hpp"

namespace jepo {
namespace {

// ---------------------------------------------------------------------------
// Optimizer idempotence: a second optimization pass finds nothing left.

class IdempotenceTest
    : public ::testing::TestWithParam<ml::ClassifierKind> {};

TEST_P(IdempotenceTest, SecondOptimizerPassIsEmpty) {
  int seeded = 0;
  const jlang::Program prog =
      corpus::generateScaledCorpus(GetParam(), 0.03, 7, &seeded);
  const core::OptimizeResult first = core::Optimizer().optimize(prog);
  EXPECT_EQ(static_cast<int>(first.changes.size()), seeded);
  const core::OptimizeResult second =
      core::Optimizer().optimize(first.program);
  EXPECT_EQ(second.changes.size(), 0u)
      << "second pass found: " << second.changes.front().description;
}

INSTANTIATE_TEST_SUITE_P(Corpora, IdempotenceTest,
                         ::testing::Values(ml::ClassifierKind::kJ48,
                                           ml::ClassifierKind::kSmo,
                                           ml::ClassifierKind::kKStar));

// Optimization strictly reduces the number of suggestions the engine emits.
TEST(Properties, OptimizedCorpusHasFewerSuggestions) {
  const jlang::Program prog = corpus::generateScaledCorpus(
      ml::ClassifierKind::kNaiveBayes, 0.03, 11, nullptr);
  core::SuggestionEngine engine;
  const auto before = engine.analyzeProgram(prog);
  const auto after =
      engine.analyzeProgram(core::Optimizer().optimize(prog).program);
  EXPECT_LT(after.size(), before.size());
}

// ---------------------------------------------------------------------------
// VM integer semantics equal C++ int32 semantics, swept over operand pairs.

struct ArithCase {
  std::int32_t a;
  std::int32_t b;
};

class VmArithTest : public ::testing::TestWithParam<ArithCase> {};

TEST_P(VmArithTest, MatchesHostInt32Semantics) {
  const auto [a, b] = GetParam();
  const std::string src =
      "class Main { static void main(String[] args) {\n"
      "int a = " + std::to_string(a) + "; int b = " + std::to_string(b) +
      ";\n"
      "System.out.println(a + b);\n"
      "System.out.println(a - b);\n"
      "System.out.println(a * b);\n"
      "System.out.println(a & b);\n"
      "System.out.println(a | b);\n"
      "System.out.println(a ^ b);\n"
      "if (b != 0) { System.out.println(a / b); System.out.println(a % b); }\n"
      "} }";
  energy::SimMachine machine;
  const jlang::Program prog = jlang::Parser::parseProgram("t.mjava", src);
  jvm::Interpreter interp(prog, machine);
  interp.runMain();

  auto wrap = [](std::int64_t v) {
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(v));
  };
  std::string expect;
  expect += std::to_string(wrap(static_cast<std::int64_t>(a) + b)) + "\n";
  expect += std::to_string(wrap(static_cast<std::int64_t>(a) - b)) + "\n";
  expect += std::to_string(wrap(static_cast<std::int64_t>(a) * b)) + "\n";
  expect += std::to_string(a & b) + "\n";
  expect += std::to_string(a | b) + "\n";
  expect += std::to_string(a ^ b) + "\n";
  if (b != 0) {
    // 64-bit host arithmetic: INT_MIN / -1 traps in int32 but wraps to
    // INT_MIN in Java, which is what the VM (and wrap()) must produce.
    expect += std::to_string(wrap(static_cast<std::int64_t>(a) / b)) + "\n";
    expect += std::to_string(wrap(static_cast<std::int64_t>(a) % b)) + "\n";
  }
  EXPECT_EQ(interp.output(), expect) << "a=" << a << " b=" << b;
}

INSTANTIATE_TEST_SUITE_P(
    OperandPairs, VmArithTest,
    ::testing::Values(ArithCase{0, 1}, ArithCase{7, 3}, ArithCase{-7, 3},
                      ArithCase{7, -3}, ArithCase{-7, -3},
                      ArithCase{2147483647, 1}, ArithCase{-2147483648, -1},
                      ArithCase{2147483647, 2147483647},
                      ArithCase{123456789, 987654}, ArithCase{-1, 255},
                      ArithCase{1 << 30, 1 << 3}, ArithCase{42, 0}));

// ---------------------------------------------------------------------------
// Instrumenter across a RAPL counter wrap: one method consuming more than
// 65,536 J (one full wrap of the 32-bit counter at ESU=16) still measures
// the modulo-wrap remainder, exactly like real perf counters.

TEST(Properties, InstrumenterSurvivesCounterWrap) {
  energy::SimMachine machine;
  jvm::Instrumenter inst(machine);
  const std::string methodName = "Big.method";
  const jvm::MethodRef method{0, &methodName};
  inst.onEnter(method);
  // ~65,546 J of double math: wraps the package counter once.
  const double perOp =
      machine.model().cost(energy::Op::kDoubleMath).packageNanojoules;
  const double idle = machine.model().packageIdleWatts() *
                      machine.model().cost(energy::Op::kDoubleMath).nanoseconds;
  const auto ops = static_cast<std::uint64_t>(
      (65536.0 + 10.0) / ((perOp + idle) * 1e-9));
  machine.charge(energy::Op::kDoubleMath, ops);
  inst.onExit(method);

  ASSERT_EQ(inst.records().size(), 1u);
  // The raw counter wrapped: the measured value is the true energy minus
  // one wrap period (the fundamental RAPL ambiguity, documented).
  const double total = machine.sample().packageJoules;
  EXPECT_GT(total, 65536.0);
  EXPECT_NEAR(inst.records()[0].packageJoules, total - 65536.0, 0.01);
}

// ---------------------------------------------------------------------------
// Corpus printer round trip at a second scale + analyzing printed output
// reproduces identical suggestions (parse/print stability under analysis).

TEST(Properties, SuggestionsStableUnderPrintParseRoundTrip) {
  const jlang::Program prog = corpus::generateScaledCorpus(
      ml::ClassifierKind::kSgd, 0.02, 3, nullptr);
  core::SuggestionEngine engine;
  const auto direct = engine.analyzeProgram(prog);

  jlang::Program reparsed;
  for (const auto& unit : prog.units) {
    reparsed.units.push_back(
        jlang::Parser(unit.fileName, jlang::printUnit(unit)).parseUnit());
  }
  const auto viaPrint = engine.analyzeProgram(reparsed);
  ASSERT_EQ(direct.size(), viaPrint.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct[i].rule, viaPrint[i].rule);
    EXPECT_EQ(direct[i].className, viaPrint[i].className);
  }
}

// ---------------------------------------------------------------------------
// Energy accounting is additive: running two workloads on one machine
// equals the sum of running them on separate machines (no cross-talk).

TEST(Properties, MachineEnergyIsAdditiveAcrossWorkloads) {
  auto runLoop = [](energy::SimMachine& m, int n) {
    m.charge(energy::Op::kIntMod, static_cast<std::uint64_t>(n));
    m.charge(energy::Op::kDoubleAlu, static_cast<std::uint64_t>(2 * n));
  };
  energy::SimMachine a;
  runLoop(a, 1000);
  energy::SimMachine b;
  runLoop(b, 2345);
  energy::SimMachine both;
  runLoop(both, 1000);
  runLoop(both, 2345);
  EXPECT_NEAR(both.sample().packageJoules,
              a.sample().packageJoules + b.sample().packageJoules, 1e-12);
  EXPECT_NEAR(both.sample().seconds,
              a.sample().seconds + b.sample().seconds, 1e-15);
}

}  // namespace
}  // namespace jepo
