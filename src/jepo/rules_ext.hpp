// Extension rules — the paper's stated future work ("we hope to improve
// JEPO by including more suggestions for software developers").
//
// Five additional energy rules beyond Table I, in the same detect/refactor
// style. Detection lives here; the two mechanically safe rewrites
// (length-hoisting and field caching) are implemented in ExtOptimizer.
#pragma once

#include <string>
#include <vector>

#include "jlang/ast.hpp"

namespace jepo::core {

enum class ExtRuleId : int {
  kTryInLoop = 0,       // try/catch entered every iteration: hoist the loop
                        // inside the try (setup cost per entry)
  kBoxingInLoop,        // wrapper allocation inside a hot loop
  kAllocationInLoop,    // `new` per iteration where reuse would do
  kLengthInLoopCond,    // s.length()/arr.length recomputed every test
  kRepeatedFieldAccess, // same instance field read 3+ times in one method

  kExtRuleCount
};

inline constexpr int kExtRuleCount = static_cast<int>(ExtRuleId::kExtRuleCount);

std::string_view extRuleName(ExtRuleId id) noexcept;
std::string_view extRuleSuggestion(ExtRuleId id) noexcept;

struct ExtSuggestion {
  ExtRuleId rule = ExtRuleId::kTryInLoop;
  std::string file;
  std::string className;
  int line = 0;
  std::string detail;

  std::string message() const;
};

/// Analyze a project with the extension rules.
std::vector<ExtSuggestion> analyzeExtensions(const jlang::Program& program);

/// The safe subset of extension rewrites:
///  - hoist `x.length()` out of canonical-for conditions when the loop body
///    does not write `x`;
///  - cache an instance field read 3+ times into a local when the method
///    never writes it and makes no calls (which could alias-write it).
struct ExtChange {
  ExtRuleId rule;
  std::string className;
  int line;
  std::string description;
};

struct ExtOptimizeResult {
  jlang::Program program;
  std::vector<ExtChange> changes;
};

ExtOptimizeResult optimizeExtensions(const jlang::Program& program);

}  // namespace jepo::core
