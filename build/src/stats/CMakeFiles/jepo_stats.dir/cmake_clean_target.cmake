file(REMOVE_RECURSE
  "libjepo_stats.a"
)
