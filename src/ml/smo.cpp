#include "ml/smo.hpp"

#include <algorithm>
#include <cmath>

namespace jepo::ml {

namespace {

template <typename Real>
Real dot(const std::vector<Real>& w,
         const std::vector<SparseEncoder::Entry>& x, MlRuntime& rt) {
  Real acc = Real(0);
  for (const auto& e : x) acc += w[e.index] * Real(e.value);
  rt.flops(2 * x.size());
  rt.arrayOps(x.size());
  return acc;
}

/// Self kernel value K(x, x) for the linear kernel.
template <typename Real>
Real selfDot(const std::vector<SparseEncoder::Entry>& x, MlRuntime& rt) {
  Real acc = Real(0);
  for (const auto& e : x) acc += Real(e.value) * Real(e.value);
  rt.flops(2 * x.size());
  return acc;
}

/// K(xi, xj) for sparse vectors (sorted by construction).
template <typename Real>
Real crossDot(const std::vector<SparseEncoder::Entry>& a,
              const std::vector<SparseEncoder::Entry>& b, MlRuntime& rt) {
  Real acc = Real(0);
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].index == b[j].index) {
      acc += Real(a[i].value) * Real(b[j].value);
      ++i;
      ++j;
    } else if (a[i].index < b[j].index) {
      ++i;
    } else {
      ++j;
    }
  }
  rt.flops(2 * (a.size() + b.size()));
  return acc;
}

}  // namespace

template <typename Real>
typename Smo<Real>::BinaryMachine Smo<Real>::trainBinary(
    const std::vector<std::vector<SparseEncoder::Entry>>& xs,
    const std::vector<int>& ys, int classA, int classB) {
  // Collect the two-class subset with targets +-1.
  std::vector<std::size_t> subset;
  for (std::size_t i = 0; i < ys.size(); ++i) {
    if (ys[i] == classA || ys[i] == classB) subset.push_back(i);
  }
  const std::size_t n = subset.size();
  BinaryMachine machine;
  machine.classA = classA;
  machine.classB = classB;
  machine.w.assign(encoder_.numFeatures(), Real(0));
  if (n == 0) return machine;

  std::vector<Real> alpha(n, Real(0));
  std::vector<Real> target(n);
  for (std::size_t k = 0; k < n; ++k) {
    target[k] = ys[subset[k]] == classA ? Real(1) : Real(-1);
  }
  Real b = Real(0);
  const Real C = Real(options_.c);
  const Real tol = Real(options_.tolerance);

  auto f = [&](std::size_t k) {
    return dot(machine.w, xs[subset[k]], *rt_) + b;
  };

  int passes = 0;
  int iterations = 0;
  while (passes < options_.maxPasses &&
         iterations < options_.maxIterations) {
    ++iterations;
    rt_->configReads(3);  // C, tolerance, epsilon
    int changed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const Real Ei = f(i) - target[i];
      rt_->flops(1);
      rt_->selections(1);
      const bool violatesKkt =
          (target[i] * Ei < -tol && alpha[i] < C) ||
          (target[i] * Ei > tol && alpha[i] > Real(0));
      if (!violatesKkt) continue;

      // Second index: random different point (simplified Platt heuristic).
      std::size_t j = rng_.nextBelow(n - 1);
      if (j >= i) ++j;
      const Real Ej = f(j) - target[j];

      const Real ai = alpha[i];
      const Real aj = alpha[j];
      Real lo;
      Real hi;
      if (target[i] != target[j]) {
        lo = std::max(Real(0), aj - ai);
        hi = std::min(C, C + aj - ai);
      } else {
        lo = std::max(Real(0), ai + aj - C);
        hi = std::min(C, ai + aj);
      }
      rt_->flops(6);
      if (lo >= hi) continue;

      const Real kii = selfDot<Real>(xs[subset[i]], *rt_);
      const Real kjj = selfDot<Real>(xs[subset[j]], *rt_);
      const Real kij = crossDot<Real>(xs[subset[i]], xs[subset[j]], *rt_);
      const Real eta = Real(2) * kij - kii - kjj;
      if (eta >= Real(0)) continue;

      Real ajNew = aj - target[j] * (Ei - Ej) / eta;
      ajNew = std::clamp(ajNew, lo, hi);
      rt_->flopDivs(1);
      rt_->flops(4);
      if (std::fabs(static_cast<double>(ajNew - aj)) < 1e-6) continue;
      const Real aiNew = ai + target[i] * target[j] * (aj - ajNew);

      // Incremental weight update (exact for the linear kernel).
      const Real di = (aiNew - ai) * target[i];
      const Real dj = (ajNew - aj) * target[j];
      for (const auto& e : xs[subset[i]]) {
        machine.w[e.index] += di * Real(e.value);
      }
      for (const auto& e : xs[subset[j]]) {
        machine.w[e.index] += dj * Real(e.value);
      }
      rt_->flops(2 * (xs[subset[i]].size() + xs[subset[j]].size()));
      rt_->arrayOps(xs[subset[i]].size() + xs[subset[j]].size());

      // Keerthi-style dual threshold update.
      const Real b1 = b - Ei - di * kii - dj * kij;
      const Real b2 = b - Ej - di * kij - dj * kjj;
      if (aiNew > Real(0) && aiNew < C) {
        b = b1;
      } else if (ajNew > Real(0) && ajNew < C) {
        b = b2;
      } else {
        b = (b1 + b2) / Real(2);
      }
      rt_->flops(10);
      rt_->selections(2);

      alpha[i] = aiNew;
      alpha[j] = ajNew;
      ++changed;
      rt_->counterOps(1);
    }
    passes = changed == 0 ? passes + 1 : 0;
  }
  machine.b = b;
  return machine;
}

template <typename Real>
void Smo<Real>::train(const Instances& data) {
  const std::size_t n = data.numInstances();
  JEPO_REQUIRE(n > 0, "empty training set");
  numClasses_ = data.numClasses();
  encoder_.fit(data);
  machines_.clear();

  std::vector<std::vector<SparseEncoder::Entry>> xs;
  xs.reserve(n);
  std::vector<int> ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back(encoder_.encode(data.row(i), *rt_));
    ys[i] = data.classValue(i);
  }

  // Pairwise coupling (c*(c-1)/2 binary machines).
  for (int a = 0; a < static_cast<int>(numClasses_); ++a) {
    for (int bCls = a + 1; bCls < static_cast<int>(numClasses_); ++bCls) {
      machines_.push_back(trainBinary(xs, ys, a, bCls));
    }
  }
}

template <typename Real>
int Smo<Real>::predict(const std::vector<double>& row) const {
  JEPO_REQUIRE(!machines_.empty(), "predict before train");
  const auto x = encoder_.encode(row, *rt_);
  std::vector<int> votes(numClasses_, 0);
  for (const auto& m : machines_) {
    const Real v = dot(m.w, x, *rt_) + m.b;
    ++votes[static_cast<std::size_t>(v > Real(0) ? m.classA : m.classB)];
    rt_->selections(1);
  }
  return static_cast<int>(std::distance(
      votes.begin(), std::max_element(votes.begin(), votes.end())));
}

template class Smo<float>;
template class Smo<double>;

}  // namespace jepo::ml
