// Code metrics over MiniJava projects — the five columns of paper Table II
// (collected there with the Eclipse Metrics plug-in and the Class
// Dependency Analyzer).
#pragma once

#include <cstddef>

#include "jlang/ast.hpp"

namespace jepo::metrics {

struct CodeMetrics {
  std::size_t dependencies = 0;  // classes in the dependency closure
  std::size_t attributes = 0;    // field declarations
  std::size_t methods = 0;       // method declarations (ctors included)
  std::size_t packages = 0;      // distinct package names
  std::size_t loc = 0;           // physical lines of canonical source
};

/// Compute the Table II metrics for a project. `dependencies` counts the
/// distinct classes in the project's dependency closure: every declared
/// class plus every imported class name (CDA's notion of the closure for a
/// self-contained project).
CodeMetrics computeMetrics(const jlang::Program& program);

}  // namespace jepo::metrics
