#include "fault/fault.hpp"

#include <cstdlib>

#include "obs/registry.hpp"
#include "rapl/rapl.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace jepo::fault {

namespace {

obs::Counter& faultCounter(const char* name) {
  return obs::Registry::global().counter(name);
}

bool isEnergyStatus(std::uint32_t msr) noexcept {
  return msr == rapl::kMsrPkgEnergyStatus ||
         msr == rapl::kMsrPp0EnergyStatus ||
         msr == rapl::kMsrPp1EnergyStatus ||
         msr == rapl::kMsrDramEnergyStatus;
}

std::uint32_t domainMsrByName(std::string_view name) {
  if (name == "package") return rapl::kMsrPkgEnergyStatus;
  if (name == "core") return rapl::kMsrPp0EnergyStatus;
  if (name == "uncore") return rapl::kMsrPp1EnergyStatus;
  if (name == "dram") return rapl::kMsrDramEnergyStatus;
  throw Error("fault plan: unknown domain '" + std::string(name) +
              "' (expected package|core|uncore|dram)");
}

FaultSpec preset(std::string_view name) {
  FaultSpec s;
  if (name == "none") return s;
  if (name == "transient") {
    s.transientProb = 0.2;
    s.transientBurst = 2;
    return s;
  }
  if (name == "transient-heavy") {
    s.transientProb = 0.5;
    s.transientBurst = 3;  // still inside the default 4-attempt budget
    return s;
  }
  if (name == "stale") {
    s.staleProb = 0.1;
    return s;
  }
  if (name == "glitch") {
    s.backwardsProb = 0.05;
    s.jumpProb = 0.02;
    return s;
  }
  if (name == "chaos") {
    s.transientProb = 0.2;
    s.transientBurst = 2;
    s.staleProb = 0.05;
    s.backwardsProb = 0.02;
    s.jumpProb = 0.01;
    return s;
  }
  if (name == "exhausting") {
    // Bursts longer than any retry budget: some measurements become
    // invalid and must be absorbed by measurement-level retry or row
    // flagging, never by a crash.
    s.transientProb = 0.05;
    s.transientBurst = 99;
    return s;
  }
  if (name == "no-dram") {
    s.unavailable = {rapl::kMsrDramEnergyStatus};
    return s;
  }
  if (name == "no-core") {
    s.unavailable = {rapl::kMsrPp0EnergyStatus};
    return s;
  }
  if (name == "no-uncore") {
    s.unavailable = {rapl::kMsrPp1EnergyStatus};
    return s;
  }
  if (name == "no-package") {
    s.unavailable = {rapl::kMsrPkgEnergyStatus};
    return s;
  }
  throw Error(
      "fault plan: unknown preset '" + std::string(name) +
      "' (expected none|transient|transient-heavy|stale|glitch|chaos|"
      "exhausting|no-dram|no-core|no-uncore|no-package)");
}

double parseProb(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double p = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
    throw Error("fault plan: " + key + "=" + value +
                " is not a probability in [0,1]");
  }
  return p;
}

}  // namespace

std::string_view faultKindName(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kTransient: return "transient";
    case FaultKind::kStale: return "stale";
    case FaultKind::kBackwards: return "backwards";
    case FaultKind::kJump: return "jump";
  }
  return "?";
}

bool FaultSpec::active() const noexcept {
  return transientProb > 0.0 || staleProb > 0.0 || backwardsProb > 0.0 ||
         jumpProb > 0.0 || !unavailable.empty();
}

std::string FaultSpec::describe() const {
  // Canonical form: the empty preset plus explicit overrides, so the
  // string round-trips through parseFaultPlan.
  std::string out = "none:seed=" + std::to_string(seed);
  if (transientProb > 0.0) {
    out += ",transient-prob=" + fixed(transientProb, 3) +
           ",transient-burst=" + std::to_string(transientBurst);
  }
  if (staleProb > 0.0) out += ",stale-prob=" + fixed(staleProb, 3);
  if (backwardsProb > 0.0) {
    out += ",backwards-prob=" + fixed(backwardsProb, 3);
  }
  if (jumpProb > 0.0) out += ",jump-prob=" + fixed(jumpProb, 3);
  for (std::uint32_t msr : unavailable) {
    for (rapl::Domain d : rapl::kAllDomains) {
      if (rapl::domainMsr(d) == msr) {
        out += ",drop-domain=" + std::string(rapl::domainName(d));
        break;
      }
    }
  }
  return out;
}

FaultSpec parseFaultPlan(const std::string& text) {
  const std::string trimmed(trim(text));
  if (trimmed.empty()) return FaultSpec{};
  const auto colon = trimmed.find(':');
  FaultSpec spec = preset(colon == std::string::npos
                              ? std::string_view(trimmed)
                              : std::string_view(trimmed).substr(0, colon));
  if (colon == std::string::npos) return spec;

  for (const std::string& kv : split(trimmed.substr(colon + 1), ',')) {
    const auto eq = kv.find('=');
    if (eq == std::string::npos) {
      throw Error("fault plan: expected key=value, got '" + kv + "'");
    }
    const std::string key(trim(kv.substr(0, eq)));
    const std::string value(trim(kv.substr(eq + 1)));
    if (key == "seed") {
      spec.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "transient-prob") {
      spec.transientProb = parseProb(key, value);
    } else if (key == "transient-burst") {
      spec.transientBurst =
          static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
      if (spec.transientBurst < 1) {
        throw Error("fault plan: transient-burst must be >= 1");
      }
    } else if (key == "stale-prob") {
      spec.staleProb = parseProb(key, value);
    } else if (key == "backwards-prob") {
      spec.backwardsProb = parseProb(key, value);
    } else if (key == "jump-prob") {
      spec.jumpProb = parseProb(key, value);
    } else if (key == "drop-domain") {
      spec.unavailable.push_back(domainMsrByName(value));
    } else {
      throw Error("fault plan: unknown key '" + key +
                  "' (expected seed|transient-prob|transient-burst|"
                  "stale-prob|backwards-prob|jump-prob|drop-domain)");
    }
  }
  return spec;
}

FaultPlan::FaultPlan(FaultSpec spec) : spec_(std::move(spec)) {}

bool FaultPlan::unavailable(std::uint32_t msr) const noexcept {
  for (std::uint32_t u : spec_.unavailable) {
    if (u == msr) return true;
  }
  return false;
}

FaultDecision FaultPlan::decide(std::uint32_t msr,
                                std::uint64_t ordinal) const {
  FaultDecision d;
  // One private RNG per (register, read ordinal): the decision never
  // depends on call history, threads, or the clock.
  Rng rng(deriveSeed(spec_.seed, msr, ordinal, 0xFA5EEDULL));
  const double u = rng.nextDouble();
  double edge = spec_.transientProb;
  if (u < edge) {
    d.kind = FaultKind::kTransient;
    d.burst = spec_.transientBurst;
    return d;
  }
  if (!isEnergyStatus(msr)) return d;  // value faults: counters only
  if (u < (edge += spec_.staleProb)) {
    d.kind = FaultKind::kStale;
    return d;
  }
  if (u < (edge += spec_.backwardsProb)) {
    d.kind = FaultKind::kBackwards;
    d.magnitude = 1 + static_cast<std::uint32_t>(rng.nextBelow(4096));
    return d;
  }
  if (u < (edge += spec_.jumpProb)) {
    d.kind = FaultKind::kJump;
    // More than half the counter range forward: indistinguishable from the
    // counter having silently run through extra wraps.
    d.magnitude = 0x80000000u + static_cast<std::uint32_t>(
                                    rng.nextBelow(0x40000000u));
    return d;
  }
  return d;
}

FaultyMsrDevice::FaultyMsrDevice(const rapl::MsrDevice& inner, FaultPlan plan)
    : inner_(&inner), plan_(std::move(plan)) {
  faultCounter("fault.devices").add();
}

std::uint64_t FaultyMsrDevice::read(std::uint32_t msr) const {
  if (plan_.unavailable(msr)) {
    faultCounter("fault.injected.unavailable").add();
    throw rapl::MsrError(msr, rapl::MsrError::Kind::kPermanent,
                         "msr read: register " + rapl::msrName(msr) +
                             " not implemented on this SKU (fault plan)");
  }
  const std::uint64_t ordinal = ordinal_++;

  // A transient burst in progress keeps failing without consulting the
  // plan, so one event spans `burst` consecutive attempts of this register.
  const auto burstIt = burst_.find(msr);
  if (burstIt != burst_.end() && burstIt->second > 0) {
    --burstIt->second;
    ++injected_;
    faultCounter("fault.injected.transient").add();
    throw rapl::MsrError(msr, rapl::MsrError::Kind::kTransient,
                         "msr read: transient failure on " +
                             rapl::msrName(msr) + " (fault plan burst)");
  }

  const FaultDecision d = plan_.decide(msr, ordinal);
  switch (d.kind) {
    case FaultKind::kTransient: {
      burst_[msr] = d.burst - 1;
      ++injected_;
      faultCounter("fault.injected.transient").add();
      throw rapl::MsrError(msr, rapl::MsrError::Kind::kTransient,
                           "msr read: transient failure on " +
                               rapl::msrName(msr) + " (fault plan)");
    }
    case FaultKind::kStale: {
      const auto it = last_.find(msr);
      if (it != last_.end()) {
        ++injected_;
        faultCounter("fault.injected.stale").add();
        return it->second;  // repeat the last value we returned
      }
      break;  // nothing to repeat yet: serve the true value
    }
    case FaultKind::kBackwards: {
      const auto it = last_.find(msr);
      if (it != last_.end()) {
        ++injected_;
        faultCounter("fault.injected.backwards").add();
        const std::uint32_t glitched =
            static_cast<std::uint32_t>(it->second) - d.magnitude;
        last_[msr] = glitched;
        return glitched;
      }
      break;
    }
    case FaultKind::kJump: {
      ++injected_;
      faultCounter("fault.injected.jump").add();
      const std::uint32_t jumped =
          static_cast<std::uint32_t>(inner_->read(msr)) + d.magnitude;
      last_[msr] = jumped;
      return jumped;
    }
    case FaultKind::kNone:
      break;
  }

  const std::uint64_t value = inner_->read(msr);
  last_[msr] = value;
  return value;
}

}  // namespace jepo::fault
