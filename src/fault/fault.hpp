// Deterministic fault injection for the RAPL/MSR substrate.
//
// On real edge hardware the measurement pipeline's weakest link is the MSR
// read itself: /dev/cpu/*/msr returns transient EAGAIN/EIO under SMI and
// concurrent-access pressure, whole domains are missing on many SKUs (no
// DRAM/PP1), and energy-status counters occasionally repeat a stale sample,
// glitch backwards, or jump implausibly far forward. This module reproduces
// those failure modes as a decorator over any MsrDevice so every consumer
// (RaplReader, EnergyCounter, PerfRunner, the instrumenter, the Table IV
// matrix) can be driven through them in tests and chaos benches.
//
// Determinism contract: a FaultPlan's decision for a read is a pure
// function of (spec.seed, register, per-device read ordinal) — no wall
// clock, no shared state. Each measurement builds its own FaultyMsrDevice
// whose plan seed is derived from the measurement's stream identity
// (deriveSeed), so fault-injected experiment matrices remain bit-identical
// at any thread count, exactly like the fault-free ones.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rapl/msr.hpp"

namespace jepo::fault {

enum class FaultKind {
  kNone,
  kTransient,  // read throws a transient MsrError for `burst` attempts
  kStale,      // read repeats the last value returned for this register
  kBackwards,  // read returns slightly less than the last value returned
  kJump,       // read returns the true value + an implausible jump
};

std::string_view faultKindName(FaultKind k) noexcept;

/// The knobs of a fault plan. Probabilities are per read attempt and
/// independent per register; value faults (stale/backwards/jump) apply
/// only to energy-status registers — the counters that actually glitch on
/// real hardware — while transient errors and unavailability can hit any
/// register, including MSR_RAPL_POWER_UNIT.
struct FaultSpec {
  std::uint64_t seed = 1;
  double transientProb = 0.0;
  int transientBurst = 1;  // consecutive failing attempts per event
  double staleProb = 0.0;
  double backwardsProb = 0.0;
  double jumpProb = 0.0;
  std::vector<std::uint32_t> unavailable;  // permanently absent registers

  /// Does this spec inject anything at all? An inactive spec lets callers
  /// skip building the decorator entirely (the <1% no-fault guarantee).
  bool active() const noexcept;

  /// "transient-prob=0.2,transient-burst=2,..." — the canonical spec
  /// string, parseable by parseFaultPlan.
  std::string describe() const;
};

/// Parse "--fault-plan=" syntax: a preset name optionally followed by
/// ':' and comma-separated key=value overrides.
///
///   none | transient | transient-heavy | stale | glitch | chaos |
///   exhausting | no-dram | no-core | no-uncore | no-package
///
/// overrides: seed=<n> transient-prob=<p> transient-burst=<n>
///            stale-prob=<p> backwards-prob=<p> jump-prob=<p>
///            drop-domain=<package|core|uncore|dram>  (repeatable)
///
/// e.g. "transient:seed=9,transient-prob=0.5". Throws Error on unknown
/// names or keys.
FaultSpec parseFaultPlan(const std::string& text);

struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  int burst = 1;                 // kTransient: failing attempts
  std::uint32_t magnitude = 0;   // kBackwards/kJump: raw-count offset
};

/// The schedule: decide(msr, ordinal) is pure, so two devices built from
/// the same spec replay identical fault sequences.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(FaultSpec spec);

  const FaultSpec& spec() const noexcept { return spec_; }
  bool unavailable(std::uint32_t msr) const noexcept;
  FaultDecision decide(std::uint32_t msr, std::uint64_t ordinal) const;

 private:
  FaultSpec spec_;
};

/// Chaos decorator over any MsrDevice. Not thread-safe by design: each
/// measurement owns its device, mirroring how each owns its SimMachine.
class FaultyMsrDevice final : public rapl::MsrDevice {
 public:
  FaultyMsrDevice(const rapl::MsrDevice& inner, FaultPlan plan);

  std::uint64_t read(std::uint32_t msr) const override;

  /// Fault events injected by this device so far (all kinds).
  std::uint64_t injected() const noexcept { return injected_; }
  /// Read attempts seen (the plan-ordinal counter).
  std::uint64_t reads() const noexcept { return ordinal_; }

 private:
  const rapl::MsrDevice* inner_;
  FaultPlan plan_;
  mutable std::uint64_t ordinal_ = 0;
  mutable std::uint64_t injected_ = 0;
  mutable std::unordered_map<std::uint32_t, std::uint64_t> last_;
  mutable std::unordered_map<std::uint32_t, int> burst_;
};

}  // namespace jepo::fault
