// WEKA-style dataset model: attributes (numeric or nominal), instances,
// and the stratified fold machinery Section VIII's evaluation uses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace jepo::ml {

enum class AttrKind : int { kNumeric, kNominal };

class Attribute {
 public:
  static Attribute numeric(std::string name) {
    Attribute a;
    a.name_ = std::move(name);
    a.kind_ = AttrKind::kNumeric;
    return a;
  }
  static Attribute nominal(std::string name, std::vector<std::string> labels) {
    JEPO_REQUIRE(!labels.empty(), "nominal attribute needs labels");
    Attribute a;
    a.name_ = std::move(name);
    a.kind_ = AttrKind::kNominal;
    a.labels_ = std::move(labels);
    return a;
  }

  const std::string& name() const noexcept { return name_; }
  AttrKind kind() const noexcept { return kind_; }
  bool isNominal() const noexcept { return kind_ == AttrKind::kNominal; }
  bool isNumeric() const noexcept { return kind_ == AttrKind::kNumeric; }

  /// Distinct labels of a nominal attribute.
  std::size_t numLabels() const noexcept { return labels_.size(); }
  const std::string& label(std::size_t i) const { return labels_.at(i); }
  const std::vector<std::string>& labels() const noexcept { return labels_; }

  /// Index of a label; -1 when absent.
  int labelIndex(std::string_view label) const;

 private:
  std::string name_;
  AttrKind kind_ = AttrKind::kNumeric;
  std::vector<std::string> labels_;
};

/// A dataset: schema + dense rows. Nominal values are stored as label
/// indices (doubles, WEKA-style), numeric values as themselves.
class Instances {
 public:
  Instances(std::string relation, std::vector<Attribute> attributes,
            int classIndex);

  const std::string& relation() const noexcept { return relation_; }
  std::size_t numAttributes() const noexcept { return attributes_.size(); }
  std::size_t numInstances() const noexcept { return rows_.size(); }
  int classIndex() const noexcept { return classIndex_; }
  const Attribute& attribute(std::size_t i) const {
    return attributes_.at(i);
  }
  const Attribute& classAttribute() const {
    return attributes_.at(static_cast<std::size_t>(classIndex_));
  }
  std::size_t numClasses() const { return classAttribute().numLabels(); }

  void addRow(std::vector<double> row);
  const std::vector<double>& row(std::size_t i) const { return rows_.at(i); }
  double value(std::size_t row, std::size_t attr) const {
    return rows_.at(row).at(attr);
  }
  int classValue(std::size_t row) const {
    return static_cast<int>(
        rows_.at(row).at(static_cast<std::size_t>(classIndex_)));
  }

  /// Indices of non-class attributes, in order.
  std::vector<std::size_t> featureIndices() const;

  /// Fraction of instances in the most common class (baseline accuracy).
  double majorityClassFraction() const;

  /// An empty dataset with the same schema.
  Instances emptyCopy() const { return Instances(relation_, attributes_, classIndex_); }

  /// Deterministic shuffle + truncation to the first n rows (the paper
  /// reduces MOA to 10,000 instances for heap reasons).
  Instances subsample(std::size_t n, Rng& rng) const;

  /// Stratified k-fold split: returns, per fold, {trainIdx, testIdx}. Every
  /// instance appears in exactly one test fold; class ratios are preserved
  /// per fold as closely as counts allow.
  struct Fold {
    std::vector<std::size_t> train;
    std::vector<std::size_t> test;
  };
  std::vector<Fold> stratifiedFolds(std::size_t k, Rng& rng) const;

  /// Materialize a subset by row indices.
  Instances select(const std::vector<std::size_t>& indices) const;

  /// Per-attribute min/max over numeric attributes (for normalization).
  struct NumericRange {
    double min = 0.0;
    double max = 0.0;
  };
  std::vector<NumericRange> numericRanges() const;

 private:
  std::string relation_;
  std::vector<Attribute> attributes_;
  int classIndex_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace jepo::ml
