// BuiltinLibrary — the Java standard-library surface (System, Math, String,
// StringBuilder, wrapper classes, exception objects), shared by both
// execution engines: the tree-walking Interpreter and the bytecode VM.
// All entry points take already-evaluated values; argument evaluation (and
// its energy) belongs to the engines.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "energy/machine.hpp"
#include "jvm/heap.hpp"
#include "jvm/value.hpp"

namespace jepo::jvm {

struct Thrown;  // defined in interpreter.hpp

class BuiltinLibrary {
 public:
  /// `isProgramClass` lets the library distinguish user classes (whose
  /// methods the engine dispatches) from library/exception objects.
  BuiltinLibrary(Heap& heap, energy::SimMachine& machine, std::string& out,
                 std::function<bool(const std::string&)> isProgramClass);

  // ------------------------------------------------------------- helpers
  Value makeString(std::string s);
  std::string display(const Value& v) const;
  const std::string& stringAt(Ref r) const;
  [[noreturn]] void throwJava(const std::string& className,
                              const std::string& message);

  static bool isBuiltinClassName(const std::string& name);
  static bool isWrapperClassName(const std::string& name);
  static bool looksLikeExceptionClass(const std::string& name);

  /// Box a primitive into a wrapper object (charges the boxing cost).
  Value box(const std::string& wrapper, Value inner);
  /// Unbox if boxed (charges); otherwise returns v unchanged.
  Value unboxIfNeeded(Value v);

  // ------------------------------------------------------------ dispatch
  /// System.out.println / print.
  void print(const Value* v, bool newline);

  /// Class constants (Integer.MAX_VALUE, Math.PI, ...).
  bool staticField(const std::string& className, const std::string& field,
                   Value* out);

  /// Static calls (Math.sqrt, System.arraycopy, Integer.parseInt, ...).
  /// Returns false when the class is not a builtin receiver.
  bool staticCall(const std::string& className, const std::string& name,
                  std::vector<Value>& args, Value* out);

  /// Instance calls on strings/builders/boxed/exception objects. Returns
  /// false when the receiver is a user-class object.
  bool instanceCall(Value receiver, const std::string& name,
                    std::vector<Value>& args, Value* out);

  /// Builtin constructors: StringBuilder, String, and undeclared
  /// *Exception/*Error classes. Returns false for user classes.
  bool construct(const std::string& className, std::vector<Value>& args,
                 Value* out);

 private:
  void charge(energy::Op op, std::uint64_t n = 1) { machine_->charge(op, n); }

  Heap* heap_;
  energy::SimMachine* machine_;
  std::string* out_;
  std::function<bool(const std::string&)> isProgramClass_;
};

}  // namespace jepo::jvm
