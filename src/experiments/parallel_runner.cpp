#include "experiments/parallel_runner.hpp"

#include "obs/span.hpp"
#include "stats/protocol.hpp"
#include "support/thread_pool.hpp"

namespace jepo::experiments {

std::vector<ClassifierResult> ParallelRunner::run() {
  const std::size_t kinds =
      static_cast<std::size_t>(ml::kClassifierKindCount);
  ThreadPool pool(config_.parallel.resolvedThreads());

  // ---- Phase 1: per-classifier prep (corpus optimize + dataset build).
  // Each task writes its own pre-sized slot; prepClassifier is a pure
  // function of (kind, config).
  std::vector<detail::ClassifierPrep> preps(kinds);
  parallelFor(pool, kinds, [&](std::size_t k) {
    preps[k] = detail::prepClassifier(static_cast<ml::ClassifierKind>(k),
                                      config_);
  });

  // ---- Phase 2: one protocol call over all 2×kinds measurement streams.
  // The streams reference preps[k].data, which is stable from here on.
  std::vector<stats::IndexedMeasure> streams;
  streams.reserve(2 * kinds);
  for (std::size_t k = 0; k < kinds; ++k) {
    for (auto& m : detail::makeStyleMeasures(
             static_cast<ml::ClassifierKind>(k), preps[k], config_)) {
      streams.push_back(std::move(m));
    }
  }
  const stats::BatchExecutor exec =
      [&pool](const std::vector<std::function<void()>>& jobs) {
        parallelFor(pool, jobs.size(),
                    [&jobs](std::size_t i) { jobs[i](); });
      };
  const auto protocols = [&] {
    // prep/assemble spans come from the detail functions themselves (they
    // run inside pool tasks); the measure phase is driven from here.
    obs::Span span("experiment.measure");
    return stats::measureManyWithTukeyLoop(streams, config_.runs, exec);
  }();

  // ---- Phase 3: assemble, preserving the serial output ordering.
  std::vector<ClassifierResult> out;
  out.reserve(kinds);
  for (std::size_t k = 0; k < kinds; ++k) {
    out.push_back(detail::assembleResult(static_cast<ml::ClassifierKind>(k),
                                         preps[k], protocols[2 * k],
                                         protocols[2 * k + 1]));
  }
  return out;
}

}  // namespace jepo::experiments
