#include "rapl/msr.hpp"

#include <cstdio>

namespace jepo::rapl {

std::string msrName(std::uint32_t msr) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%x", msr);
  return buf;
}

}  // namespace jepo::rapl
