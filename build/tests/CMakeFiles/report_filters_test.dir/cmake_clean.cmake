file(REMOVE_RECURSE
  "CMakeFiles/report_filters_test.dir/report_filters_test.cpp.o"
  "CMakeFiles/report_filters_test.dir/report_filters_test.cpp.o.d"
  "report_filters_test"
  "report_filters_test.pdb"
  "report_filters_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_filters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
