#include <gtest/gtest.h>

#include "corpus/corpus.hpp"
#include "jepo/optimizer.hpp"
#include "jlang/parser.hpp"
#include "jlang/printer.hpp"
#include "metrics/metrics.hpp"

namespace jepo::corpus {
namespace {

using jlang::Parser;
using jlang::Program;
using metrics::CodeMetrics;
using metrics::computeMetrics;
using ml::ClassifierKind;

// --------------------------------------------------------------- metrics

TEST(Metrics, CountsSmallProgram) {
  Program prog;
  prog.units.push_back(Parser("a.mjava", R"(
    package pkg.one;
    import pkg.two.B;
    class A {
      int x;
      long y;
      void m() { }
      int n(int v) { return v; }
    }
  )").parseUnit());
  prog.units.push_back(Parser("b.mjava", R"(
    package pkg.two;
    class B { int z; void p() { } }
  )").parseUnit());

  const CodeMetrics m = computeMetrics(prog);
  EXPECT_EQ(m.dependencies, 2u);  // pkg.one.A + pkg.two.B (import merges)
  EXPECT_EQ(m.attributes, 3u);
  EXPECT_EQ(m.methods, 3u);
  EXPECT_EQ(m.packages, 2u);
  EXPECT_GT(m.loc, 8u);
}

TEST(Metrics, ImportOfExternalClassCountsAsDependency) {
  Program prog;
  prog.units.push_back(Parser("a.mjava",
                              "package p;\nimport q.External;\nclass A { }\n")
                           .parseUnit());
  EXPECT_EQ(computeMetrics(prog).dependencies, 2u);
}

// ---------------------------------------------------------------- corpus

TEST(Corpus, ProfilesMatchTableTwoAndFour) {
  const CorpusProfile j48 = profileFor(ClassifierKind::kJ48);
  EXPECT_EQ(j48.classes, 684u);
  EXPECT_EQ(j48.attributes, 3263u);
  EXPECT_EQ(j48.methods, 7746u);
  EXPECT_EQ(j48.packages, 41u);
  EXPECT_EQ(j48.seededChanges, 877);

  const CorpusProfile rf = profileFor(ClassifierKind::kRandomForest);
  EXPECT_EQ(rf.classes, 673u);
  EXPECT_EQ(rf.seededChanges, 719);

  const CorpusProfile rt = profileFor(ClassifierKind::kRandomTree);
  EXPECT_EQ(rt.seededChanges, 709);
}

TEST(Corpus, ScaledCorpusHasProportionalMetrics) {
  int seeded = 0;
  const Program prog =
      generateScaledCorpus(ClassifierKind::kJ48, 0.05, 42, &seeded);
  const CodeMetrics m = computeMetrics(prog);
  const CorpusProfile full = profileFor(ClassifierKind::kJ48);
  EXPECT_EQ(m.dependencies, static_cast<std::size_t>(full.classes * 0.05));
  // Rounding in the scale math and the per-class CONFIG_LIMIT host fields
  // allow a few counts of slack.
  EXPECT_NEAR(static_cast<double>(m.attributes),
              static_cast<double>(full.attributes) * 0.05, 8.0);
  EXPECT_NEAR(static_cast<double>(m.methods),
              static_cast<double>(full.methods) * 0.05, 8.0);
  EXPECT_GT(m.loc, 1000u);
  EXPECT_GT(seeded, 30);
}

TEST(Corpus, DeterministicForSeed) {
  const Program a = generateScaledCorpus(ClassifierKind::kSmo, 0.02, 7, nullptr);
  const Program b = generateScaledCorpus(ClassifierKind::kSmo, 0.02, 7, nullptr);
  ASSERT_EQ(a.units.size(), b.units.size());
  for (std::size_t i = 0; i < a.units.size(); ++i) {
    EXPECT_EQ(jlang::printUnit(a.units[i]), jlang::printUnit(b.units[i]));
  }
}

TEST(Corpus, GeneratedSourceReparses) {
  const Program prog =
      generateScaledCorpus(ClassifierKind::kNaiveBayes, 0.02, 11, nullptr);
  for (const auto& unit : prog.units) {
    const std::string printed = jlang::printUnit(unit);
    EXPECT_NO_THROW(Parser(unit.fileName, printed).parseUnit())
        << unit.fileName;
  }
}

// The load-bearing property: the optimizer finds EXACTLY the seeded number
// of changes — this is how the Table IV "Changes" column is reproduced.
TEST(Corpus, OptimizerChangeCountEqualsSeededCount) {
  for (ClassifierKind kind :
       {ClassifierKind::kJ48, ClassifierKind::kLogistic,
        ClassifierKind::kIbk}) {
    int seeded = 0;
    const Program prog = generateScaledCorpus(kind, 0.04, 42, &seeded);
    core::OptimizerOptions opts;  // lossy mode, as in the paper
    const auto result = core::Optimizer(opts).optimize(prog);
    EXPECT_EQ(static_cast<int>(result.changes.size()), seeded)
        << ml::classifierName(kind);
  }
}

TEST(Corpus, FillerCodeIsChangeFree) {
  // Scale small enough that zero patterns are seeded... the generator
  // guarantees >= 1, so instead verify: changes == seeded even at a scale
  // where fillers dominate 25:1. Any filler-triggered change would break
  // the equality above; this case doubles the evidence on another kind.
  int seeded = 0;
  const Program prog =
      generateScaledCorpus(ClassifierKind::kSgd, 0.03, 99, &seeded);
  const auto result = core::Optimizer().optimize(prog);
  EXPECT_EQ(static_cast<int>(result.changes.size()), seeded);
}

TEST(Corpus, PackageCountsSurviveGeneration) {
  int seeded = 0;
  const Program prog =
      generateScaledCorpus(ClassifierKind::kSmo, 0.2, 42, &seeded);
  const CodeMetrics m = computeMetrics(prog);
  EXPECT_GE(m.packages, 2u);
  EXPECT_LE(m.packages, 43u);
}

}  // namespace
}  // namespace jepo::corpus
