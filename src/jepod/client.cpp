#include "jepod/client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "support/rng.hpp"

namespace jepo::jepod {

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      stream_(std::move(other.stream_)),
      buffer_(std::move(other.buffer_)),
      socketPath_(std::move(other.socketPath_)),
      retry_(other.retry_),
      sleeper_(std::move(other.sleeper_)),
      readTimeoutMs_(other.readTimeoutMs_),
      transportFaults_(other.transportFaults_),
      connectOrdinal_(other.connectOrdinal_),
      retries_(other.retries_),
      reconnects_(other.reconnects_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    stream_ = std::move(other.stream_);
    buffer_ = std::move(other.buffer_);
    socketPath_ = std::move(other.socketPath_);
    retry_ = other.retry_;
    sleeper_ = std::move(other.sleeper_);
    readTimeoutMs_ = other.readTimeoutMs_;
    transportFaults_ = other.transportFaults_;
    connectOrdinal_ = other.connectOrdinal_;
    retries_ = other.retries_;
    reconnects_ = other.reconnects_;
  }
  return *this;
}

void Client::connect(const std::string& socketPath) {
  JEPO_REQUIRE(fd_ < 0, "Client already connected");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  JEPO_REQUIRE(socketPath.size() < sizeof(addr.sun_path),
               "socket path too long for AF_UNIX");
  std::memcpy(addr.sun_path, socketPath.c_str(), socketPath.size() + 1);

  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    throw TransportError("jepod client: socket(): " +
                         std::string(std::strerror(errno)));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw TransportError("jepod client: connect(" + socketPath + "): " + err);
  }
  socketPath_ = socketPath;
  stream_ = std::make_unique<fault::FdStream>(fd_);
  if (transportFaults_.active()) {
    stream_ = std::make_unique<fault::FaultyStream>(
        std::move(stream_),
        fault::TransportFaultPlan(transportFaults_, connectOrdinal_));
  }
  ++connectOrdinal_;
}

void Client::close() {
  stream_.reset();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

void Client::setSleeper(std::function<void(int)> sleeper) {
  sleeper_ = std::move(sleeper);
}

int Client::backoffDelayMs(const RetryPolicy& policy, int attempt,
                           int retryAfterMs) {
  std::uint64_t base = static_cast<std::uint64_t>(
      policy.baseBackoffMs < 1 ? 1 : policy.baseBackoffMs);
  const std::uint64_t cap =
      static_cast<std::uint64_t>(policy.maxBackoffMs < 1 ? 1
                                                         : policy.maxBackoffMs);
  for (int i = 0; i < attempt && base < cap; ++i) base *= 2;
  if (base > cap) base = cap;
  // Seeded jitter in [0, base/2]: pure in (jitterSeed, attempt), so two
  // clients with different seeds desynchronize their retry storms while
  // each one's schedule replays exactly.
  Rng rng(deriveSeed(policy.jitterSeed, static_cast<std::uint64_t>(attempt),
                     0x4A17u));
  std::uint64_t delay = base + rng.nextBelow(base / 2 + 1);
  if (retryAfterMs > 0 && delay < static_cast<std::uint64_t>(retryAfterMs)) {
    delay = static_cast<std::uint64_t>(retryAfterMs);
  }
  return static_cast<int>(delay);
}

Response Client::submit(const JobRequest& req) {
  if (!sleeper_) {
    sleeper_ = [](int ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    };
  }
  for (int attempt = 0;; ++attempt) {
    try {
      if (!connected()) {
        // A previous attempt tore the connection down; re-establish it.
        // Safe because jobs are deterministic and idempotent — a job whose
        // response was lost in flight returns bit-identically when re-run.
        JEPO_REQUIRE(!socketPath_.empty(), "Client not connected");
        connect(socketPath_);
        ++reconnects_;
      }
      Response resp = submitOnce(req);
      if (!resp.ok && resp.errorCode == "queue-full" &&
          attempt < retry_.maxRetries) {
        ++retries_;
        sleeper_(backoffDelayMs(retry_, attempt, resp.retryAfterMs));
        continue;
      }
      return resp;
    } catch (const TransportError&) {
      // The wire broke (reset, timeout, refused reconnect). Drop the
      // connection — its read buffer may hold a torn frame — and back off.
      close();
      if (attempt >= retry_.maxRetries) throw;
      ++retries_;
      sleeper_(backoffDelayMs(retry_, attempt, -1));
    }
  }
}

Response Client::submitOnce(const JobRequest& req) {
  return parseResponse(roundTrip(renderRequest(req)));
}

std::string Client::roundTrip(const std::string& rawLine) {
  JEPO_REQUIRE(fd_ >= 0, "Client not connected");
  std::string framed = rawLine;
  framed += '\n';
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const long n = stream_->write(framed.data() + sent, framed.size() - sent);
    if (n <= 0) {
      throw TransportError("jepod client: send failed (daemon gone?)");
    }
    sent += static_cast<std::size_t>(n);
  }
  return readLine();
}

std::string Client::readLine() {
  JEPO_REQUIRE(fd_ >= 0, "Client not connected");
  char chunk[4096];
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return line;
    }
    if (readTimeoutMs_ > 0) {
      // Bounded wait: a daemon dying mid-response (or never responding)
      // surfaces as a typed error instead of hanging this thread forever.
      pollfd pfd{};
      pfd.fd = fd_;
      pfd.events = POLLIN;
      int pr;
      do {
        pr = ::poll(&pfd, 1, readTimeoutMs_);
      } while (pr < 0 && errno == EINTR);
      if (pr == 0) {
        throw TransportError("jepod client: read timed out after " +
                             std::to_string(readTimeoutMs_) + " ms");
      }
      if (pr < 0) {
        throw TransportError("jepod client: poll(): " +
                             std::string(std::strerror(errno)));
      }
    }
    const long n = stream_->read(chunk, sizeof chunk);
    if (n <= 0) {
      throw TransportError(
          "jepod client: connection closed before a response line");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace jepo::jepod
