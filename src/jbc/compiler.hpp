// MiniJava AST -> bytecode compiler.
//
// Lowers every method (plus synthesized <clinit>/<init-fields> chunks for
// field initializers) into stack-machine code with JVM-style exception
// tables. finally blocks are compiled by inlining (the pre-JSR-deprecation
// javac strategy): a copy on the normal path, a copy on each catch exit, a
// catch-all handler that runs the copy and rethrows, and copies on every
// return/break/continue that crosses the finally.
#pragma once

#include "jbc/code.hpp"

namespace jepo::jbc {

struct CompileOptions {
  /// Run the post-resolution peephole pass that fuses hot instruction runs
  /// into superinstructions (code.hpp). Off is the seed-shaped code path,
  /// kept for A/B benchmarking and for tests that pin unfused layouts.
  bool fuseSuperinstructions = true;
};

/// Compile a whole program; throws CompileError on unsupported constructs
/// and ParseError-style diagnostics on unresolved names.
CompiledProgram compile(const jlang::Program& program);
CompiledProgram compile(const jlang::Program& program,
                        const CompileOptions& options);

}  // namespace jepo::jbc
