// Bytecode representation — the "Javassist level" of the reproduction.
//
// JEPO's profiler injects measurement instructions into compiled method
// bodies. The jbc module makes that level real: a compiler lowers MiniJava
// methods into stack-machine chunks (with exception tables, as on the real
// JVM), and a bytecode VM executes them on the same Heap/Value/Builtin
// substrate as the tree interpreter. The two engines are pinned together by
// cross-engine agreement tests; their energy accounting differs only where
// the compiled form genuinely differs (e.g. a ternary compiles to plain
// branches).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "jlang/ast.hpp"
#include "jvm/value.hpp"

namespace jepo::jbc {

enum class Op : std::uint8_t {
  // Constants. a indexes the matching pool; b is a flags word.
  kConstInt,     // a -> intPool
  kConstLong,    // a -> intPool
  kConstFloat,   // a -> numPool; b=1: plain-decimal spelling
  kConstDouble,  // a -> numPool; b=1: plain-decimal spelling
  kConstStr,     // a -> names (interned at runtime)
  kConstChar,    // a = code point
  kConstBool,    // a = 0/1
  kConstNull,

  // Locals. a = slot; for kStore b = ValKind to coerce to (-1: none).
  kLoad,
  kStore,
  kLoadThis,

  // Fields. a -> names.
  kGetField,      // obj -> value   (array.length handled here)
  kPutField,      // obj value ->
  kGetThisField,  // -> value
  kPutThisField,  // value ->
  kGetStatic,     // a -> names ("Class.field")
  kPutStatic,

  // Arrays.
  kArrayGet,  // arr idx -> value
  kArraySet,  // arr idx value ->
  kNewArray,  // a = dim count (dims on stack), b = leaf ValKind

  // Objects.
  kNewObject,  // a -> names (class), b = argc; c = classId+1 when the
               // resolution pass bound the class (0: dynamic lookup)

  // Operators.
  kBinary,  // a = jlang::BinOp (no &&/||)
  kNeg,
  kNot,
  kBitNot,
  kCast,  // a = ValKind
  kBox,   // a -> names (wrapper class)

  // Control flow. a = target pc.
  kJump,
  kJumpIfFalse,  // b=1: this branch is a compiled ternary (charge kTernary)
  kJumpIfTrue,
  kLoopTick,  // charge one loop iteration
  kTryTick,   // charge a try entry

  // Calls. argc values on stack (receiver below them for virtual).
  kCallStatic,       // a -> names (class), b -> names (method), c = argc
  kCallVirtual,      // a -> names (method), b = argc
  kCallUnqualified,  // a -> names (method), b = argc; current class
  kPrint,            // a = newline flag, b = has-argument flag

  kReturnValue,
  kReturnVoid,
  kPop,
  kDup,
  kThrow,

  // Slot-resolved forms, emitted when the resolution pass (jlang/resolve.hpp)
  // bound the site at compile time. Each preserves the charge sequence and
  // error strings of its dynamic counterpart exactly; only the name lookup
  // is gone. The dynamic ops above remain as fallbacks for sites the
  // resolver could not bind (builtin statics, unknown names in dead code).
  kGetStaticSlot,       // a = global static slot (-1: resolved-missing),
                        // b = classId, c -> names ("Class.field" error text)
  kPutStaticSlot,       // same operands
  kGetThisFieldSlot,    // a = field offset in this's layout
  kPutThisFieldSlot,    // a = field offset; value on stack
  kGetFieldCached,      // a -> names (field), b = field-cache slot
  kPutFieldCached,      // a -> names (field), b = field-cache slot
  kCallStaticResolved,  // a = classId, b = method ordinal, c = argc
  kCallSelfResolved,    // a = method ordinal, b = argc, c = prepend-this flag
  kCallVirtualCached,   // a -> names (method), b = argc, c = call-cache slot
};

struct Instr {
  Op op;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t c = 0;
  std::int32_t line = 0;
};

/// JVM-style exception table entry: pcs in [start, end) covered; on a match
/// the operand stack is cleared, the exception ref stored to `slot`, and
/// control transfers to `handler`.
struct ExceptionEntry {
  std::int32_t start = 0;
  std::int32_t end = 0;
  std::int32_t handler = 0;
  std::int32_t classNameIdx = -1;  // -1 = catch-all (finally path)
  std::int32_t slot = -1;          // -1 = leave the exception on the stack
};

struct Chunk {
  std::string qualifiedName;  // "Class.method" for the hook interface
  /// Interned program-wide method id (Resolution::methodNames index) —
  /// what MethodHooks receive, so the instrumenter's balance check is an
  /// integer compare instead of a string compare.
  std::uint32_t methodId = jlang::kNoName;
  std::vector<Instr> code;
  std::vector<ExceptionEntry> handlers;
  int numSlots = 0;
  int numParams = 0;  // including the `this` slot for instance methods
  bool isStatic = true;
  std::vector<jvm::ValKind> paramKinds;  // coercion at call time
};

struct CompiledField {
  std::string name;
  jvm::ValKind kind = jvm::ValKind::kInt;
  bool isStatic = false;
};

struct CompiledClass {
  std::string name;
  std::int32_t classId = -1;  // index into Resolution::classes
  std::vector<CompiledField> fields;
  std::unordered_map<std::string, Chunk> methods;  // includes ctor (== name)
  Chunk clinit;      // static field initializers (may be empty)
  Chunk initFields;  // instance field initializers (may be empty)
  bool hasMain = false;
};

struct CompiledProgram {
  std::vector<std::string> names;   // shared string/name pool
  std::vector<std::int64_t> intPool;
  std::vector<double> numPool;
  std::unordered_map<std::string, CompiledClass> classes;
  /// The resolution substrate of the source Program (set by compile()).
  /// The slot/classId/cacheSlot operands above index its tables. Holds
  /// pointers into the source AST, so the Program must outlive execution —
  /// the same lifetime contract the tree interpreter has always had.
  std::shared_ptr<const jlang::Resolution> resolution;

  const CompiledClass* findClass(const std::string& name) const {
    const auto it = classes.find(name);
    return it == classes.end() ? nullptr : &it->second;
  }
};

/// Raised when a construct is outside the bytecode backend's supported set
/// (documented limitation: break/continue/return crossing a finally).
class CompileError : public Error {
 public:
  using Error::Error;
};

/// Human-readable disassembly (for tests and debugging).
std::string disassemble(const Chunk& chunk, const CompiledProgram& program);

}  // namespace jepo::jbc
