// The Section VIII measurement protocol:
//
//   "We first run each classifier 10 times to measure Package energy, CPU
//    energy, and execution time … detect outliers using Tukey's method from
//    each metric, replace the outliers measurements with new measurements
//    and again check for outliers. We repeat this process until no outlier
//    is left. When no outlier is left, we calculated the mean of values."
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "stats/stats.hpp"
#include "support/error.hpp"

namespace jepo::stats {

struct ProtocolResult {
  /// Final per-run values, one row per run, one column per metric.
  std::vector<std::vector<double>> runs;
  /// Per-metric means over the outlier-free runs.
  std::vector<double> means;
  /// How many individual runs were re-measured.
  int remeasured = 0;
  /// Whether the loop converged before maxRounds.
  bool converged = true;
};

/// One measurement stream under the protocol. The argument is the
/// measurement ordinal within the stream (0 .. runCount-1 for the initial
/// runs, then runCount, runCount+1, … for Tukey re-measurements). A stream
/// must derive all of its randomness from that ordinal (deriveSeed) rather
/// than from shared mutable state, which is what makes the protocol safe to
/// execute on a thread pool and bit-identical at any thread count.
using IndexedMeasure = std::function<std::vector<double>(int ordinal)>;

/// Executes one batch of independent measurement jobs. The serial executor
/// runs them in order on the calling thread; a parallel executor may run
/// them in any order on any threads (each job writes a disjoint result
/// slot, so ordering cannot change the outcome).
using BatchExecutor =
    std::function<void(const std::vector<std::function<void()>>&)>;

/// The default executor: run each job in order, on this thread.
BatchExecutor serialExecutor();

/// The protocol over many streams at once, with pluggable execution.
///
/// All streams' initial `runCount` measurements form the first batch; then
/// each round gathers every stream's Tukey-outlier rows into one batch of
/// re-measurements. Outlier detection and re-measure bookkeeping happen on
/// the calling thread between batches — the executor only ever sees
/// independent jobs — so the loop is thread-safe by construction and the
/// result depends only on the measured values, never on scheduling.
/// Rounds are capped per stream (a pathological distribution could
/// otherwise loop forever; the paper implicitly assumes convergence).
///
/// `tukeyColumns` limits outlier detection to the first N metric columns
/// (-1 = all). Streams that append bookkeeping columns after their science
/// metrics — the experiment pipeline carries measurement-quality and
/// retry-count columns — use this so a flagged-but-extreme bookkeeping
/// value can never trigger a re-measurement. Means are still computed over
/// every column.
std::vector<ProtocolResult> measureManyWithTukeyLoop(
    const std::vector<IndexedMeasure>& streams, int runCount,
    const BatchExecutor& exec, int maxRounds = 50, double fenceK = 1.5,
    int tukeyColumns = -1);

/// Single-stream, stateful-measurement convenience used by tools that
/// measure one workload at a time. Call order is exactly the serial
/// protocol: runs in order, then re-measures in ascending row order per
/// round.
ProtocolResult measureWithTukeyLoop(
    int runCount, const std::function<std::vector<double>()>& measureOnce,
    int maxRounds = 50, double fenceK = 1.5);

}  // namespace jepo::stats
