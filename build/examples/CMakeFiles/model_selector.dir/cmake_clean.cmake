file(REMOVE_RECURSE
  "CMakeFiles/model_selector.dir/model_selector.cpp.o"
  "CMakeFiles/model_selector.dir/model_selector.cpp.o.d"
  "model_selector"
  "model_selector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_selector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
