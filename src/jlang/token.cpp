#include "jlang/token.hpp"

namespace jepo::jlang {

std::string tokName(Tok t) {
  switch (t) {
    case Tok::kEof: return "<eof>";
    case Tok::kIdentifier: return "identifier";
    case Tok::kIntLiteral: return "int literal";
    case Tok::kLongLiteral: return "long literal";
    case Tok::kFloatLiteral: return "float literal";
    case Tok::kDoubleLiteral: return "double literal";
    case Tok::kCharLiteral: return "char literal";
    case Tok::kStringLiteral: return "string literal";
    case Tok::kKwClass: return "'class'";
    case Tok::kKwPublic: return "'public'";
    case Tok::kKwPrivate: return "'private'";
    case Tok::kKwStatic: return "'static'";
    case Tok::kKwFinal: return "'final'";
    case Tok::kKwVoid: return "'void'";
    case Tok::kKwByte: return "'byte'";
    case Tok::kKwShort: return "'short'";
    case Tok::kKwInt: return "'int'";
    case Tok::kKwLong: return "'long'";
    case Tok::kKwFloat: return "'float'";
    case Tok::kKwDouble: return "'double'";
    case Tok::kKwChar: return "'char'";
    case Tok::kKwBoolean: return "'boolean'";
    case Tok::kKwIf: return "'if'";
    case Tok::kKwElse: return "'else'";
    case Tok::kKwWhile: return "'while'";
    case Tok::kKwFor: return "'for'";
    case Tok::kKwReturn: return "'return'";
    case Tok::kKwNew: return "'new'";
    case Tok::kKwTry: return "'try'";
    case Tok::kKwCatch: return "'catch'";
    case Tok::kKwFinally: return "'finally'";
    case Tok::kKwThrow: return "'throw'";
    case Tok::kKwSwitch: return "'switch'";
    case Tok::kKwCase: return "'case'";
    case Tok::kKwDefault: return "'default'";
    case Tok::kKwBreak: return "'break'";
    case Tok::kKwContinue: return "'continue'";
    case Tok::kKwTrue: return "'true'";
    case Tok::kKwFalse: return "'false'";
    case Tok::kKwNull: return "'null'";
    case Tok::kKwThis: return "'this'";
    case Tok::kKwPackage: return "'package'";
    case Tok::kKwImport: return "'import'";
    case Tok::kLParen: return "'('";
    case Tok::kRParen: return "')'";
    case Tok::kLBrace: return "'{'";
    case Tok::kRBrace: return "'}'";
    case Tok::kLBracket: return "'['";
    case Tok::kRBracket: return "']'";
    case Tok::kSemicolon: return "';'";
    case Tok::kComma: return "','";
    case Tok::kDot: return "'.'";
    case Tok::kColon: return "':'";
    case Tok::kQuestion: return "'?'";
    case Tok::kAssign: return "'='";
    case Tok::kPlusAssign: return "'+='";
    case Tok::kMinusAssign: return "'-='";
    case Tok::kStarAssign: return "'*='";
    case Tok::kSlashAssign: return "'/='";
    case Tok::kPercentAssign: return "'%='";
    case Tok::kPlus: return "'+'";
    case Tok::kMinus: return "'-'";
    case Tok::kStar: return "'*'";
    case Tok::kSlash: return "'/'";
    case Tok::kPercent: return "'%'";
    case Tok::kPlusPlus: return "'++'";
    case Tok::kMinusMinus: return "'--'";
    case Tok::kLt: return "'<'";
    case Tok::kGt: return "'>'";
    case Tok::kLe: return "'<='";
    case Tok::kGe: return "'>='";
    case Tok::kEqEq: return "'=='";
    case Tok::kNotEq: return "'!='";
    case Tok::kAmpAmp: return "'&&'";
    case Tok::kPipePipe: return "'||'";
    case Tok::kBang: return "'!'";
    case Tok::kAmp: return "'&'";
    case Tok::kPipe: return "'|'";
    case Tok::kCaret: return "'^'";
    case Tok::kTilde: return "'~'";
    case Tok::kShl: return "'<<'";
    case Tok::kShr: return "'>>'";
  }
  return "?";
}

}  // namespace jepo::jlang
