// google-benchmark micro suite for the MiniJava toolchain: lexing, parsing,
// printing, interpretation throughput, suggestion analysis and the
// optimizer — the costs a JEPO user pays per keystroke / per run.
#include <benchmark/benchmark.h>

#include "bench_micro.hpp"
#include "demo_project.hpp"
#include "energy/machine.hpp"
#include "jepo/engine.hpp"
#include "jepo/optimizer.hpp"
#include "jlang/lexer.hpp"
#include "jlang/parser.hpp"
#include "jlang/printer.hpp"
#include "jvm/interpreter.hpp"

namespace {

using namespace jepo;

void BM_Lex(benchmark::State& state) {
  const std::string src = bench::kDemoProjectSource;
  for (auto _ : state) {
    jlang::Lexer lexer(src);
    benchmark::DoNotOptimize(lexer.tokenize());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(src.size()));
}
BENCHMARK(BM_Lex);

void BM_Parse(benchmark::State& state) {
  const std::string src = bench::kDemoProjectSource;
  for (auto _ : state) {
    jlang::Parser parser("demo.mjava", src);
    benchmark::DoNotOptimize(parser.parseUnit());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(src.size()));
}
BENCHMARK(BM_Parse);

void BM_Print(benchmark::State& state) {
  const auto unit =
      jlang::Parser("demo.mjava", bench::kDemoProjectSource).parseUnit();
  for (auto _ : state) {
    benchmark::DoNotOptimize(jlang::printUnit(unit));
  }
}
BENCHMARK(BM_Print);

void BM_InterpretArithmeticLoop(benchmark::State& state) {
  const long n = state.range(0);
  const std::string src =
      "class Main { static void main(String[] args) {\n"
      "int acc = 0;\n"
      "for (int i = 0; i < " + std::to_string(n) + "; i++) acc += i & 7;\n"
      "System.out.println(acc);\n} }";
  const jlang::Program prog = jlang::Parser::parseProgram("m.mjava", src);
  for (auto _ : state) {
    energy::SimMachine machine;
    jvm::Interpreter interp(prog, machine);
    interp.runMain();
    benchmark::DoNotOptimize(machine.sample().packageJoules);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_InterpretArithmeticLoop)->Arg(1000)->Arg(10000);

void BM_InterpretMethodCalls(benchmark::State& state) {
  const std::string src = R"(
    class Main {
      static int add(int a, int b) { return a + b; }
      static void main(String[] args) {
        int acc = 0;
        for (int i = 0; i < 2000; i++) acc = add(acc, i);
        System.out.println(acc);
      }
    }
  )";
  const jlang::Program prog = jlang::Parser::parseProgram("m.mjava", src);
  for (auto _ : state) {
    energy::SimMachine machine;
    jvm::Interpreter interp(prog, machine);
    interp.runMain();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          2000);
}
BENCHMARK(BM_InterpretMethodCalls);

void BM_SuggestionEngine(benchmark::State& state) {
  const auto unit =
      jlang::Parser("demo.mjava", bench::kDemoProjectSource).parseUnit();
  core::SuggestionEngine engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.analyzeUnit(unit));
  }
}
BENCHMARK(BM_SuggestionEngine);

void BM_Optimizer(benchmark::State& state) {
  const jlang::Program prog = jlang::Parser::parseProgram(
      "demo.mjava", bench::kDemoProjectSource);
  core::Optimizer optimizer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimizer.optimize(prog));
  }
}
BENCHMARK(BM_Optimizer);

void BM_MeterChargeOverhead(benchmark::State& state) {
  energy::SimMachine machine;
  for (auto _ : state) {
    machine.charge(energy::Op::kIntAlu, 1);
  }
  benchmark::DoNotOptimize(machine.meter().totalOps());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MeterChargeOverhead);

}  // namespace

int main(int argc, char** argv) {
  return jepo::bench::microMain("bench_vm_micro", argc, argv);
}
