// VM heap: strings, StringBuilders, arrays, plain objects and boxed
// wrappers live here, addressed by Ref. No collector — programs in this
// repository are bounded benchmark/test runs, and keeping every allocation
// live preserves exact Ref identity for aliasing semantics.
#pragma once

#include <string>
#include <string_view>
#include <deque>
#include <vector>

#include "jvm/value.hpp"
#include "support/error.hpp"

namespace jepo::jlang {
struct ClassLayout;  // jlang/resolve.hpp
}

namespace jepo::jvm {

enum class ObjKind : std::uint8_t {
  kString,
  kBuilder,
  kArray,
  kObject,
  kBoxed,
};

struct HeapObject {
  ObjKind kind = ObjKind::kObject;
  std::string text;                  // kString / kBuilder payload
  std::vector<Value> elems;          // kArray payload
  ValKind elemKind = ValKind::kNull; // kArray element kind (kRef for rows)
  std::string className;             // kObject / kBoxed wrapper name
  // kObject payload: field values in layout order (field i of `layout`
  // lives at fields[i]). The layout is the resolution-pass ClassLayout for
  // program classes, or builtinExceptionLayout() for library exceptions.
  std::vector<Value> fields;
  const jlang::ClassLayout* layout = nullptr;
  Value boxed;                       // kBoxed payload

  /// By-name field lookup for the cold paths (display, getMessage, cache
  /// misses). Returns nullptr for a name the layout does not declare.
  Value* findField(std::string_view name);
  const Value* findField(std::string_view name) const {
    return const_cast<HeapObject*>(this)->findField(name);
  }
};

class Heap {
 public:
  Ref allocString(std::string s) {
    HeapObject o;
    o.kind = ObjKind::kString;
    o.text = std::move(s);
    return push(std::move(o));
  }

  Ref allocBuilder() {
    HeapObject o;
    o.kind = ObjKind::kBuilder;
    return push(std::move(o));
  }

  /// Arrays carry their element kind so stores can coerce to the Java
  /// element width; elements start at the Java default value.
  Ref allocArray(std::size_t n, ValKind elemKind) {
    HeapObject o;
    o.kind = ObjKind::kArray;
    o.elemKind = elemKind;
    o.elems.assign(n, defaultValue(elemKind));
    return push(std::move(o));
  }

  static Value defaultValue(ValKind k) {
    switch (k) {
      case ValKind::kBool: return Value::ofBool(false);
      case ValKind::kByte: return Value::ofByte(0);
      case ValKind::kShort: return Value::ofShort(0);
      case ValKind::kInt: return Value::ofInt(0);
      case ValKind::kLong: return Value::ofLong(0);
      case ValKind::kChar: return Value::ofChar(0);
      case ValKind::kFloat: return Value::ofFloat(0.0);
      case ValKind::kDouble: return Value::ofDouble(0.0);
      default: return Value::null();
    }
  }

  /// Objects are born with one null-valued slot per layout field; callers
  /// overwrite with the Java default for each declared type.
  Ref allocObject(std::string className, const jlang::ClassLayout& layout);

  Ref allocBoxed(std::string wrapper, Value inner) {
    HeapObject o;
    o.kind = ObjKind::kBoxed;
    o.className = std::move(wrapper);
    o.boxed = inner;
    return push(std::move(o));
  }

  HeapObject& get(Ref r) {
    JEPO_REQUIRE(r < objects_.size(), "dangling heap reference");
    return objects_[r];
  }
  const HeapObject& get(Ref r) const {
    JEPO_REQUIRE(r < objects_.size(), "dangling heap reference");
    return objects_[r];
  }

  std::size_t size() const noexcept { return objects_.size(); }

 private:
  Ref push(HeapObject o) {
    objects_.push_back(std::move(o));
    return static_cast<Ref>(objects_.size() - 1);
  }

  std::deque<HeapObject> objects_;
};

}  // namespace jepo::jvm
