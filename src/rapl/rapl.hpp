// RAPL domains, the simulated package (energy depositor) and the reader
// (wraparound-correct counter diffing) used by the profiler and perf runner.
//
// Robustness: RaplReader absorbs transient MSR read errors with a bounded,
// deterministic retry loop (no wall clock — the backoff schedule is a pure
// function of the attempt index, so results are bit-identical at any thread
// count), and EnergyCounter classifies each interval with a
// MeasurementQuality instead of silently returning garbage when the
// documented at-most-one-wrap assumption is violated (stale repeats,
// backwards glitches, implausible jumps). Domains that are permanently
// absent (no DRAM/PP1 on many SKUs) degrade to a 0 J / kDegraded reading
// rather than throwing.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "rapl/msr.hpp"
#include "rapl/power_unit.hpp"
#include "rapl/quality.hpp"

namespace jepo::rapl {

enum class Domain : int {
  kPackage = 0,
  kCore = 1,  // PP0
  kUncore = 2,  // PP1
  kDram = 3,
};
inline constexpr int kDomainCount = 4;
inline constexpr std::array<Domain, kDomainCount> kAllDomains = {
    Domain::kPackage, Domain::kCore, Domain::kUncore, Domain::kDram};

std::string_view domainName(Domain d) noexcept;
std::uint32_t domainMsr(Domain d) noexcept;

/// The simulated RAPL package: accumulates joules per domain (as exact
/// doubles internally) and exposes them through energy-status MSRs with the
/// real 32-bit wrapping raw-count semantics.
class SimulatedRaplPackage {
 public:
  explicit SimulatedRaplPackage(PowerUnit unit = {});

  const MsrDevice& device() const noexcept { return dev_; }
  const PowerUnit& unit() const noexcept { return unit_; }

  /// Deposit energy into a domain (machine model callback). Package energy
  /// strictly contains core energy on real hardware; callers deposit into
  /// each domain explicitly and tests enforce the containment invariant.
  void deposit(Domain d, double joules);

  /// Total joules deposited since construction (no wraparound) — used by
  /// tests to validate reader arithmetic against ground truth.
  double totalJoules(Domain d) const noexcept;

 private:
  void publish(Domain d);

  PowerUnit unit_;
  SimulatedMsrDevice dev_;
  std::array<double, kDomainCount> joules_{};     // ground truth
  std::array<double, kDomainCount> residual_{};   // sub-quantum remainder
  std::array<std::uint64_t, kDomainCount> rawCount_{};  // unwrapped count
};

/// How many attempts a retrying read makes before a transient fault is
/// treated as fatal for this read. The backoff between attempts is
/// deterministic (2^attempt delay units, recorded in the obs registry; on
/// real hardware those units would be a usleep) — no wall clock enters the
/// measurement path, which is what keeps fault-injected runs bit-identical
/// at any thread count.
struct RetryPolicy {
  int maxAttempts = 4;
};

/// Result of a retrying raw read: the value plus how many transient
/// failures were absorbed before it succeeded.
struct RawSample {
  std::uint32_t value = 0;
  int retries = 0;
};

/// Reads energy-status registers and converts to joules.
class RaplReader {
 public:
  explicit RaplReader(const MsrDevice& dev, RetryPolicy retry = {});

  const PowerUnit& unit() const noexcept { return unit_; }
  const RetryPolicy& retryPolicy() const noexcept { return retry_; }

  /// How many transient faults the power-unit read absorbed at
  /// construction.
  int unitReadRetries() const noexcept { return unitRetries_; }

  /// Raw 32-bit counter value for a domain. Single attempt: transient
  /// faults propagate as MsrError (legacy path; hardened callers use
  /// readRawRetrying).
  std::uint32_t readRaw(Domain d) const;

  /// Raw counter read with bounded retry: transient MsrErrors are retried
  /// up to retryPolicy().maxAttempts times, then rethrown; permanent
  /// errors are rethrown immediately.
  RawSample readRawRetrying(Domain d) const;

  /// Does this package implement the domain? Transient faults during the
  /// probe are retried; only a permanent MsrError means "absent".
  /// A probe whose retries are exhausted reports the domain as present
  /// (the register exists, this read just failed).
  bool domainAvailable(Domain d) const;

  /// Joules represented by the counter at this instant (wraps ~ every
  /// 65536 J at ESU=16; use EnergyCounter for intervals).
  double readJoules(Domain d) const;

 private:
  std::uint64_t readMsrRetrying(std::uint32_t msr, int* retries) const;

  const MsrDevice* dev_;
  RetryPolicy retry_;
  int unitRetries_ = 0;
  PowerUnit unit_;
};

/// Interval measurement over one domain with wraparound-correct diffing —
/// the arithmetic JEPO's injected bytecode has to get right. Handles any
/// number of wraps' worth of energy being impossible to distinguish; like
/// real tools it assumes at most one wrap per interval (callers sample at
/// method granularity, far below the ~minutes-scale wrap period).
///
/// measure() is the hardened form: instead of trusting the raw delta it
/// classifies the interval (see MeasurementQuality) using three
/// deterministic heuristics on the 32-bit delta —
///   - delta >= kBackwardsThreshold: a small backwards glitch shows up as
///     a near-full-range positive delta; no sane sampling loop measures
///     >61,440 J in one interval, so this is classified kInvalid
///   - delta >= kSuspectThreshold: the interval consumed more than half
///     the counter range, so a second unseen wrap cannot be ruled out
///     (kDegraded); if the implied joules also exceed elapsed * maxWatts
///     the value is physically impossible (a forced multi-wrap /
///     firmware jump) and the interval is kInvalid
///   - delta == 0 with minExpectedJoules > 0: the counter did not move
///     over an interval where idle power alone must have deposited counts
///     — a stale repeat, kInvalid
/// plus the domain-availability ladder: a permanently absent register
/// reads as {0 J, kDegraded} and an exhausted retry budget as
/// {0 J, kInvalid}.
class EnergyCounter {
 public:
  /// Generous ceiling on sustained package power used by the plausibility
  /// check; only deltas >= kSuspectThreshold consult it, so a loose bound
  /// cannot misclassify ordinary intervals.
  static constexpr double kDefaultMaxWatts = 2048.0;

  static constexpr std::uint32_t kSuspectThreshold = 0x80000000u;
  static constexpr std::uint32_t kBackwardsThreshold = 0xF0000000u;

  EnergyCounter(const RaplReader& reader, Domain domain);

  /// False when the domain's register is permanently absent (measure()
  /// will report {0, kDegraded}) or the arming read exhausted its retry
  /// budget ({0, kInvalid}).
  bool available() const noexcept { return armFail_ == ArmFail::kNone; }

  /// Re-arm at the current counter value. Never throws: arming failures
  /// are remembered and surface as the quality of the next measure().
  void start();

  /// Joules accumulated since start(), tolerating one 32-bit wrap. Legacy
  /// unchecked path: no quality classification, single-attempt reads.
  double elapsedJoules() const;

  /// The hardened interval read. `elapsedSeconds` (< 0 = unknown) enables
  /// the physical-plausibility check; `minExpectedJoules` (<= 0 = unknown,
  /// typically idle watts × elapsed) enables stale detection.
  EnergyInterval measure(double elapsedSeconds = -1.0,
                         double maxWatts = kDefaultMaxWatts,
                         double minExpectedJoules = -1.0) const;

 private:
  enum class ArmFail { kNone, kTransient, kPermanent };

  const RaplReader* reader_;
  Domain domain_;
  std::uint32_t startRaw_ = 0;
  int startRetries_ = 0;
  ArmFail armFail_ = ArmFail::kNone;
};

}  // namespace jepo::rapl
