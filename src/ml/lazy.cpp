#include "ml/lazy.hpp"

#include <algorithm>
#include <cmath>

namespace jepo::ml {

// ---------------------------------------------------------------------- IBk

template <typename Real>
void Ibk<Real>::train(const Instances& data) {
  JEPO_REQUIRE(data.numInstances() > 0, "empty training set");
  numClasses_ = data.numClasses();
  featureIdx_ = data.featureIndices();
  ranges_ = data.numericRanges();
  isNominal_.assign(data.numAttributes(), false);
  for (std::size_t a = 0; a < data.numAttributes(); ++a) {
    isNominal_[a] = data.attribute(a).isNominal();
  }
  train_.clear();
  labels_.clear();
  train_.reserve(data.numInstances());
  for (std::size_t i = 0; i < data.numInstances(); ++i) {
    train_.push_back(data.row(i));
    labels_.push_back(data.classValue(i));
  }
  // Lazy learner: training is storage (plus the buffer traffic).
  rt_->bufferCopy(data.numInstances() * data.numAttributes());
}

template <typename Real>
int Ibk<Real>::predict(const std::vector<double>& row) const {
  JEPO_REQUIRE(!train_.empty(), "predict before train");
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(options_.k));

  // Max-heap over the current k best (distance, label) pairs.
  std::vector<std::pair<Real, int>> best;
  best.reserve(k + 1);

  for (std::size_t i = 0; i < train_.size(); ++i) {
    Real d = Real(0);
    for (std::size_t a : featureIdx_) {
      if (isNominal_[a]) {
        d += row[a] == train_[i][a] ? Real(0) : Real(1);
        rt_->keyCompare(6);  // nominal labels compared as keys
        rt_->selections(1);
      } else {
        const auto& r = ranges_[a];
        const double span = r.max - r.min;
        const double na = span > 0 ? (row[a] - r.min) / span : 0.0;
        const double nb = span > 0 ? (train_[i][a] - r.min) / span : 0.0;
        const Real diff = Real(na - nb);
        d += diff * diff;
        rt_->flops(6);
      }
      rt_->arrayOps(2);
    }
    rt_->loopIters(featureIdx_.size());
    best.emplace_back(d, labels_[i]);
    std::push_heap(best.begin(), best.end());
    if (best.size() > k) {
      std::pop_heap(best.begin(), best.end());
      best.pop_back();
    }
    rt_->intOps(2);
  }

  std::vector<int> votes(numClasses_, 0);
  for (const auto& [d, label] : best) {
    ++votes[static_cast<std::size_t>(label)];
    rt_->counterOps(1);
  }
  return static_cast<int>(std::distance(
      votes.begin(), std::max_element(votes.begin(), votes.end())));
}

// -------------------------------------------------------------------- KStar

template <typename Real>
void KStar<Real>::train(const Instances& data) {
  JEPO_REQUIRE(data.numInstances() > 0, "empty training set");
  numClasses_ = data.numClasses();
  featureIdx_ = data.featureIndices();
  isNominal_.assign(data.numAttributes(), false);
  numLabels_.assign(data.numAttributes(), 0);
  scale_.assign(data.numAttributes(), Real(1));
  stayProb_.assign(data.numAttributes(), Real(0.5));

  for (std::size_t a = 0; a < data.numAttributes(); ++a) {
    const Attribute& attr = data.attribute(a);
    isNominal_[a] = attr.isNominal();
    if (attr.isNominal()) numLabels_[a] = attr.numLabels();
  }

  const std::size_t n = data.numInstances();
  for (std::size_t a : featureIdx_) {
    if (isNominal_[a]) {
      // Stay probability from the blend: with blend b and m labels, the
      // chance a value transforms to a specific other label is
      // b / (m - 1); staying costs (1 - b).
      const auto m = static_cast<double>(std::max<std::size_t>(
          2, numLabels_[a]));
      stayProb_[a] = Real(1.0 - options_.blend);
      (void)m;
    } else {
      // Scale from the mean absolute deviation around the mean.
      double mean = 0.0;
      for (std::size_t i = 0; i < n; ++i) mean += data.value(i, a);
      mean /= static_cast<double>(n);
      double mad = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        mad += std::fabs(data.value(i, a) - mean);
      }
      mad /= static_cast<double>(n);
      scale_[a] = Real(std::max(1e-6, mad * options_.blend / 0.5));
      rt_->flops(4 * n);
    }
    rt_->loopIters(n);
  }

  train_.clear();
  labels_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    train_.push_back(data.row(i));
    labels_.push_back(data.classValue(i));
  }
  rt_->bufferCopy(n * data.numAttributes());
}

template <typename Real>
int KStar<Real>::predict(const std::vector<double>& row) const {
  JEPO_REQUIRE(!train_.empty(), "predict before train");
  std::vector<Real> classScore(numClasses_, Real(0));

  for (std::size_t i = 0; i < train_.size(); ++i) {
    // log-similarity: sum of per-attribute log transformation probs.
    Real logSim = Real(0);
    for (std::size_t a : featureIdx_) {
      if (isNominal_[a]) {
        const auto m = static_cast<double>(std::max<std::size_t>(
            2, numLabels_[a]));
        const double pStay = static_cast<double>(stayProb_[a]);
        const double p = row[a] == train_[i][a]
                             ? pStay
                             : (1.0 - pStay) / (m - 1.0);
        logSim += Real(std::log(p));
        rt_->keyCompare(6);
        rt_->mathCalls(1);
      } else {
        const Real dist = Real(std::fabs(row[a] - train_[i][a]));
        logSim -= dist / scale_[a];
        rt_->flops(3);
      }
      rt_->arrayOps(2);
    }
    classScore[static_cast<std::size_t>(labels_[i])] +=
        Real(std::exp(static_cast<double>(logSim)));
    rt_->mathCalls(1);
    rt_->loopIters(featureIdx_.size());
  }

  return static_cast<int>(std::distance(
      classScore.begin(),
      std::max_element(classScore.begin(), classScore.end())));
}

template class Ibk<float>;
template class Ibk<double>;
template class KStar<float>;
template class KStar<double>;

}  // namespace jepo::ml
