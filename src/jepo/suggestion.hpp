// The suggestion model: one RuleId per row of paper Table I, plus the
// diagnostic record the engine emits (class, line, suggestion text — the
// three columns of JEPO's optimizer view, Fig. 5).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace jepo::core {

/// One rule per Java component row of Table I.
enum class RuleId : int {
  kPrimitiveDataType = 0,  // int is the most energy-efficient primitive
  kScientificNotation,     // scientific notation lowers decimal-literal cost
  kWrapperClass,           // Integer is the most energy-efficient wrapper
  kStaticKeyword,          // static costs up to 17,700% more
  kModulusOperator,        // modulus costs up to 1,620% more
  kTernaryOperator,        // ternary costs up to 37% more than if-then-else
  kShortCircuitOrder,      // put the most common case first
  kStringConcat,           // StringBuilder.append over the + operator
  kStringCompare,          // equals over compareTo (+33%)
  kArrayCopy,              // System.arraycopy over manual loops
  kArrayTraversal,         // row traversal over column traversal (+793%)

  kRuleCount
};

inline constexpr int kRuleCount = static_cast<int>(RuleId::kRuleCount);

/// The Table I "Java Components" label for a rule.
std::string_view ruleComponent(RuleId id) noexcept;

/// The Table I "Suggestions" text for a rule (hardcoded in JEPO; hardcoded
/// here with the same wording).
std::string_view ruleSuggestion(RuleId id) noexcept;

/// One diagnostic: where it fired and what it recommends.
struct Suggestion {
  RuleId rule = RuleId::kPrimitiveDataType;
  std::string file;
  std::string className;
  int line = 0;
  std::string detail;  // what was matched, e.g. "long local 'total'"

  /// Fig. 5's third column: the canned suggestion plus the match detail.
  std::string message() const;
};

}  // namespace jepo::core
