// Chaos suite: drives the whole measurement pipeline through the
// fault::FaultyMsrDevice decorator and asserts the tentpole guarantees —
//
//   (a) retryable-only fault plans produce results bit-identical to the
//       fault-free baseline, at any thread count (the retry loop re-reads
//       an unchanged simulated device, so the recovered values are exact);
//   (b) permanent faults degrade gracefully: absent domains fall back to
//       package-only stats, an absent package register yields flagged
//       rows with zeroed improvements — never a crash or an abort;
//   (c) every fault schedule is a pure function of (seed, register, read
//       ordinal), so any plan — including ones that exhaust the retry
//       budget — replays identically across runs and thread counts.
//
// Runs under the `chaos` CTest label (and the ASan chaos CI job).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "energy/op.hpp"
#include "experiments/weka_experiment.hpp"
#include "fault/fault.hpp"
#include "jvm/instrumenter.hpp"
#include "perf/perf.hpp"
#include "rapl/rapl.hpp"

namespace jepo {
namespace {

using fault::FaultKind;
using fault::FaultPlan;
using fault::FaultSpec;
using fault::FaultyMsrDevice;
using rapl::Domain;
using rapl::MeasurementQuality;

// ---------------------------------------------------------------- plans

TEST(FaultPlan, DecideIsPureAndSeedSensitive) {
  FaultSpec spec = fault::parseFaultPlan("chaos:seed=11");
  const FaultPlan plan(spec);
  const FaultPlan replay(spec);
  spec.seed = 12;
  const FaultPlan other(spec);

  bool anyFault = false;
  bool seedsDiffer = false;
  for (std::uint64_t ord = 0; ord < 500; ++ord) {
    const auto a = plan.decide(rapl::kMsrPkgEnergyStatus, ord);
    const auto b = replay.decide(rapl::kMsrPkgEnergyStatus, ord);
    EXPECT_EQ(a.kind, b.kind) << "ordinal " << ord;
    EXPECT_EQ(a.burst, b.burst);
    EXPECT_EQ(a.magnitude, b.magnitude);
    anyFault = anyFault || a.kind != FaultKind::kNone;
    seedsDiffer =
        seedsDiffer ||
        a.kind != other.decide(rapl::kMsrPkgEnergyStatus, ord).kind;
  }
  EXPECT_TRUE(anyFault) << "chaos preset injected nothing in 500 reads";
  EXPECT_TRUE(seedsDiffer) << "seed does not influence the schedule";
}

TEST(FaultPlan, ValueFaultsOnlyHitEnergyStatusRegisters) {
  FaultSpec spec;
  spec.staleProb = 1.0;  // every read would be stale...
  const FaultPlan plan(spec);
  for (std::uint64_t ord = 0; ord < 100; ++ord) {
    // ...but the power-unit register is configuration, not a counter.
    EXPECT_EQ(plan.decide(rapl::kMsrRaplPowerUnit, ord).kind,
              FaultKind::kNone);
    EXPECT_EQ(plan.decide(rapl::kMsrPkgEnergyStatus, ord).kind,
              FaultKind::kStale);
  }
}

TEST(FaultPlan, ParserRoundTripsAndRejectsGarbage) {
  const FaultSpec spec = fault::parseFaultPlan(
      "transient:seed=5,transient-prob=0.25,drop-domain=dram");
  EXPECT_EQ(spec.seed, 5u);
  EXPECT_DOUBLE_EQ(spec.transientProb, 0.25);
  ASSERT_EQ(spec.unavailable.size(), 1u);
  EXPECT_EQ(spec.unavailable[0], rapl::kMsrDramEnergyStatus);

  // describe() is re-parseable into an equivalent spec.
  const FaultSpec again = fault::parseFaultPlan(spec.describe());
  EXPECT_EQ(again.seed, spec.seed);
  EXPECT_DOUBLE_EQ(again.transientProb, spec.transientProb);
  EXPECT_EQ(again.unavailable, spec.unavailable);

  EXPECT_FALSE(fault::parseFaultPlan("none").active());
  EXPECT_THROW(fault::parseFaultPlan("lunch-break"), Error);
  EXPECT_THROW(fault::parseFaultPlan("chaos:flux-capacitor=1"), Error);
  EXPECT_THROW(fault::parseFaultPlan("transient:transient-prob=1.5"), Error);
}

// ------------------------------------------------------------ decorator

TEST(FaultyMsrDevice, TransientFaultThrowsTypedErrorInBurstsOfConfiguredLength) {
  rapl::SimulatedRaplPackage pkg;
  pkg.deposit(Domain::kPackage, 1.0);
  FaultSpec spec;
  spec.seed = 5;
  spec.transientProb = 0.3;
  spec.transientBurst = 2;
  const FaultyMsrDevice dev(pkg.device(), FaultPlan(spec));
  const std::uint64_t truth = pkg.device().read(rapl::kMsrPkgEnergyStatus);

  // Each fault event fails the deciding read plus burst-1 followers, so
  // every maximal run of consecutive failures is a multiple of the burst
  // length (abutting events concatenate).
  int run = 0;
  int failures = 0;
  int successes = 0;
  for (int i = 0; i < 300; ++i) {
    try {
      EXPECT_EQ(dev.read(rapl::kMsrPkgEnergyStatus), truth);
      ++successes;
      if (run > 0) EXPECT_EQ(run % 2, 0) << "burst broken at read " << i;
      run = 0;
    } catch (const rapl::MsrError& e) {
      EXPECT_TRUE(e.transient());
      EXPECT_EQ(e.msr(), rapl::kMsrPkgEnergyStatus);
      ++failures;
      ++run;
    }
  }
  EXPECT_GT(failures, 0);
  EXPECT_GT(successes, 0);
  EXPECT_EQ(dev.injected(), static_cast<std::uint64_t>(failures));
}

TEST(FaultyMsrDevice, StaleRepeatsLastObservedValue) {
  rapl::SimulatedRaplPackage pkg;
  pkg.deposit(Domain::kPackage, 1.0);
  FaultSpec spec;
  spec.seed = 3;
  spec.staleProb = 1.0;
  const FaultyMsrDevice dev(pkg.device(), FaultPlan(spec));

  // First read has no history to repeat — it must pass through.
  const std::uint64_t first = dev.read(rapl::kMsrPkgEnergyStatus);
  EXPECT_EQ(first, pkg.device().read(rapl::kMsrPkgEnergyStatus));
  pkg.deposit(Domain::kPackage, 5.0);  // true counter moves on
  const std::uint64_t second = dev.read(rapl::kMsrPkgEnergyStatus);
  EXPECT_EQ(second, first);  // ...the faulted read does not
}

TEST(FaultyMsrDevice, BackwardsGlitchReturnsLessThanLastValue) {
  rapl::SimulatedRaplPackage pkg;
  pkg.deposit(Domain::kPackage, 10.0);
  FaultSpec spec;
  spec.backwardsProb = 1.0;
  const FaultyMsrDevice dev(pkg.device(), FaultPlan(spec));

  const std::uint64_t first = dev.read(rapl::kMsrPkgEnergyStatus);
  const std::uint64_t second = dev.read(rapl::kMsrPkgEnergyStatus);
  EXPECT_LT(second, first);
}

TEST(FaultyMsrDevice, JumpAddsImplausibleForwardOffset) {
  rapl::SimulatedRaplPackage pkg;
  pkg.deposit(Domain::kPackage, 1.0);
  FaultSpec spec;
  spec.jumpProb = 1.0;
  const FaultyMsrDevice dev(pkg.device(), FaultPlan(spec));

  const std::uint64_t truth = pkg.device().read(rapl::kMsrPkgEnergyStatus);
  const std::uint64_t jumped = dev.read(rapl::kMsrPkgEnergyStatus);
  // Forced multi-wrap territory: at least half the 32-bit counter range.
  EXPECT_GE(jumped - truth, 0x80000000u);
}

TEST(FaultyMsrDevice, UnavailableRegisterThrowsPermanentError) {
  rapl::SimulatedRaplPackage pkg;
  const FaultSpec spec = fault::parseFaultPlan("no-dram");
  const FaultyMsrDevice dev(pkg.device(), FaultPlan(spec));

  try {
    dev.read(rapl::kMsrDramEnergyStatus);
    FAIL() << "expected permanent MsrError";
  } catch (const rapl::MsrError& e) {
    EXPECT_FALSE(e.transient());
    EXPECT_EQ(e.msr(), rapl::kMsrDramEnergyStatus);
  }
  // The other registers are untouched.
  EXPECT_EQ(dev.read(rapl::kMsrPkgEnergyStatus),
            pkg.device().read(rapl::kMsrPkgEnergyStatus));
}

TEST(FaultyMsrDevice, TwoDevicesFromSameSpecReplayIdentically) {
  rapl::SimulatedRaplPackage pkg;
  pkg.deposit(Domain::kPackage, 42.0);
  pkg.deposit(Domain::kCore, 20.0);
  const FaultSpec spec = fault::parseFaultPlan("chaos:seed=77");
  const FaultyMsrDevice a(pkg.device(), FaultPlan(spec));
  const FaultyMsrDevice b(pkg.device(), FaultPlan(spec));

  // Same spec + same read sequence => identical values and identical
  // throw positions, interleaved reads across two registers included.
  const std::uint32_t regs[] = {rapl::kMsrPkgEnergyStatus,
                                rapl::kMsrPp0EnergyStatus};
  for (int i = 0; i < 400; ++i) {
    const std::uint32_t msr = regs[i % 2];
    std::uint64_t va = 0;
    std::uint64_t vb = 0;
    bool ta = false;
    bool tb = false;
    try {
      va = a.read(msr);
    } catch (const rapl::MsrError&) {
      ta = true;
    }
    try {
      vb = b.read(msr);
    } catch (const rapl::MsrError&) {
      tb = true;
    }
    EXPECT_EQ(ta, tb) << "read " << i;
    EXPECT_EQ(va, vb) << "read " << i;
  }
  EXPECT_EQ(a.injected(), b.injected());
  EXPECT_EQ(a.reads(), b.reads());
}

// --------------------------------------------------- reader under faults

TEST(RaplReaderChaos, AbsorbsTransientPlanAndRecoversExactValues) {
  rapl::SimulatedRaplPackage pkg;
  pkg.deposit(Domain::kPackage, 7.5);
  FaultSpec spec;
  spec.seed = 21;
  spec.transientProb = 0.3;  // burst 1, so any 8-attempt budget recovers
  const FaultyMsrDevice dev(pkg.device(), FaultPlan(spec));
  rapl::RetryPolicy patient;
  patient.maxAttempts = 8;  // p=0.3^8 exhaustion is out of reach
  const rapl::RaplReader reader(dev, patient);

  int totalRetries = 0;
  for (int i = 0; i < 50; ++i) {
    const rapl::RawSample s = reader.readRawRetrying(Domain::kPackage);
    // The simulated package never changes underneath, so every recovered
    // read is the exact true value.
    EXPECT_NEAR(static_cast<double>(s.value) * reader.unit().jouleQuantum(),
                7.5, 1e-4);
    totalRetries += s.retries;
  }
  EXPECT_GT(totalRetries, 0) << "plan with p=0.3 injected nothing in 50 reads";

  // Replaying the identical spec reproduces the identical retry counts.
  const FaultyMsrDevice dev2(pkg.device(), FaultPlan(spec));
  const rapl::RaplReader reader2(dev2, patient);
  EXPECT_EQ(reader2.unitReadRetries(), reader.unitReadRetries());
  int replayRetries = 0;
  for (int i = 0; i < 50; ++i) {
    replayRetries += reader2.readRawRetrying(Domain::kPackage).retries;
  }
  EXPECT_EQ(replayRetries, totalRetries);
}

// -------------------------------------------------- perf runner hardening

void burnWork(energy::SimMachine& machine) {
  machine.charge(energy::Op::kDoubleAlu, 1'000'000);
  machine.charge(energy::Op::kIntMod, 100'000);
}

TEST(PerfChaos, TransientOnlyPlanIsBitIdenticalToFaultFreeBaseline) {
  const energy::CostModel model = energy::CostModel::calibrated();
  perf::PerfRunner clean = perf::PerfRunner::exact();
  perf::PerfRunner chaotic = perf::PerfRunner::exact();
  // Gentle transient rate, single-read bursts: well inside the 4-attempt
  // budget, so every faulted read recovers the exact value. (The heavier
  // presets can exhaust the read budget; those go through the
  // measurement-level retry exercised by the experiment tests instead.)
  chaotic.setFaultPlan(fault::parseFaultPlan(
      "transient:seed=4,transient-prob=0.1,transient-burst=1"));

  int retried = 0;
  for (std::uint64_t ord = 0; ord < 20; ++ord) {
    const perf::PerfStat a = clean.statAt(ord, burnWork, model);
    const perf::PerfStat b = chaotic.statAt(ord, burnWork, model);
    EXPECT_DOUBLE_EQ(a.packageJoules, b.packageJoules) << "ordinal " << ord;
    EXPECT_DOUBLE_EQ(a.coreJoules, b.coreJoules);
    EXPECT_DOUBLE_EQ(a.dramJoules, b.dramJoules);
    EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
    EXPECT_LE(b.quality, MeasurementQuality::kRetried);
    retried += b.readRetries;
  }
  EXPECT_GT(retried, 0) << "transient-heavy plan never fired in 20 stats";
}

TEST(PerfChaos, MissingCoreDomainDegradesToPackageOnly) {
  const energy::CostModel model = energy::CostModel::calibrated();
  perf::PerfRunner clean = perf::PerfRunner::exact();
  perf::PerfRunner impaired = perf::PerfRunner::exact();
  impaired.setFaultPlan(fault::parseFaultPlan("no-core"));

  const perf::PerfStat a = clean.statAt(0, burnWork, model);
  const perf::PerfStat b = impaired.statAt(0, burnWork, model);
  EXPECT_TRUE(b.packageOnly);
  EXPECT_EQ(b.quality, MeasurementQuality::kDegraded);
  EXPECT_DOUBLE_EQ(b.packageJoules, a.packageJoules);  // still trustworthy
  EXPECT_DOUBLE_EQ(b.coreJoules, 0.0);                 // absent, not garbage
}

TEST(PerfChaos, MissingPackageDomainYieldsInvalidZeroedStat) {
  const energy::CostModel model = energy::CostModel::calibrated();
  perf::PerfRunner runner = perf::PerfRunner::exact();
  runner.setFaultPlan(fault::parseFaultPlan("no-package"));

  const perf::PerfStat s = runner.statAt(0, burnWork, model);
  EXPECT_EQ(s.quality, MeasurementQuality::kInvalid);
  EXPECT_DOUBLE_EQ(s.packageJoules, 0.0);
  EXPECT_DOUBLE_EQ(s.coreJoules, 0.0);
  EXPECT_GT(s.seconds, 0.0);  // timing comes from the clock, not the MSRs
}

// ------------------------------------------------ instrumenter hardening

TEST(InstrumenterChaos, RecordsSurviveFaultyDeviceWithQualityTags) {
  energy::SimMachine machine;
  const FaultSpec spec = fault::parseFaultPlan(
      "transient:seed=13,transient-prob=0.1,transient-burst=1");
  const FaultyMsrDevice dev(machine.msrDevice(), FaultPlan(spec));
  jvm::Instrumenter inst(machine, dev);

  const std::string methodName = "Chaos.method";
  const jvm::MethodRef method{0, &methodName};
  for (int i = 0; i < 10; ++i) {
    inst.onEnter(method);
    machine.charge(energy::Op::kDoubleAlu, 10'000);
    inst.onExit(method);
  }
  ASSERT_EQ(inst.records().size(), 10u);
  int retried = 0;
  for (const auto& r : inst.records()) {
    EXPECT_LE(r.quality, MeasurementQuality::kRetried);
    EXPECT_GT(r.packageJoules, 0.0);
    retried += r.readRetries;
  }
  EXPECT_GT(retried, 0);
}

TEST(InstrumenterChaos, MissingDramDegradesRecordInsteadOfThrowing) {
  energy::SimMachine machine;
  const FaultSpec spec = fault::parseFaultPlan("no-dram");
  const FaultyMsrDevice dev(machine.msrDevice(), FaultPlan(spec));
  jvm::Instrumenter inst(machine, dev);

  const std::string methodName = "Chaos.method";
  const jvm::MethodRef method{0, &methodName};
  inst.onEnter(method);
  machine.charge(energy::Op::kDoubleAlu, 10'000);
  inst.onExit(method);
  ASSERT_EQ(inst.records().size(), 1u);
  const jvm::MethodRecord& r = inst.records()[0];
  EXPECT_EQ(r.quality, MeasurementQuality::kDegraded);
  EXPECT_DOUBLE_EQ(r.dramJoules, 0.0);
  EXPECT_GT(r.packageJoules, 0.0);
}

// -------------------------------------------------- experiment pipeline

experiments::WekaExperimentConfig chaosFastConfig() {
  experiments::WekaExperimentConfig cfg;
  cfg.instances = 400;
  cfg.folds = 5;
  cfg.runs = 4;
  cfg.corpusScale = 0.02;
  cfg.withNoise = false;
  cfg.forestTrees = 5;
  return cfg;
}

bool sameRow(const experiments::ClassifierResult& x,
             const experiments::ClassifierResult& y) {
  return x.kind == y.kind && x.changes == y.changes &&
         x.packageImprovement == y.packageImprovement &&
         x.cpuImprovement == y.cpuImprovement &&
         x.timeImprovement == y.timeImprovement &&
         x.accuracyBase == y.accuracyBase && x.accuracyOpt == y.accuracyOpt &&
         x.basePackageJoules == y.basePackageJoules &&
         x.optPackageJoules == y.optPackageJoules &&
         x.quality == y.quality && x.faultRetries == y.faultRetries &&
         x.flagged == y.flagged;
}

TEST(ExperimentChaos, RetryableFaultsLeaveScienceColumnsBitIdentical) {
  // One classifier end-to-end: the transient-only plan must not move a
  // single science bit relative to the fault-free baseline — only the
  // bookkeeping (quality tag, retry count) may differ.
  const auto baseline = experiments::runClassifierExperiment(
      ml::ClassifierKind::kNaiveBayes, chaosFastConfig());

  auto cfg = chaosFastConfig();
  cfg.faultPlan = fault::parseFaultPlan("transient:seed=8");
  const auto faulted = experiments::runClassifierExperiment(
      ml::ClassifierKind::kNaiveBayes, cfg);

  EXPECT_DOUBLE_EQ(faulted.packageImprovement, baseline.packageImprovement);
  EXPECT_DOUBLE_EQ(faulted.cpuImprovement, baseline.cpuImprovement);
  EXPECT_DOUBLE_EQ(faulted.timeImprovement, baseline.timeImprovement);
  EXPECT_DOUBLE_EQ(faulted.basePackageJoules, baseline.basePackageJoules);
  EXPECT_DOUBLE_EQ(faulted.optPackageJoules, baseline.optPackageJoules);
  EXPECT_DOUBLE_EQ(faulted.accuracyDrop, baseline.accuracyDrop);
  EXPECT_FALSE(faulted.flagged);
  EXPECT_LE(faulted.quality, MeasurementQuality::kRetried);
  EXPECT_GT(faulted.faultRetries, 0)
      << "the plan injected nothing — the assertion proved nothing";
}

// The probabilistic acceptance criterion: on the SAME seed, a fault plan
// that degrades measurement quality must STRICTLY widen the bootstrap
// interval. The transient-only plan is the controlled lever — it leaves
// every science value bit-identical to the fault-free run (pinned above),
// so the surviving rows and their resample streams are identical and the
// only difference is the quality tags driving the widen factor.
TEST(ExperimentChaos, DegradedQualityStrictlyWidensIntervalsOnSameSeed) {
  auto cleanCfg = chaosFastConfig();
  cleanCfg.withNoise = true;  // nonzero run-to-run variance to widen
  cleanCfg.intervals = true;
  cleanCfg.bootstrap.resamples = 80;
  const auto clean = experiments::runClassifierExperiment(
      ml::ClassifierKind::kNaiveBayes, cleanCfg);

  auto faultCfg = cleanCfg;
  faultCfg.faultPlan = fault::parseFaultPlan("transient:seed=8");
  const auto faulted = experiments::runClassifierExperiment(
      ml::ClassifierKind::kNaiveBayes, faultCfg);

  ASSERT_TRUE(clean.intervals.has_value());
  ASSERT_TRUE(faulted.intervals.has_value());
  const auto& a = *clean.intervals;
  const auto& b = *faulted.intervals;

  // Same science, same resamples — the pinned precondition.
  EXPECT_DOUBLE_EQ(faulted.basePackageJoules, clean.basePackageJoules);
  EXPECT_DOUBLE_EQ(faulted.optPackageJoules, clean.optPackageJoules);
  ASSERT_GT(b.retriedFraction, 0.0)
      << "the plan tagged no rows — the widening assertion proves nothing";
  EXPECT_GT(b.widenFactor, a.widenFactor);
  EXPECT_EQ(a.widenFactor, 1.0);

  // Strict widening of every interval the row reports.
  ASSERT_GT(a.basePackage.width(), 0.0) << "degenerate clean interval";
  EXPECT_GT(b.basePackage.width(), a.basePackage.width());
  EXPECT_GT(b.optPackage.width(), a.optPackage.width());
  EXPECT_GT(b.packageImprovement.width(), a.packageImprovement.width());

  // And the interval still brackets the (unchanged) point estimate.
  EXPECT_LE(b.basePackage.lo, faulted.basePackageJoules);
  EXPECT_GE(b.basePackage.hi, faulted.basePackageJoules);
}

TEST(ExperimentChaos, FaultPlanMatrixIsBitIdenticalAcrossThreadCounts) {
  // The tentpole determinism claim at matrix scale: chaos plan included,
  // thread count must not change a single bit of any row.
  auto cfg = chaosFastConfig();
  cfg.faultPlan = fault::parseFaultPlan("chaos:seed=31");

  auto serialCfg = cfg;
  serialCfg.parallel.threads = 1;
  const auto serial = experiments::runWekaExperiment(serialCfg);

  for (std::size_t threads : {std::size_t{4}, std::size_t{8}}) {
    auto parCfg = cfg;
    parCfg.parallel.threads = threads;
    const auto parallel = experiments::runWekaExperiment(parCfg);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_TRUE(sameRow(serial[i], parallel[i]))
          << "row " << i << " differs at " << threads << " threads";
    }
  }
}

TEST(ExperimentChaos, PermanentPackageFaultFlagsEveryRowWithoutCrashing) {
  auto cfg = chaosFastConfig();
  cfg.faultPlan = fault::parseFaultPlan("no-package");
  cfg.parallel.threads = 4;

  const auto rows = experiments::runWekaExperiment(cfg);
  ASSERT_EQ(rows.size(), static_cast<std::size_t>(ml::kClassifierKindCount));
  for (const auto& r : rows) {
    EXPECT_TRUE(r.flagged);
    EXPECT_EQ(r.quality, MeasurementQuality::kInvalid);
    EXPECT_DOUBLE_EQ(r.packageImprovement, 0.0);  // zeroed, not garbage
    EXPECT_DOUBLE_EQ(r.cpuImprovement, 0.0);
    EXPECT_GT(r.changes, 0);  // the static pipeline still ran
  }
}

TEST(ExperimentChaos, ExhaustingPlanDeterministicAndFlaggedNotCrashed) {
  // `exhausting` bursts outlast the 4-attempt read budget AND the
  // measurement-level re-attempts, so some rows go invalid; the guarantee
  // is no crash, deterministic rows at every thread count, and flags on
  // exactly the rows whose final attempt still came back invalid.
  auto cfg = chaosFastConfig();
  cfg.faultPlan = fault::parseFaultPlan("exhausting:seed=2");

  auto serialCfg = cfg;
  serialCfg.parallel.threads = 1;
  const auto serial = experiments::runWekaExperiment(serialCfg);
  ASSERT_EQ(serial.size(), static_cast<std::size_t>(ml::kClassifierKindCount));

  int impaired = 0;
  for (const auto& r : serial) {
    if (r.quality != MeasurementQuality::kOk) ++impaired;
    if (r.flagged) {
      EXPECT_EQ(r.quality, MeasurementQuality::kInvalid);
      EXPECT_DOUBLE_EQ(r.packageImprovement, 0.0);
    }
  }
  EXPECT_GT(impaired, 0) << "exhausting plan left every row pristine";

  for (std::size_t threads : {std::size_t{4}, std::size_t{8}}) {
    auto parCfg = cfg;
    parCfg.parallel.threads = threads;
    const auto parallel = experiments::runWekaExperiment(parCfg);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_TRUE(sameRow(serial[i], parallel[i]))
          << "row " << i << " differs at " << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace jepo
