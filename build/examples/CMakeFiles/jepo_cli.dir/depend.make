# Empty dependencies file for jepo_cli.
# This may be replaced when dependencies are built.
